"""Trace formats and I/O.

:mod:`record` defines the in-memory trace representation the analyzer
consumes; :mod:`wire` encodes/decodes real IPv4/TCP headers with
checksums; :mod:`pcap` reads and writes standard libpcap files built
on those headers; :mod:`text` renders tcpdump-style text.
"""

from repro.trace.record import Trace, TraceRecord, trace_from_segments

__all__ = ["Trace", "TraceRecord", "trace_from_segments"]
