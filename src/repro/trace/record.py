"""The trace representation the analyzer consumes.

A :class:`TraceRecord` is a timestamped snapshot of a packet as a
packet filter recorded it — plain data, no live simulator references,
so traces serialize to pcap/text and round-trip.  A :class:`Trace` is
an ordered list of records plus measurement metadata (where the filter
sat, what it claims about drops).

``packet_id`` survives into the record: it identifies distinct wire
packets, letting tests ask ground-truth questions ("was this record a
measurement duplicate of that one?").  The analyzer itself never uses
it — tcpanaly had no such luxury.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator

from repro.packets import ACK, Endpoint, FlowKey, Segment, flags_to_string
from repro.units import seq_diff


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One packet as captured: timestamp plus header fields.

    ``slots=True`` matters here: corpus runs hold millions of records
    live, and every replay touches each one several times — slots cut
    both the per-record footprint and attribute-lookup cost.
    """

    timestamp: float
    src: Endpoint
    dst: Endpoint
    seq: int
    ack: int
    flags: int
    payload: int
    window: int
    mss_option: int | None = None
    corrupted: bool = False
    packet_id: int = 0

    @property
    def flow(self) -> FlowKey:
        return FlowKey(self.src, self.dst)

    @property
    def seq_end(self) -> int:
        length = self.payload
        if self.flags & 0x02:  # SYN
            length += 1
        if self.flags & 0x01:  # FIN
            length += 1
        return (self.seq + length) % 2**32

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & 0x02)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & 0x01)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & 0x04)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def is_pure_ack(self) -> bool:
        return self.has_ack and self.payload == 0 and not (self.is_syn
                                                           or self.is_fin)

    def with_timestamp(self, timestamp: float) -> "TraceRecord":
        return replace(self, timestamp=timestamp)

    def describe(self, base_time: float = 0.0) -> str:
        """One human-readable line, tcpdump flavored."""
        t = self.timestamp - base_time
        desc = (f"{t:12.6f} {self.src} > {self.dst}: "
                f"{flags_to_string(self.flags)} {self.seq}:{self.seq_end}"
                f"({self.payload})")
        if self.has_ack:
            desc += f" ack {self.ack}"
        desc += f" win {self.window}"
        if self.mss_option is not None:
            desc += f" <mss {self.mss_option}>"
        return desc


def record_from_segment(segment: Segment, timestamp: float) -> TraceRecord:
    """Snapshot a live segment into an immutable trace record."""
    return TraceRecord(
        timestamp=timestamp, src=segment.src, dst=segment.dst,
        seq=segment.seq, ack=segment.ack, flags=segment.flags,
        payload=segment.payload, window=segment.window,
        mss_option=segment.mss_option, corrupted=segment.corrupted,
        packet_id=segment.packet_id)


@dataclass
class Trace:
    """An ordered sequence of captured packets plus metadata.

    ``reported_drops`` is what the *filter* claims about its own drops
    — which, per §3.1.1, may be absent (None), accurate, or a lie.
    ``vantage`` names where the filter sat (e.g. ``"sender"``).
    """

    records: list[TraceRecord] = field(default_factory=list)
    vantage: str = ""
    filter_name: str = ""
    reported_drops: int | None = None
    #: Lazily-built columnar view (:mod:`repro.trace.columns`); the
    #: flow-partition accessors below memoize their scans through it.
    _columns: object = field(default=None, init=False, repr=False,
                             compare=False)

    def columns(self):
        """The columnar view of this trace (built once, cached)."""
        from repro.trace.columns import columns_of
        return columns_of(self)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def start_time(self) -> float:
        return self.records[0].timestamp if self.records else 0.0

    def flows(self) -> set[FlowKey]:
        return set(self.columns().flows)

    def primary_flow(self) -> FlowKey:
        """The data-carrying direction: the flow sending the most bytes.

        Falls back to the SYN sender's flow for data-less traces.
        """
        return self.columns().primary_flow()

    def in_flow(self, flow: FlowKey) -> list[TraceRecord]:
        columns = self.columns()
        fid = columns.flow_id(flow)
        if fid < 0:
            return []
        return columns.records_at(columns.indices("flow", fid))

    def data_packets(self, flow: FlowKey | None = None) -> list[TraceRecord]:
        columns = self.columns()
        fid = (columns.primary_flow_id() if flow is None
               else columns.flow_id(flow))
        if fid < 0:
            return []
        return columns.records_at(columns.indices("data", fid))

    def acks(self, flow: FlowKey | None = None) -> list[TraceRecord]:
        """Pure acks flowing *against* the primary (data) direction.

        SYN-acks are handshake packets and RSTs are aborts — neither
        acknowledges data, so neither belongs in ack-policy or
        receiver analysis even when the segment carries the ACK bit
        (a pure RST+ACK does).  Replay loops call these accessors per
        candidate, so the index slices are memoized on the columnar
        view rather than re-scanning the record list each call.
        """
        columns = self.columns()
        fid = (columns.primary_flow_id() if flow is None
               else columns.flow_id(flow))
        if fid < 0:
            return []
        return columns.records_at(columns.indices("acks", fid))

    def filtered(self, predicate: Callable[[TraceRecord], bool]) -> "Trace":
        return Trace(records=[r for r in self.records if predicate(r)],
                     vantage=self.vantage, filter_name=self.filter_name,
                     reported_drops=self.reported_drops)

    def sorted_by_time(self) -> "Trace":
        return Trace(records=sorted(self.records, key=lambda r: r.timestamp),
                     vantage=self.vantage, filter_name=self.filter_name,
                     reported_drops=self.reported_drops)

    def relative_seq(self, record: TraceRecord) -> int:
        """Sequence number relative to the flow's first record."""
        first = next(r for r in self.records if r.flow == record.flow)
        return seq_diff(record.seq, first.seq)

    def describe(self, limit: int | None = None) -> str:
        """Multi-line tcpdump-style rendering (for reports and debugging)."""
        base = self.start_time
        lines = [r.describe(base) for r in
                 (self.records if limit is None else self.records[:limit])]
        return "\n".join(lines)


def trace_from_segments(pairs: Iterable[tuple[Segment, float]],
                        vantage: str = "",
                        filter_name: str = "") -> Trace:
    """Build a trace directly from (segment, time) pairs — the
    error-free capture a perfect filter would produce."""
    records = [record_from_segment(seg, t) for seg, t in pairs]
    return Trace(records=records, vantage=vantage, filter_name=filter_name,
                 reported_drops=0)
