"""tcpdump-style text rendering and parsing.

The renderer produces lines close to classic ``tcpdump`` TCP output:

    0.000000 sender.1024 > receiver.9000: S 0:1(0) win 65535 <mss 512>
    0.045123 receiver.9000 > sender.1024: S. 0:1(0) ack 1 win 65535 <mss 1460>
    0.046011 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535

The parser reads the same format back, so text traces round-trip —
useful for fixtures, golden files, and hand-edited regression cases.
"""

from __future__ import annotations

import re

from repro.packets import ACK, FIN, PSH, RST, SYN, URG, Endpoint
from repro.trace.record import Trace, TraceRecord

_FLAG_BITS = {"S": SYN, "F": FIN, "R": RST, "P": PSH, "U": URG}

_LINE_RE = re.compile(
    r"^\s*(?P<time>[\d.]+)\s+"
    r"(?P<src>\S+)\.(?P<sport>\d+)\s*>\s*(?P<dst>\S+)\.(?P<dport>\d+):\s+"
    r"(?P<flags>[SFRPU.\-]+)\s+"
    r"(?P<seq>\d+):(?P<seqend>\d+)\((?P<len>\d+)\)"
    r"(?:\s+ack\s+(?P<ack>\d+))?"
    r"\s+win\s+(?P<win>\d+)"
    r"(?:\s+<mss\s+(?P<mss>\d+)>)?"
    r"(?:\s+\[corrupt\])?\s*$"
)


def render_record(record: TraceRecord, base_time: float = 0.0) -> str:
    """One tcpdump-style line for *record*."""
    time = record.timestamp - base_time
    flag_text = "".join(ch for ch, bit in _FLAG_BITS.items()
                        if record.flags & bit)
    if record.flags & ACK:
        flag_text += "."
    if not flag_text:
        flag_text = "-"
    line = (f"{time:.6f} {record.src} > {record.dst}: {flag_text} "
            f"{record.seq}:{record.seq_end}({record.payload})")
    if record.flags & ACK:
        line += f" ack {record.ack}"
    line += f" win {record.window}"
    if record.mss_option is not None:
        line += f" <mss {record.mss_option}>"
    if record.corrupted:
        line += " [corrupt]"
    return line


def render_trace(trace: Trace, relative_time: bool = True) -> str:
    """The whole trace as text, one line per packet."""
    base = trace.start_time if relative_time else 0.0
    return "\n".join(render_record(r, base) for r in trace.records) + "\n"


def parse_line(line: str) -> TraceRecord:
    """Parse one rendered line back into a record."""
    match = _LINE_RE.match(line)
    if match is None:
        raise ValueError(f"unparseable trace line: {line!r}")
    flags = 0
    for ch in match["flags"]:
        if ch in _FLAG_BITS:
            flags |= _FLAG_BITS[ch]
        elif ch == ".":
            flags |= ACK
    return TraceRecord(
        timestamp=float(match["time"]),
        src=Endpoint(match["src"], int(match["sport"])),
        dst=Endpoint(match["dst"], int(match["dport"])),
        seq=int(match["seq"]),
        ack=int(match["ack"]) if match["ack"] is not None else 0,
        flags=flags,
        payload=int(match["len"]),
        window=int(match["win"]),
        mss_option=int(match["mss"]) if match["mss"] is not None else None,
        corrupted="[corrupt]" in line,
    )


def parse_trace(text: str, vantage: str = "", filter_name: str = "") -> Trace:
    """Parse text produced by :func:`render_trace` (blank lines and
    ``#`` comments ignored)."""
    records = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        records.append(parse_line(stripped))
    return Trace(records=records, vantage=vantage, filter_name=filter_name,
                 reported_drops=None)
