"""Columnar trace backend: vectorized views over a :class:`Trace`.

Per-packet analysis over ``TraceRecord`` objects pays Python object
overhead on every field touch — tolerable for one trace, ruinous for a
corpus.  This module adds a *columnar* representation: one array per
header field (timestamp, seq, ack, flags, payload, window, ...), plus
derived columns (``seq_end``, SYN/FIN/RST masks) and a flow-id
partition, built **once** per trace, lazily, and cached on the trace.
The hot candidate-independent kernels (pass-one fact extraction,
calibration screening, bulk ingest decode) run against the arrays;
``TraceRecord`` consumers — the per-candidate replays above all — are
untouched, because the view indexes back into the original record
list.

Two backends implement the same interface:

* :class:`NumpyTraceColumns` — numpy arrays, enabling the vectorized
  kernels (``is_vector`` is True).  Requires numpy, which ships as the
  optional ``repro[perf]`` extra.
* :class:`PythonTraceColumns` — plain lists and dicts, keeping the
  zero-dependency install working.  The analyzers fall back to their
  original per-record loops against it, so the pure-Python path is
  exactly the pre-columnar code — which is what the equivalence suite
  compares the vector kernels against.

Backend selection is automatic (numpy if importable) and overridable
through the ``REPRO_TRACE_BACKEND`` environment variable
(``numpy`` / ``python`` / ``auto``) or :func:`set_backend` for tests.

Sequence numbers live in a 32-bit modular space; arrays hold them
*unwrapped* relative to a per-trace base (the first record's seq) as
int64, so ordinary ``<`` / ``max`` reproduce ``seq_gt`` / ``seq_max``
exactly for any trace spanning less than 2**31 bytes of sequence
space — which the modular helpers themselves already assume.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:                      # pragma: no cover
    from repro.packets import FlowKey
    from repro.trace.record import Trace

try:                                   # the [perf] extra; optional
    import numpy as _np
except ImportError:                    # pragma: no cover
    _np = None

#: Half the sequence space: the unwrap window of ``seq_diff``.
_SEQ_HALF = 2**31
_SEQ_SPACE = 2**32

#: Explicit override set by :func:`set_backend`; None defers to the
#: environment / autodetection.
_forced_backend: str | None = None


def numpy_available() -> bool:
    """True when numpy imported successfully."""
    return _np is not None


def numpy_module():
    """The numpy module (only call when :func:`numpy_available`)."""
    return _np


def active_backend() -> str:
    """The backend new column views will use: ``"numpy"`` or ``"python"``.

    Resolution order: :func:`set_backend` override, then the
    ``REPRO_TRACE_BACKEND`` environment variable, then autodetection.
    Requesting numpy without numpy installed falls back to python —
    the zero-dependency install must keep working under any
    environment it inherits.
    """
    choice = _forced_backend
    if choice is None:
        choice = os.environ.get("REPRO_TRACE_BACKEND", "auto").lower()
    if choice not in ("numpy", "python", "auto"):
        raise ValueError(f"unknown trace backend {choice!r} "
                         f"(expected numpy, python, or auto)")
    if choice == "python":
        return "python"
    if _np is None:
        if choice == "numpy" and _forced_backend == "numpy":
            raise RuntimeError("numpy backend forced but numpy is not "
                               "installed (pip install repro[perf])")
        return "python"
    return "numpy"


def set_backend(name: str | None) -> None:
    """Force the backend (``"numpy"``/``"python"``), or None for auto.

    For tests and benchmarks; production selection goes through the
    environment variable.
    """
    global _forced_backend
    if name is not None and name not in ("numpy", "python", "auto"):
        raise ValueError(f"unknown trace backend {name!r}")
    _forced_backend = None if name in (None, "auto") else name


def columns_of(trace: "Trace"):
    """The columnar view of *trace*, built lazily and cached.

    The cache is invalidated when the record list's length changes or
    the active backend differs from the cached view's (tests flip
    backends on the same trace objects).  Records themselves are
    frozen, and every ``Trace`` in the library is built with its full
    record list before analysis starts, so length is a sufficient
    staleness guard.
    """
    cached = getattr(trace, "_columns", None)
    backend = active_backend()
    if cached is not None and cached.n == len(trace.records) \
            and cached.backend == backend:
        return cached
    if backend == "numpy":
        view = NumpyTraceColumns(trace)
    else:
        view = PythonTraceColumns(trace)
    trace._columns = view
    return view


def _assign_flow_ids(records):
    """Flow ids by first occurrence, plus the FlowKey table.

    Returns (flow_ids list, flows list).  Ids are dense and ordered by
    first appearance, so "first flow to reach the maximum" ties break
    exactly like insertion-ordered dict iteration.
    """
    flows: list = []
    index: dict = {}
    ids = []
    for record in records:
        key = (record.src, record.dst)
        fid = index.get(key)
        if fid is None:
            fid = len(flows)
            index[key] = fid
            flows.append(record.flow)
        ids.append(fid)
    return ids, flows


class _ColumnsBase:
    """Interface shared by both backends (flow partition + accessors)."""

    backend = ""
    is_vector = False

    def __init__(self, trace: "Trace"):
        records = trace.records
        self.records = records
        self.n = len(records)
        ids, flows = _assign_flow_ids(records)
        self.flows: list[FlowKey] = flows
        self._flow_index = {(f.src, f.dst): i for i, f in enumerate(flows)}
        self._ids_list = ids
        self._primary_id: int | None = None
        self._indices_cache: dict = {}

    # -- flow partition ----------------------------------------------------

    def flow_id(self, flow) -> int:
        """The id of *flow*, or -1 when the trace never carried it."""
        return self._flow_index.get((flow.src, flow.dst), -1)

    def reverse_id(self, fid: int) -> int:
        """The id of the opposite direction, or -1 if never recorded."""
        flow = self.flows[fid]
        return self._flow_index.get((flow.dst, flow.src), -1)

    def primary_flow(self):
        """The data-carrying direction (see ``Trace.primary_flow``)."""
        return self.flows[self.primary_flow_id()]

    def primary_flow_id(self) -> int:
        if self.n == 0:
            raise ValueError("empty trace has no flows")
        if self._primary_id is None:
            self._primary_id = self._compute_primary_id()
        return self._primary_id

    # -- memoized per-flow index slices (satellite: Trace accessors) -------

    def indices(self, kind: str, fid: int) -> list[int]:
        """Cached record indices for (*kind*, flow id).

        Kinds: ``"flow"`` (all records of the flow), ``"data"``
        (payload-carrying records of the flow), ``"acks"`` (pure acks
        of the flow's *reverse* direction, SYN/RST excluded — the
        ``Trace.acks`` contract).
        """
        key = (kind, fid)
        got = self._indices_cache.get(key)
        if got is None:
            got = self._compute_indices(kind, fid)
            self._indices_cache[key] = got
        return got

    def records_at(self, indexes) -> list:
        records = self.records
        return [records[i] for i in indexes]


class PythonTraceColumns(_ColumnsBase):
    """The zero-dependency backend: index lists, no arrays.

    Kernels that need real vectorization check ``is_vector`` and take
    their original per-record loops against this backend; only the
    flow partition and the memoized accessor slices live here.
    """

    backend = "python"
    is_vector = False

    def _compute_primary_id(self) -> int:
        volumes = [0] * len(self.flows)
        ids = self._ids_list
        records = self.records
        for i in range(self.n):
            volumes[ids[i]] += records[i].payload
        best = max(range(len(volumes)), key=lambda fid: (volumes[fid], -fid))
        if volumes[best] > 0:
            return best
        for record in records:
            if record.is_syn and not record.has_ack:
                return self.flow_id(record.flow)
        return ids[0]

    def _compute_indices(self, kind: str, fid: int) -> list[int]:
        ids = self._ids_list
        records = self.records
        if kind == "flow":
            return [i for i in range(self.n) if ids[i] == fid]
        if kind == "data":
            return [i for i in range(self.n)
                    if ids[i] == fid and records[i].payload > 0]
        if kind == "acks":
            rid = self.reverse_id(fid)
            if rid < 0:
                return []
            return [i for i in range(self.n)
                    if ids[i] == rid and records[i].has_ack
                    and records[i].payload == 0
                    and not records[i].is_syn and not records[i].is_rst]
        raise ValueError(f"unknown index kind {kind!r}")


class NumpyTraceColumns(_ColumnsBase):
    """The vector backend: one int64/float64/bool array per column."""

    backend = "numpy"
    is_vector = True

    def __init__(self, trace: "Trace"):
        super().__init__(trace)
        np = _np
        records = self.records
        n = self.n
        self.flow_ids = np.array(self._ids_list, dtype=np.int32) \
            if n else np.empty(0, dtype=np.int32)
        # One pass over the records builds every raw column; frozen
        # dataclass attribute access is the cost being amortized, so
        # touch each record exactly once.
        ts = np.empty(n, dtype=np.float64)
        seq = np.empty(n, dtype=np.int64)
        ack = np.empty(n, dtype=np.int64)
        flags = np.empty(n, dtype=np.int64)
        payload = np.empty(n, dtype=np.int64)
        window = np.empty(n, dtype=np.int64)
        mss = np.empty(n, dtype=np.int64)
        corrupted = np.empty(n, dtype=bool)
        for i, r in enumerate(records):
            ts[i] = r.timestamp
            seq[i] = r.seq
            ack[i] = r.ack
            flags[i] = r.flags
            payload[i] = r.payload
            window[i] = r.window
            mss[i] = -1 if r.mss_option is None else r.mss_option
            corrupted[i] = r.corrupted
        self.timestamp = ts
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.payload = payload
        self.window = window
        self.mss_option = mss          # -1 encodes "no option"
        self.corrupted = corrupted
        self.is_syn = (flags & 0x02) != 0
        self.is_fin = (flags & 0x01) != 0
        self.is_rst = (flags & 0x04) != 0
        self.has_ack = (flags & 0x10) != 0
        self.is_data = payload > 0
        seq_end = seq + payload
        seq_end += self.is_syn
        seq_end += self.is_fin
        self.seq_end = seq_end % _SEQ_SPACE

    # -- sequence-space unwrapping ----------------------------------------

    def rel(self, values, base: int):
        """Unwrap modular sequence *values* around *base* (int64).

        Matches ``seq_diff(value, base)`` elementwise: the result is
        in [-2**31, 2**31), positive meaning "after base".
        """
        return ((values - base + _SEQ_HALF) % _SEQ_SPACE) - _SEQ_HALF

    # -- flow partition ----------------------------------------------------

    def _compute_primary_id(self) -> int:
        np = _np
        volumes = np.bincount(self.flow_ids, weights=self.payload,
                              minlength=len(self.flows))
        best = int(np.argmax(volumes))   # first max = first-seen flow
        if volumes[best] > 0:
            return best
        mask = self.is_syn & ~self.has_ack
        hits = np.flatnonzero(mask)
        if hits.size:
            return int(self.flow_ids[hits[0]])
        return int(self.flow_ids[0])

    def _compute_indices(self, kind: str, fid: int):
        np = _np
        if kind == "flow":
            mask = self.flow_ids == fid
        elif kind == "data":
            mask = (self.flow_ids == fid) & self.is_data
        elif kind == "acks":
            rid = self.reverse_id(fid)
            if rid < 0:
                return np.empty(0, dtype=np.int64)
            mask = ((self.flow_ids == rid) & self.has_ack
                    & (self.payload == 0) & ~self.is_syn & ~self.is_rst)
        else:
            raise ValueError(f"unknown index kind {kind!r}")
        return np.flatnonzero(mask)

    def first_index(self, mask) -> int:
        """Index of the first True in *mask*, or -1."""
        hits = _np.flatnonzero(mask)
        return int(hits[0]) if hits.size else -1
