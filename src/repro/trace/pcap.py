"""Minimal libpcap file I/O.

Writes and reads the classic pcap container (magic ``0xa1b2c3d4``,
microsecond timestamps) with link type ``LINKTYPE_RAW`` (101): each
packet is a bare IPv4 datagram as produced by :mod:`repro.trace.wire`.
Files written here open cleanly in tcpdump/wireshark; files from
other tools read back so long as they use raw-IP or Ethernet link
types.

``snaplen`` works like tcpdump's ``-s``: captured packets are
truncated, after which TCP checksums can no longer be verified — the
situation that forces tcpanaly's corruption *inference* (§7).
"""

from __future__ import annotations

import struct
from pathlib import Path as FilePath
from typing import Iterable

from repro.trace.record import Trace
from repro.trace.wire import AddressMap, encode_record

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_RAW = 101
LINKTYPE_ETHERNET = 1

_BYTE_ORDER_PREFIX = {"big": ">", "little": "<"}


def write_pcap(trace: Trace, path: str | FilePath,
               snaplen: int | None = None,
               addresses: AddressMap | None = None,
               byte_order: str = "big") -> None:
    """Write *trace* to a pcap file at *path*.

    *byte_order* selects the container's header endianness (``"big"``
    or ``"little"``); readers detect either from the magic number, so
    both round-trip.  Packet *contents* are network order regardless.
    """
    try:
        endian = _BYTE_ORDER_PREFIX[byte_order]
    except KeyError:
        raise ValueError(f"byte_order must be 'big' or 'little', "
                         f"not {byte_order!r}")
    addresses = addresses or AddressMap()
    effective_snaplen = snaplen if snaplen is not None else 65535
    with open(path, "wb") as handle:
        handle.write(struct.pack(endian + "IHHiIII", PCAP_MAGIC, 2, 4, 0, 0,
                                 effective_snaplen, LINKTYPE_RAW))
        for record in trace.records:
            packet = encode_record(record, addresses)
            original_len = len(packet)
            if snaplen is not None:
                packet = packet[:snaplen]
            seconds = int(record.timestamp)
            micros = int(round((record.timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(struct.pack(endian + "IIII", seconds, micros,
                                     len(packet), original_len))
            handle.write(packet)


def write_raw_pcap(frames: Iterable[tuple[float, bytes, int | None]],
                   path: str | FilePath,
                   snaplen: int = 65535,
                   byte_order: str = "big") -> None:
    """Write pre-encoded raw-IP frames as a pcap file.

    Each frame is ``(timestamp, data, original_length)``;
    ``original_length`` of None means the frame is whole (``orig_len``
    = captured length).  A larger ``original_length`` records an
    honest snaplen-style truncation, exactly as tcpdump would.  This
    is the frame-level entry point the fuzz layer uses to write
    captures whose *bytes* — not just whose records — have been
    mangled.
    """
    try:
        endian = _BYTE_ORDER_PREFIX[byte_order]
    except KeyError:
        raise ValueError(f"byte_order must be 'big' or 'little', "
                         f"not {byte_order!r}")
    with open(path, "wb") as handle:
        handle.write(struct.pack(endian + "IHHiIII", PCAP_MAGIC, 2, 4, 0, 0,
                                 snaplen, LINKTYPE_RAW))
        for timestamp, data, original_length in frames:
            if original_length is None:
                original_length = len(data)
            seconds = int(timestamp)
            micros = int(round((timestamp - seconds) * 1e6))
            if micros >= 1_000_000:
                seconds += 1
                micros -= 1_000_000
            handle.write(struct.pack(endian + "IIII", seconds, micros,
                                     len(data), original_length))
            handle.write(data)


def read_pcap(path: str | FilePath,
              addresses: AddressMap | None = None,
              vantage: str = "", filter_name: str = "") -> Trace:
    """Read a pcap file into a :class:`Trace`.

    A thin eager wrapper over :func:`repro.stream.reader.iter_pcap` —
    one decode code path for both byte orders and for streaming and
    materialized reads.  Non-TCP and mangled packets are skipped (as a
    capture filter would drop them); a truncated final record is kept
    as a partial result when its headers survive.

    Truncated packets (snaplen captures) decode with
    ``verify_checksum`` disabled, so their ``corrupted`` flag is
    always False — the analyzer must infer corruption, as the paper
    describes for header-only traces.
    """
    from repro.stream.reader import iter_pcap

    records = list(iter_pcap(path, addresses=addresses, strict=True))
    return Trace(records=records, vantage=vantage, filter_name=filter_name,
                 reported_drops=None)
