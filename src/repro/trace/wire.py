"""On-the-wire IPv4/TCP encoding of trace records.

Real header layouts with real checksums, so traces written to pcap are
readable by standard tools and so checksum verification — which
tcpanaly performs when the filter captured whole packets (§6.1, §7) —
is meaningful.  Corruption is modelled faithfully: a corrupted record
is encoded with a payload bit flipped *after* the checksum is
computed, so decoding detects a checksum mismatch exactly as a real
kernel would.

Simulator hosts have symbolic names; :class:`AddressMap` assigns each
a stable IPv4 address for encoding and remembers the reverse mapping
for decoding.
"""

from __future__ import annotations

import struct

from repro.packets import Endpoint
from repro.trace.record import TraceRecord

IP_HEADER_LEN = 20
TCP_HEADER_LEN = 20
PROTO_TCP = 6


class PacketDecodeError(ValueError):
    """A packet that cannot be decoded into a TCP trace record.

    ``kind`` classifies the failure so streaming ingest can count
    cross-traffic separately from damage:

    - ``"non-ip"``: not an IPv4 datagram (IPv6, ARP, ...)
    - ``"non-tcp"``: a well-formed IPv4 datagram carrying another
      protocol (UDP and ICMP cross-traffic in real captures)
    - ``"malformed"``: truncated or internally inconsistent headers
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


class AddressMap:
    """Bidirectional mapping between symbolic host names and IPv4 text."""

    def __init__(self) -> None:
        self._forward: dict[str, str] = {}
        self._reverse: dict[str, str] = {}
        self._next_host = 1

    def ip_for(self, name: str) -> str:
        """The IPv4 address for *name*, allocating one if new."""
        if _looks_like_ip(name):
            return name
        if name not in self._forward:
            ip = f"10.0.{self._next_host // 256}.{self._next_host % 256}"
            self._next_host += 1
            self._forward[name] = ip
            self._reverse[ip] = name
        return self._forward[name]

    def name_for(self, ip: str) -> str:
        """The symbolic name for *ip*, or the ip itself if unknown."""
        return self._reverse.get(ip, ip)


def _looks_like_ip(name: str) -> bool:
    parts = name.split(".")
    return len(parts) == 4 and all(p.isdigit() and int(p) < 256
                                   for p in parts)


def _ip_to_bytes(ip: str) -> bytes:
    return bytes(int(part) for part in ip.split("."))


def _bytes_to_ip(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def encode_record(record: TraceRecord,
                  addresses: AddressMap | None = None) -> bytes:
    """Encode a record as a raw IPv4 packet (headers + zero payload)."""
    addresses = addresses or AddressMap()
    src_ip = _ip_to_bytes(addresses.ip_for(record.src.addr))
    dst_ip = _ip_to_bytes(addresses.ip_for(record.dst.addr))

    options = b""
    if record.mss_option is not None:
        options = struct.pack("!BBH", 2, 4, record.mss_option)
    data_offset = (TCP_HEADER_LEN + len(options)) // 4
    payload = bytes(record.payload)

    tcp_header = struct.pack(
        "!HHIIBBHHH",
        record.src.port, record.dst.port,
        record.seq, record.ack,
        data_offset << 4, record.flags,
        record.window, 0, 0)
    tcp_segment = tcp_header + options + payload
    pseudo = src_ip + dst_ip + struct.pack("!BBH", 0, PROTO_TCP,
                                           len(tcp_segment))
    checksum = internet_checksum(pseudo + tcp_segment)
    tcp_segment = (tcp_segment[:16] + struct.pack("!H", checksum)
                   + tcp_segment[18:])
    if record.corrupted:
        # Damage a byte after checksumming, as line noise would.
        damage_at = len(tcp_segment) - 1
        tcp_segment = (tcp_segment[:damage_at]
                       + bytes([tcp_segment[damage_at] ^ 0xFF])
                       + tcp_segment[damage_at + 1:])

    total_len = IP_HEADER_LEN + len(tcp_segment)
    ip_header = struct.pack(
        "!BBHHHBBH4s4s",
        0x45, 0, total_len,
        record.packet_id & 0xFFFF, 0,
        64, PROTO_TCP, 0,
        src_ip, dst_ip)
    ip_checksum = internet_checksum(ip_header)
    ip_header = ip_header[:10] + struct.pack("!H", ip_checksum) + ip_header[12:]
    return ip_header + tcp_segment


def decode_packet(data: bytes, timestamp: float,
                  addresses: AddressMap | None = None,
                  verify_checksum: bool = True) -> TraceRecord:
    """Decode a raw IPv4/TCP packet into a trace record.

    With ``verify_checksum`` (and an untruncated packet) the record's
    ``corrupted`` flag reflects an actual TCP checksum failure.
    """
    if len(data) < IP_HEADER_LEN:
        raise PacketDecodeError("malformed", "packet shorter than an IP header")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise PacketDecodeError("non-ip",
                                f"not IPv4 (version {version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < IP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                f"IPv4 header length {ihl} below minimum")
    total_len = struct.unpack("!H", data[2:4])[0]
    packet_id = struct.unpack("!H", data[4:6])[0]
    proto = data[9]
    if proto != PROTO_TCP:
        raise PacketDecodeError("non-tcp", f"not TCP (protocol {proto})")
    src_ip = _bytes_to_ip(data[12:16])
    dst_ip = _bytes_to_ip(data[16:20])

    # Link layers pad short frames (Ethernet's 60-byte minimum, most
    # commonly); anything past the IP datagram's own total length is
    # trailer padding, not TCP segment, and must stay out of both the
    # option walk and the checksum.
    tcp_end = min(len(data), total_len) if total_len >= ihl else len(data)
    tcp = data[ihl:tcp_end]
    if len(tcp) < TCP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                "packet shorter than a TCP header")
    (src_port, dst_port, seq, ack, offset_byte, flags, window,
     _checksum, _urgent) = struct.unpack("!HHIIBBHHH", tcp[:20])
    header_len = (offset_byte >> 4) * 4
    if header_len < TCP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                f"TCP data offset {header_len} below minimum")
    options = tcp[20:header_len]
    mss_option = None
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == 0:            # end-of-option-list
            break
        if kind == 1:            # no-op
            i += 1
            continue
        # Every other option carries a length byte covering itself; a
        # walk that trusts a missing, zero, or overrunning length
        # either crashes or loops — all three are malformed packets,
        # classified as such so ingest counts them instead of dying.
        if i + 1 >= len(options):
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} truncated before its length byte")
        length = options[i + 1]
        if length < 2:
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} carries invalid length {length}")
        if i + length > len(options):
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} (length {length}) overruns the "
                f"{len(options)}-byte option area")
        if kind == 2 and length == 4:
            mss_option = struct.unpack("!H", options[i + 2:i + 4])[0]
        i += length

    payload_len = total_len - ihl - header_len
    truncated = len(data) < total_len
    corrupted = False
    if verify_checksum and not truncated:
        pseudo = (data[12:16] + data[16:20]
                  + struct.pack("!BBH", 0, PROTO_TCP, len(tcp)))
        corrupted = internet_checksum(pseudo + tcp) != 0

    if addresses is not None:
        src_addr = addresses.name_for(src_ip)
        dst_addr = addresses.name_for(dst_ip)
    else:
        src_addr, dst_addr = src_ip, dst_ip

    return TraceRecord(
        timestamp=timestamp,
        src=Endpoint(src_addr, src_port), dst=Endpoint(dst_addr, dst_port),
        seq=seq, ack=ack, flags=flags, payload=max(payload_len, 0),
        window=window, mss_option=mss_option, corrupted=corrupted,
        packet_id=packet_id)


def decode_packet_batch(packets: list[bytes], timestamps: list[float],
                        addresses: AddressMap | None = None,
                        verify_checksums: list[bool] | None = None
                        ) -> list:
    """Decode many raw packets at once; vectorized where possible.

    Returns one entry per input packet: a :class:`TraceRecord`, or the
    :class:`PacketDecodeError` :func:`decode_packet` would have raised.
    With the numpy backend active, "simple" packets — IPv4 without IP
    options, TCP, header fully captured, option area empty or exactly
    one MSS option — have their header fields gathered and checksums
    summed across the whole batch in array operations; every other
    packet (IP options, exotic TCP options, odd-length segments with
    link trailers, anything malformed) takes the per-packet path, so
    results including error kinds and messages are identical to
    calling :func:`decode_packet` in a loop.
    """
    n = len(packets)
    if verify_checksums is None:
        verify_checksums = [True] * n
    results: list = [None] * n
    from repro.trace.columns import active_backend, numpy_module
    simple_rows: "list[int]" = []
    if n >= 16 and active_backend() == "numpy":
        simple_rows = _decode_simple_rows(packets, timestamps, addresses,
                                          verify_checksums, results,
                                          numpy_module())
    remaining = (range(n) if not simple_rows
                 else sorted(set(range(n)) - set(simple_rows)))
    for i in remaining:
        try:
            results[i] = decode_packet(packets[i], timestamps[i], addresses,
                                       verify_checksums[i])
        except PacketDecodeError as error:
            results[i] = error
    return results


def _decode_simple_rows(packets, timestamps, addresses, verify_checksums,
                        results, np) -> list:
    """Vectorized decode of the simple packets; fills *results* in
    place and returns the row indexes it handled."""
    n = len(packets)
    lens = np.fromiter((len(p) for p in packets), dtype=np.int64, count=n)
    # Concatenate with per-packet padding to even length, so every
    # packet starts on a 16-bit word boundary and an odd TCP segment's
    # checksum pad byte is the zero RFC 1071 specifies.
    buffer = b"".join(p if len(p) % 2 == 0 else p + b"\x00"
                      for p in packets)
    starts = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(lens + (lens & 1))[:-1]))
    octets = np.frombuffer(buffer, dtype=np.uint8)
    word_sums = np.concatenate((
        np.zeros(1, dtype=np.int64),
        np.cumsum(np.frombuffer(buffer, dtype=">u2"), dtype=np.int64)))

    candidate = np.flatnonzero(lens >= IP_HEADER_LEN + TCP_HEADER_LEN)
    if candidate.size == 0:
        return []
    s = starts[candidate]
    clens = lens[candidate]

    def gather(offsets) -> "np.ndarray":
        # Fancy-gather one header byte per packet, widened so shifts
        # cannot overflow uint8.
        return octets[offsets].astype(np.int64)

    version_ihl = gather(s)
    total_len = (gather(s + 2) << 8) | gather(s + 3)
    packet_id = (gather(s + 4) << 8) | gather(s + 5)
    simple = ((version_ihl == 0x45)             # IPv4, no IP options
              & (gather(s + 9) == PROTO_TCP)
              & (total_len >= IP_HEADER_LEN))
    tcp_end = np.minimum(clens, total_len)
    tcp_len = tcp_end - IP_HEADER_LEN
    simple &= tcp_len >= TCP_HEADER_LEN

    t = s + IP_HEADER_LEN
    src_port = (gather(t) << 8) | gather(t + 1)
    dst_port = (gather(t + 2) << 8) | gather(t + 3)
    seq = ((gather(t + 4) << 24) | (gather(t + 5) << 16)
           | (gather(t + 6) << 8) | gather(t + 7))
    ack = ((gather(t + 8) << 24) | (gather(t + 9) << 16)
           | (gather(t + 10) << 8) | gather(t + 11))
    flags = gather(t + 13)
    window = (gather(t + 14) << 8) | gather(t + 15)
    header_len = (gather(t + 12) >> 4) * 4
    simple &= ((header_len == TCP_HEADER_LEN)
               | (header_len == TCP_HEADER_LEN + 4))
    simple &= tcp_len >= header_len

    # The only 4-byte option area decoded vectorially is an exact MSS
    # option; anything else falls back to the per-packet option walk.
    mss = np.full(candidate.size, -1, dtype=np.int64)
    with_options = np.flatnonzero(simple & (header_len == TCP_HEADER_LEN + 4))
    if with_options.size:
        o = t[with_options] + TCP_HEADER_LEN
        is_mss = (octets[o] == 2) & (octets[o + 1] == 4)
        simple[with_options] &= is_mss
        mss[with_options[is_mss]] = ((gather(o[is_mss] + 2) << 8)
                                     | gather(o[is_mss] + 3))

    truncated = clens < total_len
    verify = (np.fromiter((verify_checksums[i] for i in candidate),
                          dtype=bool, count=candidate.size)
              & ~truncated)
    # An odd TCP segment followed by link-trailer bytes would checksum
    # over the trailer's first byte instead of a zero pad: per-packet.
    simple &= ~(verify & (tcp_len % 2 == 1) & (tcp_end < clens))

    corrupted = np.zeros(candidate.size, dtype=bool)
    check_rows = np.flatnonzero(simple & verify)
    if check_rows.size:
        cs = s[check_rows]
        clen = tcp_len[check_rows]
        first = (cs + IP_HEADER_LEN) >> 1
        last = (cs + IP_HEADER_LEN + clen + (clen & 1)) >> 1
        segment_sum = word_sums[last] - word_sums[first]
        pseudo_sum = (word_sums[(cs + 20) >> 1] - word_sums[(cs + 12) >> 1]
                      + PROTO_TCP + clen)
        total = segment_sum + pseudo_sum
        for _ in range(3):                    # fold carries (RFC 1071)
            total = (total & 0xFFFF) + (total >> 16)
        corrupted[check_rows] = total != 0xFFFF

    src_ip = ((gather(s + 12) << 24) | (gather(s + 13) << 16)
              | (gather(s + 14) << 8) | gather(s + 15))
    dst_ip = ((gather(s + 16) << 24) | (gather(s + 17) << 16)
              | (gather(s + 18) << 8) | gather(s + 19))
    payload = np.maximum(total_len - IP_HEADER_LEN - header_len, 0)

    endpoint_cache: dict = {}

    def endpoint(ip: int, port: int) -> Endpoint:
        key = (ip, port)
        cached = endpoint_cache.get(key)
        if cached is None:
            text = f"{ip >> 24 & 255}.{ip >> 16 & 255}.{ip >> 8 & 255}.{ip & 255}"
            name = addresses.name_for(text) if addresses is not None else text
            cached = Endpoint(name, port)
            endpoint_cache[key] = cached
        return cached

    # Build the records from plain Python lists: converting whole
    # columns once is far cheaper than per-element numpy scalar reads.
    rows = np.flatnonzero(simple)
    handled = candidate[rows].tolist()
    for (i, sip, sport, dip, dport, rseq, rack, rflags, rpayload,
         rwindow, rmss, rcorrupt, rid) in zip(
            handled, src_ip[rows].tolist(), src_port[rows].tolist(),
            dst_ip[rows].tolist(), dst_port[rows].tolist(),
            seq[rows].tolist(), ack[rows].tolist(), flags[rows].tolist(),
            payload[rows].tolist(), window[rows].tolist(),
            mss[rows].tolist(), corrupted[rows].tolist(),
            packet_id[rows].tolist()):
        results[i] = TraceRecord(
            timestamp=timestamps[i],
            src=endpoint(sip, sport), dst=endpoint(dip, dport),
            seq=rseq, ack=rack, flags=rflags, payload=rpayload,
            window=rwindow, mss_option=None if rmss < 0 else rmss,
            corrupted=rcorrupt, packet_id=rid)
    return handled
