"""On-the-wire IPv4/TCP encoding of trace records.

Real header layouts with real checksums, so traces written to pcap are
readable by standard tools and so checksum verification — which
tcpanaly performs when the filter captured whole packets (§6.1, §7) —
is meaningful.  Corruption is modelled faithfully: a corrupted record
is encoded with a payload bit flipped *after* the checksum is
computed, so decoding detects a checksum mismatch exactly as a real
kernel would.

Simulator hosts have symbolic names; :class:`AddressMap` assigns each
a stable IPv4 address for encoding and remembers the reverse mapping
for decoding.
"""

from __future__ import annotations

import struct

from repro.packets import Endpoint
from repro.trace.record import TraceRecord

IP_HEADER_LEN = 20
TCP_HEADER_LEN = 20
PROTO_TCP = 6


class PacketDecodeError(ValueError):
    """A packet that cannot be decoded into a TCP trace record.

    ``kind`` classifies the failure so streaming ingest can count
    cross-traffic separately from damage:

    - ``"non-ip"``: not an IPv4 datagram (IPv6, ARP, ...)
    - ``"non-tcp"``: a well-formed IPv4 datagram carrying another
      protocol (UDP and ICMP cross-traffic in real captures)
    - ``"malformed"``: truncated or internally inconsistent headers
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


class AddressMap:
    """Bidirectional mapping between symbolic host names and IPv4 text."""

    def __init__(self) -> None:
        self._forward: dict[str, str] = {}
        self._reverse: dict[str, str] = {}
        self._next_host = 1

    def ip_for(self, name: str) -> str:
        """The IPv4 address for *name*, allocating one if new."""
        if _looks_like_ip(name):
            return name
        if name not in self._forward:
            ip = f"10.0.{self._next_host // 256}.{self._next_host % 256}"
            self._next_host += 1
            self._forward[name] = ip
            self._reverse[ip] = name
        return self._forward[name]

    def name_for(self, ip: str) -> str:
        """The symbolic name for *ip*, or the ip itself if unknown."""
        return self._reverse.get(ip, ip)


def _looks_like_ip(name: str) -> bool:
    parts = name.split(".")
    return len(parts) == 4 and all(p.isdigit() and int(p) < 256
                                   for p in parts)


def _ip_to_bytes(ip: str) -> bytes:
    return bytes(int(part) for part in ip.split("."))


def _bytes_to_ip(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def encode_record(record: TraceRecord,
                  addresses: AddressMap | None = None) -> bytes:
    """Encode a record as a raw IPv4 packet (headers + zero payload)."""
    addresses = addresses or AddressMap()
    src_ip = _ip_to_bytes(addresses.ip_for(record.src.addr))
    dst_ip = _ip_to_bytes(addresses.ip_for(record.dst.addr))

    options = b""
    if record.mss_option is not None:
        options = struct.pack("!BBH", 2, 4, record.mss_option)
    data_offset = (TCP_HEADER_LEN + len(options)) // 4
    payload = bytes(record.payload)

    tcp_header = struct.pack(
        "!HHIIBBHHH",
        record.src.port, record.dst.port,
        record.seq, record.ack,
        data_offset << 4, record.flags,
        record.window, 0, 0)
    tcp_segment = tcp_header + options + payload
    pseudo = src_ip + dst_ip + struct.pack("!BBH", 0, PROTO_TCP,
                                           len(tcp_segment))
    checksum = internet_checksum(pseudo + tcp_segment)
    tcp_segment = (tcp_segment[:16] + struct.pack("!H", checksum)
                   + tcp_segment[18:])
    if record.corrupted:
        # Damage a byte after checksumming, as line noise would.
        damage_at = len(tcp_segment) - 1
        tcp_segment = (tcp_segment[:damage_at]
                       + bytes([tcp_segment[damage_at] ^ 0xFF])
                       + tcp_segment[damage_at + 1:])

    total_len = IP_HEADER_LEN + len(tcp_segment)
    ip_header = struct.pack(
        "!BBHHHBBH4s4s",
        0x45, 0, total_len,
        record.packet_id & 0xFFFF, 0,
        64, PROTO_TCP, 0,
        src_ip, dst_ip)
    ip_checksum = internet_checksum(ip_header)
    ip_header = ip_header[:10] + struct.pack("!H", ip_checksum) + ip_header[12:]
    return ip_header + tcp_segment


def decode_packet(data: bytes, timestamp: float,
                  addresses: AddressMap | None = None,
                  verify_checksum: bool = True) -> TraceRecord:
    """Decode a raw IPv4/TCP packet into a trace record.

    With ``verify_checksum`` (and an untruncated packet) the record's
    ``corrupted`` flag reflects an actual TCP checksum failure.
    """
    if len(data) < IP_HEADER_LEN:
        raise PacketDecodeError("malformed", "packet shorter than an IP header")
    version_ihl = data[0]
    if version_ihl >> 4 != 4:
        raise PacketDecodeError("non-ip",
                                f"not IPv4 (version {version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < IP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                f"IPv4 header length {ihl} below minimum")
    total_len = struct.unpack("!H", data[2:4])[0]
    packet_id = struct.unpack("!H", data[4:6])[0]
    proto = data[9]
    if proto != PROTO_TCP:
        raise PacketDecodeError("non-tcp", f"not TCP (protocol {proto})")
    src_ip = _bytes_to_ip(data[12:16])
    dst_ip = _bytes_to_ip(data[16:20])

    # Link layers pad short frames (Ethernet's 60-byte minimum, most
    # commonly); anything past the IP datagram's own total length is
    # trailer padding, not TCP segment, and must stay out of both the
    # option walk and the checksum.
    tcp_end = min(len(data), total_len) if total_len >= ihl else len(data)
    tcp = data[ihl:tcp_end]
    if len(tcp) < TCP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                "packet shorter than a TCP header")
    (src_port, dst_port, seq, ack, offset_byte, flags, window,
     _checksum, _urgent) = struct.unpack("!HHIIBBHHH", tcp[:20])
    header_len = (offset_byte >> 4) * 4
    if header_len < TCP_HEADER_LEN:
        raise PacketDecodeError("malformed",
                                f"TCP data offset {header_len} below minimum")
    options = tcp[20:header_len]
    mss_option = None
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == 0:            # end-of-option-list
            break
        if kind == 1:            # no-op
            i += 1
            continue
        # Every other option carries a length byte covering itself; a
        # walk that trusts a missing, zero, or overrunning length
        # either crashes or loops — all three are malformed packets,
        # classified as such so ingest counts them instead of dying.
        if i + 1 >= len(options):
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} truncated before its length byte")
        length = options[i + 1]
        if length < 2:
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} carries invalid length {length}")
        if i + length > len(options):
            raise PacketDecodeError(
                "malformed",
                f"TCP option kind {kind} (length {length}) overruns the "
                f"{len(options)}-byte option area")
        if kind == 2 and length == 4:
            mss_option = struct.unpack("!H", options[i + 2:i + 4])[0]
        i += length

    payload_len = total_len - ihl - header_len
    truncated = len(data) < total_len
    corrupted = False
    if verify_checksum and not truncated:
        pseudo = (data[12:16] + data[16:20]
                  + struct.pack("!BBH", 0, PROTO_TCP, len(tcp)))
        corrupted = internet_checksum(pseudo + tcp) != 0

    if addresses is not None:
        src_addr = addresses.name_for(src_ip)
        dst_addr = addresses.name_for(dst_ip)
    else:
        src_addr, dst_addr = src_ip, dst_ip

    return TraceRecord(
        timestamp=timestamp,
        src=Endpoint(src_addr, src_port), dst=Endpoint(dst_addr, dst_port),
        seq=seq, ack=ack, flags=flags, payload=max(payload_len, 0),
        window=window, mss_option=mss_option, corrupted=corrupted,
        packet_id=packet_id)
