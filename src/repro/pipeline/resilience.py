"""The supervised worker pool: the batch pipeline's crash boundary.

``multiprocessing.Pool`` survives exceptions but not *corpses*: a
worker that segfaults, gets OOM-killed, or ``os._exit``s mid-item
wedges or aborts the whole run.  At corpus scale (the paper's ~40,000
wild traces) that is the difference between a batch that completes
with a few quarantined entries and a batch that dies at 3 a.m. on
trace 31,207.

:class:`SupervisedPool` dispatches one item at a time to each worker
over a private task queue, so the parent always knows exactly which
item every worker holds.  The supervision loop then enforces two
promises:

- **Crash recovery** — a dead worker's in-flight item is requeued with
  a bounded retry budget; when the budget is spent the item is
  quarantined as ``error_kind: "crash"`` and the batch continues.
- **Per-trace timeouts** — an item holding a worker past the
  wall-clock budget gets its worker killed and is quarantined as
  ``error_kind: "timeout"`` (no retry: a deterministic hang would
  just hang again).

Either way a replacement worker is spawned and the pool stays at full
strength.  Every input index is resolved exactly once — late results
from a worker that raced its own crash diagnosis are dropped, and
requeued duplicates of an already-resolved index are skipped.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.errors import AnalysisError

#: Seconds the supervisor blocks on the result queue before running a
#: health check (liveness + timeouts) over the in-flight set.
POLL_INTERVAL = 0.05


def error_payload(item, error: AnalysisError,
                  attempts: int | None = None) -> dict:
    """The quarantine payload for one failed item.

    Shape-compatible with a healthy payload's provenance fields, plus
    the classified failure; the aggregate report and JSONL consumers
    key off ``error_kind``.
    """
    payload = {
        "trace": item.name,
        "implementation": item.implementation,
    }
    payload.update(error.to_fields())
    if attempts is not None:
        payload["attempts"] = attempts
    return payload


def _worker_main(worker_id: int, task_queue, result_queue,
                 worker_fn) -> None:
    """One worker: pull (index, item, attempt), analyze, post result.

    *worker_fn* is expected to classify its own exceptions into error
    payloads; anything that still escapes (a defect in the guard
    itself) is converted here so a worker never dies of an exception —
    only of a genuine crash or an external kill.
    """
    while True:
        try:
            task = task_queue.get()
        except (KeyboardInterrupt, EOFError):
            return
        if task is None:
            return
        index, item, attempt = task
        start = time.perf_counter()
        try:
            payloads = worker_fn(index, item, attempt)
        except KeyboardInterrupt:
            return
        except Exception as error:  # last-ditch: keep the worker alive
            from repro.core.errors import classify_exception
            payloads = [error_payload(item, classify_exception(error))]
        try:
            result_queue.put((worker_id, index, payloads,
                              time.perf_counter() - start))
        except (KeyboardInterrupt, BrokenPipeError):
            return


@dataclass
class _Worker:
    process: multiprocessing.Process
    tasks: "multiprocessing.Queue" = field(repr=False, default=None)


class SupervisedPool:
    """Fan items over worker processes; survive crashes and hangs."""

    def __init__(self, workers: int,
                 worker_fn: Callable[[int, object, int], list[dict]],
                 timeout: float | None = None,
                 retries: int = 2,
                 poll: float = POLL_INTERVAL):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, not {retries}")
        self._workers = workers
        self._worker_fn = worker_fn
        self._timeout = timeout
        self._retries = retries
        self._poll = poll
        self._context = multiprocessing.get_context()

    def run(self, tasks: list[tuple[int, object]]
            ) -> Iterator[tuple[int, list[dict], float]]:
        """Yield ``(index, payloads, elapsed)`` per task, as completed.

        Results arrive in completion order; the caller restores input
        order (the pipeline sorts by trace name anyway).  The pool is
        torn down — gracefully after a complete run, forcibly when the
        consumer abandons the generator — before the generator exits.
        """
        total = len(tasks)
        if total == 0:
            return
        pending = deque((index, item, 0) for index, item in tasks)
        result_queue = self._context.Queue()
        workers: dict[int, _Worker] = {}
        inflight: dict[int, tuple[tuple, float]] = {}
        resolved: set[int] = set()
        done = 0
        next_id = 0

        def spawn() -> int:
            nonlocal next_id
            worker_id = next_id
            next_id += 1
            task_queue = self._context.Queue()
            process = self._context.Process(
                target=_worker_main,
                args=(worker_id, task_queue, result_queue, self._worker_fn),
                daemon=True)
            process.start()
            workers[worker_id] = _Worker(process=process, tasks=task_queue)
            return worker_id

        def dispatch(worker_id: int) -> None:
            # Skip queued duplicates of indices a late result resolved.
            while pending and pending[0][0] in resolved:
                pending.popleft()
            if not pending:
                return
            if not workers[worker_id].process.is_alive():
                self._retire_worker(workers, worker_id)
                worker_id = spawn()
            task = pending.popleft()
            workers[worker_id].tasks.put(task)
            inflight[worker_id] = (task, time.monotonic())

        try:
            for _ in range(min(self._workers, total)):
                dispatch(spawn())
            while done < total:
                try:
                    worker_id, index, payloads, elapsed = \
                        result_queue.get(timeout=self._poll)
                except queue.Empty:
                    # No result this tick: diagnose the in-flight set.
                    now = time.monotonic()
                    for worker_id in list(inflight):
                        (index, item, attempt), started = inflight[worker_id]
                        worker = workers.get(worker_id)
                        alive = worker is not None \
                            and worker.process.is_alive()
                        if alive and (self._timeout is None
                                      or now - started <= self._timeout):
                            continue
                        del inflight[worker_id]
                        if not alive:
                            exitcode = worker.process.exitcode \
                                if worker else None
                            self._retire_worker(workers, worker_id)
                            if attempt < self._retries:
                                pending.appendleft((index, item,
                                                    attempt + 1))
                            elif index not in resolved:
                                resolved.add(index)
                                done += 1
                                error = AnalysisError(
                                    "crash",
                                    f"worker died (exit code {exitcode}); "
                                    f"gave up after {attempt + 1} "
                                    f"attempt(s)")
                                yield (index,
                                       [error_payload(item, error,
                                                      attempts=attempt + 1)],
                                       now - started)
                        else:  # alive but past the wall-clock budget
                            worker.process.kill()
                            worker.process.join()
                            self._retire_worker(workers, worker_id)
                            if index not in resolved:
                                resolved.add(index)
                                done += 1
                                error = AnalysisError(
                                    "timeout",
                                    f"analysis exceeded {self._timeout:g}s "
                                    f"wall-clock timeout")
                                yield (index, [error_payload(item, error)],
                                       now - started)
                        dispatch(spawn())
                    continue
                inflight.pop(worker_id, None)
                if index in resolved:
                    # Late duplicate of a crash-diagnosed item; the
                    # worker is idle again either way.
                    dispatch(worker_id)
                    continue
                resolved.add(index)
                done += 1
                yield index, payloads, elapsed
                dispatch(worker_id)
        finally:
            self._shutdown(workers, result_queue, graceful=done >= total)

    @staticmethod
    def _retire_worker(workers: dict[int, _Worker],
                       worker_id: int) -> None:
        worker = workers.pop(worker_id, None)
        if worker is None:
            return
        worker.tasks.close()
        worker.tasks.cancel_join_thread()

    def _shutdown(self, workers: dict[int, _Worker], result_queue,
                  graceful: bool) -> None:
        """Tear the pool down without ever hanging the parent."""
        for worker in workers.values():
            if graceful and worker.process.is_alive():
                try:
                    worker.tasks.put(None)
                except (OSError, ValueError):
                    pass
        for worker in workers.values():
            worker.process.join(timeout=1.0 if graceful else 0.1)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
        result_queue.close()
        result_queue.cancel_join_thread()
