"""The supervised worker pool: the batch pipeline's crash boundary.

``multiprocessing.Pool`` survives exceptions but not *corpses*: a
worker that segfaults, gets OOM-killed, or ``os._exit``s mid-item
wedges or aborts the whole run.  At corpus scale (the paper's ~40,000
wild traces) that is the difference between a batch that completes
with a few quarantined entries and a batch that dies at 3 a.m. on
trace 31,207.

:class:`PoolSession` is the supervision substrate: a long-lived pool
of worker slots that accepts work incrementally (:meth:`submit`) and
surfaces completions incrementally (:meth:`poll`), so a caller that
discovers its work over time — the serve daemon tailing a live
capture — gets the same crash/hang guarantees as a fixed batch:

- **Crash recovery** — a dead worker's in-flight item is requeued with
  a bounded retry budget; when the budget is spent the item is
  quarantined as ``error_kind: "crash"`` and the session continues.
- **Per-item timeouts** — an item holding a worker past the
  wall-clock budget gets its worker killed and is quarantined as
  ``error_kind: "timeout"`` (no retry: a deterministic hang would
  just hang again).

Either way a replacement worker is spawned (counted in
:attr:`PoolSession.worker_restarts`) and the pool stays at full
strength.  Every submitted index is resolved exactly once — late
results from a worker that raced its own crash diagnosis are dropped,
and requeued duplicates of an already-resolved index are skipped.

Work may be pinned to a slot with ``submit(..., shard=n)``: all items
sharing ``n % workers`` execute on the same worker in submission
order.  The serve scheduler shards by connection-key hash so one
connection's flows never race each other.

:class:`SupervisedPool` is the original fixed-batch interface, now a
thin generator wrapper over one session per ``run()`` — the existing
resilience test suite exercises the session through it.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.errors import AnalysisError

#: Seconds the supervisor blocks on the result queue before running a
#: health check (liveness + timeouts) over the in-flight set.
POLL_INTERVAL = 0.05


def error_payload(item, error: AnalysisError,
                  attempts: int | None = None) -> dict:
    """The quarantine payload for one failed item.

    Shape-compatible with a healthy payload's provenance fields, plus
    the classified failure; the aggregate report and JSONL consumers
    key off ``error_kind``.
    """
    payload = {
        "trace": item.name,
        "implementation": item.implementation,
    }
    payload.update(error.to_fields())
    if attempts is not None:
        payload["attempts"] = attempts
    return payload


def _worker_main(worker_id: int, task_queue, result_conn,
                 worker_fn) -> None:
    """One worker: pull (index, item, attempt), analyze, post result.

    *worker_fn* is expected to classify its own exceptions into error
    payloads; anything that still escapes (a defect in the guard
    itself) is converted here so a worker never dies of an exception —
    only of a genuine crash or an external kill.

    Results go out over a per-worker pipe, not a shared queue, and
    the ``send`` is synchronous: when it returns, the message is in
    the pipe whole.  A shared ``multiprocessing.Queue`` would post
    through a background feeder thread holding a write lock shared by
    every worker — a worker SIGKILLed at the wrong instant (a fault
    plan's ``kill``, the OOM killer) leaves that lock orphaned and
    wedges every *other* worker's result forever.  With one pipe per
    worker, a kill can only tear the killed worker's own stream,
    which the supervisor reads as EOF and diagnoses as the crash it
    is.
    """
    while True:
        try:
            task = task_queue.get()
        except (KeyboardInterrupt, EOFError):
            return
        if task is None:
            return
        index, item, attempt = task
        start = time.perf_counter()
        try:
            payloads = worker_fn(index, item, attempt)
        except KeyboardInterrupt:
            return
        except Exception as error:  # last-ditch: keep the worker alive
            from repro.core.errors import classify_exception
            payloads = [error_payload(item, classify_exception(error))]
        try:
            result_conn.send((worker_id, index, payloads,
                              time.perf_counter() - start))
        except (KeyboardInterrupt, BrokenPipeError, OSError):
            return


@dataclass
class _Worker:
    process: multiprocessing.Process
    tasks: "multiprocessing.Queue" = field(repr=False, default=None)
    #: Parent's read end of this worker's private result pipe.
    results: "multiprocessing.connection.Connection" = field(
        repr=False, default=None)


@dataclass
class _Slot:
    """One worker position: its process, queue, backlog, in-flight item.

    The slot outlives any individual worker process — crashes and
    kills replace the worker, never the slot, which is what makes
    shard pinning stable across restarts.
    """

    worker: _Worker | None = None
    backlog: deque = field(default_factory=deque)
    # (index, item, attempt) plus its dispatch time, or None when idle.
    inflight: tuple[tuple, float] | None = None


class PoolSession:
    """A long-lived supervised pool: submit work anytime, poll results.

    Unlike :meth:`SupervisedPool.run`, the total amount of work need
    not be known up front; :attr:`outstanding` tracks what has been
    submitted but not yet resolved.  Callers drive the session with a
    loop of ``submit``/``poll`` and finish with :meth:`close`.
    """

    def __init__(self, workers: int,
                 worker_fn: Callable[[int, object, int], list[dict]],
                 timeout: float | None = None,
                 retries: int = 2,
                 poll: float = POLL_INTERVAL):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, not {retries}")
        self._worker_fn = worker_fn
        self._timeout = timeout
        self._retries = retries
        self._poll = poll
        self._context = multiprocessing.get_context()
        self._slots = [_Slot() for _ in range(workers)]
        self._slot_of: dict[int, int] = {}      # worker_id -> slot no.
        self._shared: deque = deque()           # unpinned backlog
        self._resolved: set[int] = set()
        self._outstanding = 0
        self._next_worker_id = 0
        self._started = 0       # workers ever spawned
        self._closed = False
        self.worker_restarts = 0

    @property
    def workers(self) -> int:
        return len(self._slots)

    @property
    def outstanding(self) -> int:
        """Items submitted but not yet resolved (queued or running)."""
        return self._outstanding

    @property
    def queue_depth(self) -> int:
        """Items waiting for a worker (excludes the in-flight set)."""
        return len(self._shared) + sum(len(s.backlog) for s in self._slots)

    @property
    def inflight(self) -> int:
        return sum(1 for slot in self._slots if slot.inflight is not None)

    def submit(self, index: int, item, shard: int | None = None) -> None:
        """Enqueue one work item.

        *index* must be unique across the session's lifetime — it is
        how results are matched to submissions.  With *shard*, the
        item is pinned to slot ``shard % workers`` and runs after
        everything previously pinned there; without, any free worker
        takes it.
        """
        if self._closed:
            raise ValueError("session is closed")
        task = (index, item, 0)
        if shard is None:
            self._shared.append(task)
        else:
            self._slots[shard % len(self._slots)].backlog.append(task)
        self._outstanding += 1
        self._pump()

    def poll(self, timeout: float | None = None
             ) -> list[tuple[int, list[dict], float]]:
        """Collect finished work, blocking at most *timeout* seconds.

        Returns ``(index, payloads, elapsed)`` triples in completion
        order — possibly none.  When no result arrives within the
        wait, the in-flight set is health-checked instead, which is
        where crashes and hangs are diagnosed and quarantined; their
        error payloads are returned like any other completion.
        """
        if self._closed:
            raise ValueError("session is closed")
        self._pump()
        results: list[tuple[int, list[dict], float]] = []
        wait = self._poll if timeout is None else timeout
        block = self._outstanding > 0 and wait > 0
        conns = [slot.worker.results for slot in self._slots
                 if slot.worker is not None]
        ready = multiprocessing.connection.wait(
            conns, timeout=wait if block else 0) if conns else []
        eof = False
        for conn in ready:
            eof |= self._drain_conn(conn, results)
        if (block and not results) or eof:
            # Nothing arrived within the wait (or a worker's pipe hit
            # EOF): diagnose the in-flight set — crashes and hangs
            # surface here, as quarantined error payloads.
            results.extend(self._health_check())
        self._pump()
        return results

    def _drain_conn(self, conn, results) -> bool:
        """Deliver every complete message waiting on one worker's
        pipe; return True when the stream has hit EOF (worker died —
        a torn trailing message reads as EOF too, never a hang)."""
        while True:
            try:
                if not conn.poll(0):
                    return False
                message = conn.recv()
            except (EOFError, OSError):
                return True
            self._handle_message(message, results)

    def _handle_message(self, message, results) -> None:
        worker_id, index, payloads, elapsed = message
        slot_no = self._slot_of.get(worker_id)
        if slot_no is not None:
            slot = self._slots[slot_no]
            if slot.inflight is not None \
                    and slot.inflight[0][0] == index:
                slot.inflight = None
        if index in self._resolved:
            return              # late duplicate of a diagnosed item
        self._resolved.add(index)
        self._outstanding -= 1
        results.append((index, payloads, elapsed))

    def cancel(self, predicate: Callable[[object], bool]
               ) -> list[tuple[int, object]]:
        """Withdraw queued items matching *predicate*; return them.

        Only items still waiting for a worker are cancellable — the
        in-flight set is left to finish (or crash) under the normal
        supervision rules, so a worker is never yanked mid-item.
        Cancelled indexes are marked resolved: a late duplicate from
        a requeue can never resurrect them.  The serve daemon uses
        this to flush a circuit-breaker-quarantined source's backlog
        out of the shared pool without touching other sources' work.
        """
        cancelled: list[tuple[int, object]] = []
        backlogs = [self._shared] + [slot.backlog for slot in self._slots]
        for backlog in backlogs:
            kept: deque = deque()
            while backlog:
                index, item, attempt = backlog.popleft()
                if index not in self._resolved and predicate(item):
                    self._resolved.add(index)
                    self._outstanding -= 1
                    cancelled.append((index, item))
                else:
                    kept.append((index, item, attempt))
            backlog.extend(kept)
        return cancelled

    def drain(self) -> Iterator[tuple[int, list[dict], float]]:
        """Yield results until nothing submitted remains unresolved."""
        while self._outstanding > 0:
            yield from self.poll()

    def close(self, graceful: bool = True) -> None:
        """Tear the pool down without ever hanging the parent."""
        if self._closed:
            return
        self._closed = True
        workers = [slot.worker for slot in self._slots
                   if slot.worker is not None]
        for worker in workers:
            if graceful and worker.process.is_alive():
                try:
                    worker.tasks.put(None)
                except (OSError, ValueError):
                    pass
        for worker in workers:
            worker.process.join(timeout=1.0 if graceful else 0.1)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.tasks.close()
            worker.tasks.cancel_join_thread()
            try:
                worker.results.close()
            except OSError:
                pass

    # -- internals ---------------------------------------------------

    def _spawn(self, slot_no: int) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        task_queue = self._context.Queue()
        recv_conn, send_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, send_conn, self._worker_fn),
            daemon=True)
        process.start()
        # Close the parent's copy of the write end: the worker must be
        # the pipe's only writer, so its death reads as EOF here.
        send_conn.close()
        self._slots[slot_no].worker = _Worker(process=process,
                                              tasks=task_queue,
                                              results=recv_conn)
        self._slot_of[worker_id] = slot_no
        if self._started >= len(self._slots):
            self.worker_restarts += 1
        self._started += 1

    def _retire(self, slot_no: int) -> None:
        slot = self._slots[slot_no]
        worker = slot.worker
        if worker is None:
            return
        slot.worker = None
        worker.tasks.close()
        worker.tasks.cancel_join_thread()
        try:
            worker.results.close()
        except OSError:
            pass

    def _next_task(self, slot: _Slot) -> tuple | None:
        """Pop the slot's next runnable task (pinned before shared)."""
        for backlog in (slot.backlog, self._shared):
            while backlog:
                task = backlog.popleft()
                if task[0] not in self._resolved:
                    return task
        return None

    def _pump(self) -> None:
        """Hand queued tasks to every idle slot."""
        for slot_no, slot in enumerate(self._slots):
            if slot.inflight is not None:
                continue
            task = self._next_task(slot)
            if task is None:
                continue
            if slot.worker is None or not slot.worker.process.is_alive():
                self._retire(slot_no)
                self._spawn(slot_no)
            slot.worker.tasks.put(task)
            slot.inflight = (task, time.monotonic())

    def _health_check(self) -> list[tuple[int, list[dict], float]]:
        """Diagnose the in-flight set: crashes requeue, hangs die."""
        results = []
        now = time.monotonic()
        for slot_no, slot in enumerate(self._slots):
            worker = slot.worker
            alive = worker is not None and worker.process.is_alive()
            if slot.inflight is None:
                if worker is not None and not alive:
                    # Died between tasks: retire now so its EOF-ready
                    # pipe stops waking every poll (a replacement is
                    # spawned when the slot next gets work).
                    self._drain_conn(worker.results, results)
                    self._retire(slot_no)
                continue
            (index, item, attempt), started = slot.inflight
            if alive and (self._timeout is None
                          or now - started <= self._timeout):
                continue
            if not alive:
                # The worker may have finished the item and died on
                # the way to the next one — believe a result already
                # in its pipe over the corpse.
                if worker is not None:
                    self._drain_conn(worker.results, results)
                if slot.inflight is None or index in self._resolved:
                    slot.inflight = None
                    self._retire(slot_no)
                    self._spawn(slot_no)
                    continue
            slot.inflight = None
            if not alive:
                exitcode = worker.process.exitcode if worker else None
                self._retire(slot_no)
                if attempt < self._retries:
                    # Retry on the same slot, ahead of its backlog, so
                    # shard ordering survives the crash.
                    slot.backlog.appendleft((index, item, attempt + 1))
                elif index not in self._resolved:
                    self._resolved.add(index)
                    self._outstanding -= 1
                    error = AnalysisError(
                        "crash",
                        f"worker died (exit code {exitcode}); "
                        f"gave up after {attempt + 1} attempt(s)")
                    results.append((index,
                                    [error_payload(item, error,
                                                   attempts=attempt + 1)],
                                    now - started))
            else:       # alive but past the wall-clock budget
                worker.process.kill()
                worker.process.join()
                self._retire(slot_no)
                if index not in self._resolved:
                    self._resolved.add(index)
                    self._outstanding -= 1
                    error = AnalysisError(
                        "timeout",
                        f"analysis exceeded {self._timeout:g}s "
                        f"wall-clock timeout")
                    results.append((index, [error_payload(item, error)],
                                    now - started))
            self._spawn(slot_no)
        self._pump()
        return results


class SupervisedPool:
    """Fan a fixed task list over worker processes; survive crashes.

    The original batch-mode interface: one :meth:`run` per pool,
    total work known up front, results yielded as a generator.  Each
    run is a :class:`PoolSession` underneath.
    """

    def __init__(self, workers: int,
                 worker_fn: Callable[[int, object, int], list[dict]],
                 timeout: float | None = None,
                 retries: int = 2,
                 poll: float = POLL_INTERVAL):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, not {retries}")
        self._workers = workers
        self._worker_fn = worker_fn
        self._timeout = timeout
        self._retries = retries
        self._poll = poll

    def run(self, tasks: list[tuple[int, object]]
            ) -> Iterator[tuple[int, list[dict], float]]:
        """Yield ``(index, payloads, elapsed)`` per task, as completed.

        Results arrive in completion order; the caller restores input
        order (the pipeline sorts by trace name anyway).  The pool is
        torn down — gracefully after a complete run, forcibly when the
        consumer abandons the generator — before the generator exits.
        """
        total = len(tasks)
        if total == 0:
            return
        session = PoolSession(min(self._workers, total), self._worker_fn,
                              timeout=self._timeout,
                              retries=self._retries, poll=self._poll)
        done = 0
        try:
            for index, item in tasks:
                session.submit(index, item)
            while done < total:
                for result in session.poll():
                    done += 1
                    yield result
        finally:
            session.close(graceful=done >= total)
