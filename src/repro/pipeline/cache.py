"""On-disk result cache for the batch pipeline.

Each cached entry is the JSON payload produced for one trace, keyed by
a digest of the trace *content* combined with the implementation
catalog's version digest.  Re-running a corpus therefore only analyzes
traces that are new or changed — and editing the catalog (the paper's
equivalent of teaching tcpanaly a new implementation) invalidates
every cached fit automatically, because the fits were computed against
the old candidate set.

Cache entries are plain ``<key>.json`` files: inspectable with any
JSON tool, safe to delete wholesale, and written atomically so a
killed run never leaves a half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.tcp.catalog import catalog_version
from repro.trace.record import Trace

#: Version of the analysis payload schema.  Bump whenever the payload
#: shape or analysis semantics change (new fields, different scoring),
#: so stale entries from older code cannot be served as hits.
ANALYSIS_SCHEMA_VERSION = 3


def file_digest(path: str | Path) -> str:
    """Content digest of a trace file on disk."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def trace_digest(trace: Trace) -> str:
    """Content digest of an in-memory trace.

    Hashes every record field the analyzers consume, so two traces
    with identical packets share a digest regardless of how they were
    produced (generated in memory or round-tripped through pcap).
    """
    digest = hashlib.sha256()
    digest.update(trace.vantage.encode())
    for record in trace.records:
        digest.update(repr((
            record.timestamp, str(record.src), str(record.dst),
            record.seq, record.ack, record.flags, record.payload,
            record.window, record.mss_option, record.corrupted,
        )).encode())
    return digest.hexdigest()


class ResultCache:
    """Maps a trace content digest to its cached analysis payload."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.catalog_version = catalog_version()

    def key(self, content_digest: str) -> str:
        """The full cache key: trace content, catalog, payload schema."""
        return hashlib.sha256(
            f"{content_digest}:{self.catalog_version}"
            f":s{ANALYSIS_SCHEMA_VERSION}".encode()).hexdigest()

    def _path(self, content_digest: str) -> Path:
        return self.root / f"{self.key(content_digest)}.json"

    def get(self, content_digest: str) -> dict | None:
        """The cached payload for *content_digest*, or None on a miss.

        A corrupt or unreadable entry counts as a miss: the trace is
        simply re-analyzed and the entry rewritten.
        """
        try:
            with open(self._path(content_digest)) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, content_digest: str, payload: dict) -> None:
        """Store *payload* atomically (write-then-rename).

        A failed serialization (or a full disk) must not strand the
        scratch file: it is unlinked before the error propagates, so
        an aborted put leaves the cache directory exactly as it was.
        """
        path = self._path(content_digest)
        scratch = path.with_suffix(f".tmp{os.getpid()}")
        try:
            with open(scratch, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
        except BaseException:
            scratch.unlink(missing_ok=True)
            raise
        os.replace(scratch, path)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
