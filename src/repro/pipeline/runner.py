"""The corpus batch runner: fan analysis out across a trace corpus.

The paper's result is statistical — tcpanaly ran over ~20,000
sender-side and ~20,000 receiver-side traces (Table 1).  This module
is the scale substrate: it takes a corpus (a directory of pcap files,
or in-memory generated transfers), runs the full per-trace pipeline
(calibration plus sender- or receiver-side identification) on every
element, and does so across ``--jobs`` worker processes with an
optional on-disk result cache.

Determinism contract: each trace's payload depends only on the trace
content and the implementation catalog.  Results are returned sorted
by trace name, so sequential runs (``jobs=1``), parallel runs, and
warm-cache runs all produce byte-identical JSONL output.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import classify_exception
from repro.core.report import analyze_trace
from repro.harness.corpus import WrittenCorpusEntry
from repro.harness.faults import FaultPlan
from repro.pipeline.cache import ResultCache, file_digest, trace_digest
from repro.pipeline.journal import BatchJournal
from repro.pipeline.resilience import SupervisedPool, error_payload
from repro.tcp.catalog import CATALOG
from repro.trace.pcap import read_pcap
from repro.trace.record import Trace

_TRACE_SIDES = ("sender", "receiver")


@dataclass
class BatchItem:
    """One unit of batch work: a trace plus its provenance.

    Exactly one of *path* (a pcap file) or *trace* (an in-memory
    trace) must be set.  *implementation* is the ground-truth label
    when known (from the corpus filename or the generator), enabling
    the aggregate confusion matrix.
    """

    name: str
    path: Path | None = None
    trace: Trace | None = None
    implementation: str | None = None

    def content_digest(self) -> str:
        if self.path is not None:
            return file_digest(self.path)
        return trace_digest(self.trace)


@dataclass
class TraceResult:
    """One analyzed trace: its deterministic payload plus run metadata.

    *payload* is what goes to JSONL and the cache; *cache_hit* and
    *elapsed* describe this particular run and are deliberately kept
    out of it.
    """

    name: str
    payload: dict
    cache_hit: bool = False
    elapsed: float = 0.0
    resumed: bool = False


@dataclass
class BatchResult:
    """Everything a batch run produced, plus throughput accounting."""

    results: list[TraceResult] = field(default_factory=list)
    jobs: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    resumed: int = 0

    @property
    def throughput(self) -> float:
        """Traces analyzed per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return len(self.results) / self.wall_time


def true_implementation(filename: str) -> str | None:
    """Recover the ground-truth label from a corpus filename.

    Corpus files are named ``{label}-{index:04d}-{side}.pcap``; labels
    themselves contain dashes (``solaris-2.4``), so parse from the
    right and validate against the catalog.  Returns None for
    filenames that do not follow the corpus layout.
    """
    stem = filename
    if stem.endswith(".pcap"):
        stem = stem[:-len(".pcap")]
    for side in _TRACE_SIDES:
        suffix = f"-{side}"
        if stem.endswith(suffix):
            stem = stem[:-len(suffix)]
            break
    else:
        return None
    label, _, index = stem.rpartition("-")
    if not label or not index.isdigit():
        return None
    return label if label in CATALOG else None


def corpus_items(corpus_dir: str | Path) -> list[BatchItem]:
    """Every ``*.pcap`` under *corpus_dir*, as sorted batch items."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        raise ValueError(f"{corpus_dir}: not a corpus directory")
    items = [BatchItem(name=path.name, path=path,
                       implementation=true_implementation(path.name))
             for path in sorted(corpus_dir.glob("*.pcap"))]
    if not items:
        raise ValueError(f"{corpus_dir}: no .pcap traces found")
    return items


def memory_items(entries: list[WrittenCorpusEntry]) -> list[BatchItem]:
    """Batch items for freshly generated corpus entries.

    Uses the in-memory traces directly — ``tcpanaly corpus --analyze``
    feeds the pipeline without re-reading the pcaps it just wrote.
    """
    items = []
    for entry in entries:
        items.append(BatchItem(name=entry.sender_path.name,
                               trace=entry.transfer.sender_trace,
                               implementation=entry.implementation))
        items.append(BatchItem(name=entry.receiver_path.name,
                               trace=entry.transfer.receiver_trace,
                               implementation=entry.implementation))
    items.sort(key=lambda item: item.name)
    return items


def analyze_item(item: BatchItem) -> dict:
    """Analyze one trace: the per-process unit of batch work.

    A damaged or non-pcap trace must not abort a corpus-scale run, so
    *every* per-trace failure — bad framing, an unreadable file, a
    ``KeyError`` or ``RecursionError`` the wild trace tickled out of
    the model — becomes a classified error payload (``error_kind``:
    decode/io/model); the aggregate report counts them and the JSONL
    line records the reason.
    """
    payload = {
        "trace": item.name,
        "implementation": item.implementation,
    }
    try:
        trace = item.trace if item.trace is not None \
            else read_pcap(item.path)
        report = analyze_trace(trace, identify=True)
    except Exception as error:
        payload.update(classify_exception(error).to_fields())
        return payload
    payload["records"] = len(trace)
    payload.update(report.to_dict())
    return payload


def analyze_item_stream(item: BatchItem) -> list[dict]:
    """Streamed analysis: one payload per demultiplexed connection.

    The streaming path (``iter_pcap`` → flow table → ``analyze_trace``)
    fans a multi-connection capture out into per-connection payloads;
    a single-connection capture keeps the item's own name, so corpus
    aggregates match the eager path.  Every payload carries the
    capture's ingest statistics.  Per-flow analysis runs tolerantly: a
    poisonous connection quarantines itself (``error_kind`` in its
    payload) without sinking the capture's other flows, and a failure
    of the capture itself (unreadable, not a pcap) quarantines the
    whole item.
    """
    from repro.stream import (
        FlowReport,
        IngestStats,
        analyze_stream,
        build_flow_report,
        flow_payload,
    )
    from repro.stream.flowtable import demux_records

    stats = IngestStats()
    flow_reports: list[FlowReport] = []
    try:
        if item.trace is not None:
            for flow in demux_records(item.trace.records, stats=stats):
                flow_reports.append(build_flow_report(flow, identify=True,
                                                      tolerant=True))
        else:
            flow_reports = list(analyze_stream(item.path, identify=True,
                                               stats=stats, tolerant=True))
    except Exception as error:
        payload = {"trace": item.name,
                   "implementation": item.implementation}
        payload.update(classify_exception(error).to_fields())
        return [payload]
    if not flow_reports:
        return [{"trace": item.name, "implementation": item.implementation,
                 "error": "no connections demultiplexed",
                 "error_kind": "decode",
                 "ingest": stats.to_dict()}]
    ingest = stats.to_dict()
    payloads = []
    for flow_report in flow_reports:
        name = item.name if len(flow_reports) == 1 \
            else f"{item.name}#{flow_report.name}"
        payload = flow_payload(flow_report, name,
                               implementation=item.implementation)
        payload["ingest"] = ingest
        payloads.append(payload)
    return payloads


def _guarded_payloads(index: int, item: BatchItem, attempt: int,
                      stream: bool = False,
                      fault_plan: FaultPlan | None = None) -> list[dict]:
    """The worker-side unit of batch work; never raises.

    Applies the fault-injection plan (if any), runs the eager or
    streamed analysis, and classifies anything that escapes — so the
    only ways a worker can fail to produce payloads are the ones the
    supervisor handles from outside: a process death or a kill.
    """
    substituted = None
    try:
        if fault_plan is not None:
            original_path = item.path
            item = fault_plan.apply(item, index, attempt)
            if item.path != original_path:
                substituted = item.path   # corrupt fault's temp copy
        return analyze_item_stream(item) if stream else [analyze_item(item)]
    except Exception as error:
        return [error_payload(item, classify_exception(error))]
    finally:
        if substituted is not None:
            substituted.unlink(missing_ok=True)


#: Error kinds that may be transient (or depend on the run's timeout
#: budget): never cached, so the next run retries them.
_TRANSIENT_KINDS = frozenset({"io", "timeout", "crash"})


def _cacheable(payloads: list[dict]) -> bool:
    return all(payload.get("error_kind") not in _TRANSIENT_KINDS
               for payload in payloads)


def run_batch(items: list[BatchItem], jobs: int = 1,
              cache: ResultCache | None = None,
              stream: bool = False,
              timeout: float | None = None,
              retries: int = 2,
              journal: BatchJournal | None = None,
              fault_plan: FaultPlan | None = None) -> BatchResult:
    """Run the analysis pipeline over *items* with *jobs* workers.

    Cache hits are resolved up front in the parent process, so a
    warm-cache run dispatches no analysis work at all.  ``jobs=1``
    (without a timeout) is a plain in-process sequential loop — fully
    deterministic execution order — for debugging; otherwise the
    cache-miss set fans out over a :class:`SupervisedPool`, which
    survives worker crashes (requeue with a *retries* budget, then
    quarantine as ``error_kind: "crash"``) and kills analyses that
    exceed the per-trace wall-clock *timeout* (quarantined as
    ``error_kind: "timeout"``).

    An item whose file cannot even be digested is quarantined up
    front as ``error_kind: "io"`` and the rest of the batch runs.

    With *journal*, every completed item is checkpointed durably as it
    finishes; items already completed in a resumed journal are
    replayed without re-analysis, and the final result set is
    byte-identical to an uninterrupted run's.

    With ``stream=True`` each capture goes through the streaming
    ingest + demux path and may yield several per-connection results;
    cache entries are keyed separately from eager-mode entries.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, not {jobs}")
    start = time.perf_counter()
    results: list[TraceResult] = []
    pending: list[BatchItem] = []
    digests: dict[str, str] = {}
    resumed = 0
    upfront_failures = 0
    for item in items:
        try:
            digest = item.content_digest()
        except OSError as error:
            # An unreadable corpus file must not abort the batch
            # before any analysis has even run.
            results.append(TraceResult(
                item.name, error_payload(item, classify_exception(error))))
            upfront_failures += 1
            continue
        if stream:
            digest = f"stream:{digest}"
        digests[item.name] = digest
        cached = cache.get(digest) if cache is not None else None
        if cached is not None:
            if stream:
                for payload in cached.get("flows", []):
                    results.append(TraceResult(payload["trace"], payload,
                                               cache_hit=True))
            else:
                results.append(TraceResult(item.name, cached,
                                           cache_hit=True))
            continue
        if journal is not None:
            payloads = journal.lookup(item.name, digest)
            if payloads is not None:
                for payload in payloads:
                    results.append(TraceResult(payload["trace"], payload,
                                               resumed=True))
                resumed += 1
                continue
        pending.append(item)

    def finish(index: int, payloads: list[dict], elapsed: float) -> None:
        item = pending[index]
        # Journal first: the checkpoint must be durable before the
        # (best-effort) cache write can fail or be interrupted.
        if journal is not None:
            journal.record(item.name, digests[item.name], payloads)
        if cache is not None and _cacheable(payloads):
            cache.put(digests[item.name],
                      {"flows": payloads} if stream else payloads[0])
        for payload in payloads:
            results.append(TraceResult(payload["trace"], payload,
                                       cache_hit=False, elapsed=elapsed))

    worker = functools.partial(_guarded_payloads, stream=stream,
                               fault_plan=fault_plan)
    if not pending:
        pass
    elif jobs == 1 and timeout is None:
        for index, item in enumerate(pending):
            item_start = time.perf_counter()
            payloads = worker(index, item, 0)
            finish(index, payloads, time.perf_counter() - item_start)
    else:
        pool = SupervisedPool(min(jobs, len(pending)), worker,
                              timeout=timeout, retries=retries)
        runner = pool.run(list(enumerate(pending)))
        try:
            for index, payloads, elapsed in runner:
                finish(index, payloads, elapsed)
        finally:
            runner.close()

    results.sort(key=lambda result: result.name)
    return BatchResult(results=results, jobs=jobs,
                       wall_time=time.perf_counter() - start,
                       cache_hits=sum(r.cache_hit for r in results),
                       cache_misses=len(pending) + upfront_failures,
                       resumed=resumed)
