"""The corpus batch runner: fan analysis out across a trace corpus.

The paper's result is statistical — tcpanaly ran over ~20,000
sender-side and ~20,000 receiver-side traces (Table 1).  This module
is the scale substrate: it takes a corpus (a directory of pcap files,
or in-memory generated transfers), runs the full per-trace pipeline
(calibration plus sender- or receiver-side identification) on every
element, and does so across ``--jobs`` worker processes with an
optional on-disk result cache.

Determinism contract: each trace's payload depends only on the trace
content and the implementation catalog.  Results are returned sorted
by trace name, so sequential runs (``jobs=1``), parallel runs, and
warm-cache runs all produce byte-identical JSONL output.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.report import analyze_trace
from repro.harness.corpus import WrittenCorpusEntry
from repro.pipeline.cache import ResultCache, file_digest, trace_digest
from repro.tcp.catalog import CATALOG
from repro.trace.pcap import read_pcap
from repro.trace.record import Trace

_TRACE_SIDES = ("sender", "receiver")


@dataclass
class BatchItem:
    """One unit of batch work: a trace plus its provenance.

    Exactly one of *path* (a pcap file) or *trace* (an in-memory
    trace) must be set.  *implementation* is the ground-truth label
    when known (from the corpus filename or the generator), enabling
    the aggregate confusion matrix.
    """

    name: str
    path: Path | None = None
    trace: Trace | None = None
    implementation: str | None = None

    def content_digest(self) -> str:
        if self.path is not None:
            return file_digest(self.path)
        return trace_digest(self.trace)


@dataclass
class TraceResult:
    """One analyzed trace: its deterministic payload plus run metadata.

    *payload* is what goes to JSONL and the cache; *cache_hit* and
    *elapsed* describe this particular run and are deliberately kept
    out of it.
    """

    name: str
    payload: dict
    cache_hit: bool = False
    elapsed: float = 0.0


@dataclass
class BatchResult:
    """Everything a batch run produced, plus throughput accounting."""

    results: list[TraceResult] = field(default_factory=list)
    jobs: int = 1
    wall_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def throughput(self) -> float:
        """Traces analyzed per wall-clock second."""
        if self.wall_time <= 0:
            return 0.0
        return len(self.results) / self.wall_time


def true_implementation(filename: str) -> str | None:
    """Recover the ground-truth label from a corpus filename.

    Corpus files are named ``{label}-{index:04d}-{side}.pcap``; labels
    themselves contain dashes (``solaris-2.4``), so parse from the
    right and validate against the catalog.  Returns None for
    filenames that do not follow the corpus layout.
    """
    stem = filename
    if stem.endswith(".pcap"):
        stem = stem[:-len(".pcap")]
    for side in _TRACE_SIDES:
        suffix = f"-{side}"
        if stem.endswith(suffix):
            stem = stem[:-len(suffix)]
            break
    else:
        return None
    label, _, index = stem.rpartition("-")
    if not label or not index.isdigit():
        return None
    return label if label in CATALOG else None


def corpus_items(corpus_dir: str | Path) -> list[BatchItem]:
    """Every ``*.pcap`` under *corpus_dir*, as sorted batch items."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        raise ValueError(f"{corpus_dir}: not a corpus directory")
    items = [BatchItem(name=path.name, path=path,
                       implementation=true_implementation(path.name))
             for path in sorted(corpus_dir.glob("*.pcap"))]
    if not items:
        raise ValueError(f"{corpus_dir}: no .pcap traces found")
    return items


def memory_items(entries: list[WrittenCorpusEntry]) -> list[BatchItem]:
    """Batch items for freshly generated corpus entries.

    Uses the in-memory traces directly — ``tcpanaly corpus --analyze``
    feeds the pipeline without re-reading the pcaps it just wrote.
    """
    items = []
    for entry in entries:
        items.append(BatchItem(name=entry.sender_path.name,
                               trace=entry.transfer.sender_trace,
                               implementation=entry.implementation))
        items.append(BatchItem(name=entry.receiver_path.name,
                               trace=entry.transfer.receiver_trace,
                               implementation=entry.implementation))
    items.sort(key=lambda item: item.name)
    return items


def analyze_item(item: BatchItem) -> dict:
    """Analyze one trace: the per-process unit of batch work.

    A damaged or non-pcap trace must not abort a corpus-scale run, so
    per-trace failures become error payloads; the aggregate report
    counts them and the JSONL line records the reason.
    """
    payload = {
        "trace": item.name,
        "implementation": item.implementation,
    }
    try:
        trace = item.trace if item.trace is not None \
            else read_pcap(item.path)
        report = analyze_trace(trace, identify=True)
    except ValueError as error:
        payload["error"] = str(error)
        return payload
    payload["records"] = len(trace)
    payload.update(report.to_dict())
    return payload


def analyze_item_stream(item: BatchItem) -> list[dict]:
    """Streamed analysis: one payload per demultiplexed connection.

    The streaming path (``iter_pcap`` → flow table → ``analyze_trace``)
    fans a multi-connection capture out into per-connection payloads;
    a single-connection capture keeps the item's own name, so corpus
    aggregates match the eager path.  Every payload carries the
    capture's ingest statistics.
    """
    from repro.stream import FlowReport, IngestStats, analyze_stream
    from repro.stream.flowtable import demux_records

    stats = IngestStats()
    flow_reports: list[FlowReport] = []
    try:
        if item.trace is not None:
            for flow in demux_records(item.trace.records, stats=stats):
                flow_reports.append(FlowReport(
                    flow=flow,
                    report=analyze_trace(flow.to_trace(), identify=True)))
        else:
            flow_reports = list(analyze_stream(item.path, identify=True,
                                               stats=stats))
    except ValueError as error:
        return [{"trace": item.name, "implementation": item.implementation,
                 "error": str(error)}]
    if not flow_reports:
        return [{"trace": item.name, "implementation": item.implementation,
                 "error": "no connections demultiplexed",
                 "ingest": stats.to_dict()}]
    ingest = stats.to_dict()
    payloads = []
    for flow_report in flow_reports:
        name = item.name if len(flow_reports) == 1 \
            else f"{item.name}#{flow_report.name}"
        payload = {
            "trace": name,
            "implementation": item.implementation,
            "records": len(flow_report.flow.records),
        }
        payload.update(flow_report.to_dict())
        payload["ingest"] = ingest
        payloads.append(payload)
    return payloads


def _indexed_analyze(indexed_item: tuple[int, BatchItem],
                     stream: bool = False) -> tuple[int, list[dict], float]:
    """Analyze one item, tagged with its input index.

    The tag lets ``imap_unordered`` results — which arrive in
    completion order — be restored to input order in the parent, so
    the dispatch strategy never shows through in the output.
    """
    index, item = indexed_item
    start = time.perf_counter()
    payloads = analyze_item_stream(item) if stream else [analyze_item(item)]
    return index, payloads, time.perf_counter() - start


def run_batch(items: list[BatchItem], jobs: int = 1,
              cache: ResultCache | None = None,
              stream: bool = False) -> BatchResult:
    """Run the analysis pipeline over *items* with *jobs* workers.

    Cache hits are resolved up front in the parent process, so a
    warm-cache run dispatches no analysis work at all.  ``jobs=1`` is
    a plain sequential loop — no process pool, fully deterministic
    execution order — for debugging; higher job counts fan the
    cache-miss set out over a process pool.

    With ``stream=True`` each capture goes through the streaming
    ingest + demux path and may yield several per-connection results;
    cache entries are keyed separately from eager-mode entries.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, not {jobs}")
    start = time.perf_counter()
    results: list[TraceResult] = []
    pending: list[BatchItem] = []
    digests: dict[str, str] = {}
    for item in items:
        digest = item.content_digest()
        if stream:
            digest = f"stream:{digest}"
        digests[item.name] = digest
        cached = cache.get(digest) if cache is not None else None
        if cached is not None:
            if stream:
                for payload in cached.get("flows", []):
                    results.append(TraceResult(payload["trace"], payload,
                                               cache_hit=True))
            else:
                results.append(TraceResult(item.name, cached,
                                           cache_hit=True))
        else:
            pending.append(item)

    worker = functools.partial(_indexed_analyze, stream=stream)
    if jobs == 1 or len(pending) <= 1:
        computed = [worker(indexed) for indexed in enumerate(pending)]
    else:
        workers = min(jobs, len(pending))
        # Chunks amortize IPC without starving workers at the tail:
        # ~4 chunks per worker keeps the pool balanced even when trace
        # analysis times vary widely.
        chunk = max(1, len(pending) // (workers * 4))
        with multiprocessing.Pool(processes=workers) as pool:
            computed = list(pool.imap_unordered(worker, enumerate(pending),
                                                chunksize=chunk))
    computed.sort(key=lambda entry: entry[0])

    for index, payloads, elapsed in computed:
        item = pending[index]
        if cache is not None:
            cache.put(digests[item.name],
                      {"flows": payloads} if stream else payloads[0])
        for payload in payloads:
            results.append(TraceResult(payload["trace"], payload,
                                       cache_hit=False, elapsed=elapsed))

    results.sort(key=lambda result: result.name)
    return BatchResult(results=results, jobs=jobs,
                       wall_time=time.perf_counter() - start,
                       cache_hits=sum(r.cache_hit for r in results),
                       cache_misses=len(pending))
