"""The batch journal: checkpoint/resume for interrupted corpus runs.

A corpus run over tens of thousands of traces will, sooner or later,
be interrupted — SIGINT, OOM-killer, power loss.  The journal makes
that a pause instead of a restart: as each item completes (healthy or
quarantined), its payloads are appended as one JSON line and flushed
to disk, so ``tcpanaly batch --resume`` replays completed items from
the journal and re-analyzes only the remainder.  The final JSONL is
byte-identical to an uninterrupted run's, because the journal stores
the exact payloads and the pipeline's output ordering is by trace
name, not completion time.

Entries are keyed by item *name* and validated by content *digest*:
a renamed or edited trace never reuses a stale entry.  A header line
pins the catalog version, payload schema, and eager/stream mode — a
journal written under any other configuration is discarded rather
than resumed, since its payloads would not match a fresh run.

The file itself is crash-tolerant: each record is flushed and fsynced
as written, a torn trailing line (the write the crash interrupted) is
dropped on load, and resuming rewrites the journal compactly so
appends never land after a torn line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.pipeline.cache import ANALYSIS_SCHEMA_VERSION
from repro.tcp.catalog import catalog_version

JOURNAL_FORMAT = 1


class BatchJournal:
    """Append-only journal of completed batch items.

    With ``resume=False`` any existing journal is truncated; with
    ``resume=True`` a compatible journal's entries become the resume
    set (and the file is rewritten compactly before appending).
    """

    def __init__(self, path: str | Path, stream: bool = False,
                 resume: bool = False):
        self.path = Path(path)
        self.stream = stream
        self._completed: dict[str, tuple[str, list[dict]]] = {}
        if resume:
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Rewrite rather than append: guarantees a valid header and no
        # torn trailing line underneath the entries we are keeping.
        self._handle = open(self.path, "w")
        self._write_line(self._header())
        for name, (digest, payloads) in self._completed.items():
            self._write_line({"name": name, "digest": digest,
                              "payloads": payloads})

    def _header(self) -> dict:
        return {"journal": JOURNAL_FORMAT,
                "catalog": catalog_version(),
                "schema": ANALYSIS_SCHEMA_VERSION,
                "stream": self.stream}

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except (OSError, UnicodeDecodeError):
            # Missing, unreadable, or binary garbage: nothing to resume.
            return
        lines = text.split("\n")
        if text and not text.endswith("\n"):
            lines = lines[:-1]  # torn trailing write: drop it
        entries = []
        for line in lines:
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a torn or corrupted line loses one entry, not all
        if not entries or entries[0] != self._header():
            # Different catalog/schema/mode (or not a journal at all):
            # its payloads cannot be trusted for this run.
            return
        for entry in entries[1:]:
            if not isinstance(entry, dict):
                continue
            name, digest = entry.get("name"), entry.get("digest")
            payloads = entry.get("payloads")
            if isinstance(name, str) and isinstance(digest, str) \
                    and isinstance(payloads, list):
                self._completed[name] = (digest, payloads)

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def __len__(self) -> int:
        return len(self._completed)

    def lookup(self, name: str, digest: str) -> list[dict] | None:
        """The completed payloads for *name*, if its content matches."""
        entry = self._completed.get(name)
        if entry is None or entry[0] != digest:
            return None
        return entry[1]

    def record(self, name: str, digest: str,
               payloads: list[dict]) -> None:
        """Checkpoint one completed item (durable before returning)."""
        self._completed[name] = (digest, payloads)
        self._write_line({"name": name, "digest": digest,
                          "payloads": payloads})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
