"""Batch results: JSONL output and the Table-1-style aggregate.

``write_jsonl`` emits one sorted, key-sorted JSON object per trace —
the stable machine-readable interface downstream tooling scripts
against.  ``aggregate_report`` condenses a batch into the shape of
the paper's corpus summary: per-implementation trace counts, a
confusion matrix of ground truth against best fit, identification
accuracy, measurement-error detections, and throughput.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.pipeline.runner import BatchResult, TraceResult


def result_line(result: TraceResult) -> str:
    """One trace's canonical JSONL line (no trailing newline)."""
    return json.dumps(result.payload, sort_keys=True)


def write_jsonl(results: list[TraceResult], path: str | Path) -> None:
    """Write per-trace results as JSON Lines.

    Lines are ordered by trace name and keys are sorted, so any two
    runs over the same corpus and catalog produce byte-identical
    files regardless of job count or cache state.
    """
    with open(path, "w") as handle:
        for result in results:
            handle.write(result_line(result) + "\n")


def _best_fit(payload: dict) -> tuple[str | None, str | None]:
    """(best implementation, category) for either trace side."""
    identification = payload.get("identification")
    if identification is not None:
        return identification.get("best"), identification.get("best_category")
    receiver = payload.get("receiver_identification")
    if receiver is not None:
        fits = receiver.get("fits") or []
        if fits:
            return fits[0].get("implementation"), fits[0].get("category")
    return None, None


def _truth_identified(payload: dict) -> bool:
    """Did the close-fit set contain the ground-truth implementation?

    Mirrors the paper's reading of fit quality: sender-side analysis
    names a single best fit; receiver-side acking policy can only
    narrow to a family, so containment in the close set is the win.
    """
    truth = payload.get("implementation")
    if truth is None:
        return False
    identification = payload.get("identification")
    if identification is not None:
        return identification.get("best") == truth \
            and identification.get("best_category") == "close"
    receiver = payload.get("receiver_identification")
    if receiver is not None:
        return truth in (receiver.get("close") or [])
    return False


def aggregate_report(batch: BatchResult) -> str:
    """Render the Table-1-style aggregate for one batch run."""
    all_payloads = [result.payload for result in batch.results]
    failed = [p for p in all_payloads if "error" in p]
    payloads = [p for p in all_payloads if "error" not in p]
    senders = [p for p in payloads if "identification" in p]
    receivers = [p for p in payloads if "receiver_identification" in p]

    lines = ["==== batch aggregate ===="]
    lines.append(f"traces analyzed: {len(payloads)} "
                 f"({len(senders)} sender-side, "
                 f"{len(receivers)} receiver-side)")
    if failed:
        lines.append(f"unanalyzable traces: {len(failed)}")
        for payload in failed:
            kind = payload.get("error_kind")
            tag = f"[{kind}] " if kind else ""
            lines.append(f"  {payload['trace']}: {tag}{payload['error']}")
        kinds = Counter(p.get("error_kind", "unclassified")
                        for p in failed)
        lines.append("  quarantined by kind: "
                     + ", ".join(f"{kind} {count}" for kind, count
                                 in sorted(kinds.items())))

    # Per-implementation corpus counts, Table-1 style.
    by_truth = Counter(p["implementation"] for p in payloads
                       if p.get("implementation"))
    if by_truth:
        lines.append("")
        lines.append(f"{'Implementation':16s} {'# Traces':>9s} "
                     f"{'Identified':>11s}")
        for label in sorted(by_truth):
            identified = sum(_truth_identified(p) for p in payloads
                             if p.get("implementation") == label)
            lines.append(f"{label:16s} {by_truth[label]:9d} "
                         f"{identified:11d}")

    # Sender-side confusion: ground truth vs. best fit.
    confusion: dict[str, Counter] = {}
    for payload in senders:
        truth = payload.get("implementation")
        if truth is None:
            continue
        best, _category = _best_fit(payload)
        confusion.setdefault(truth, Counter())[best or "(none)"] += 1
    if confusion:
        lines.append("")
        lines.append("sender-side confusion (truth -> best fit):")
        correct = total = 0
        for truth in sorted(confusion):
            row = confusion[truth]
            cells = ", ".join(f"{fit}×{count}" for fit, count
                              in sorted(row.items(),
                                        key=lambda kv: (-kv[1], kv[0])))
            lines.append(f"  {truth:16s} -> {cells}")
            correct += row[truth]
            total += sum(row.values())
        lines.append(f"  best-fit accuracy: {correct}/{total} "
                     f"({100.0 * correct / total:.1f}%)")

    if receivers:
        contained = sum(_truth_identified(p) for p in receivers
                        if p.get("implementation"))
        known = sum(1 for p in receivers if p.get("implementation"))
        if known:
            lines.append(f"receiver close-set contains truth: "
                         f"{contained}/{known} "
                         f"({100.0 * contained / known:.1f}%)")

    # Measurement-error detection counts (§3's whole point).
    unclean = [p for p in payloads if not p["calibration"]["clean"]]
    lines.append("")
    lines.append(f"measurement errors detected: {len(unclean)} trace(s)")
    for kind in ("drop_evidence", "duplicates", "resequencing",
                 "time_travel"):
        count = sum(p["calibration"][kind] for p in payloads)
        if count:
            lines.append(f"  {kind}: {count} finding(s)")

    # Streaming-ingest accounting: one entry per source capture (every
    # per-flow payload of a capture carries the same ingest dict).
    ingest_by_capture: dict[str, dict] = {}
    for payload in all_payloads:
        ingest = payload.get("ingest")
        if ingest:
            ingest_by_capture.setdefault(payload["trace"].split("#")[0],
                                         ingest)
    if ingest_by_capture:
        stats = list(ingest_by_capture.values())
        def total(key):
            return sum(s.get(key, 0) for s in stats)
        lines.append("")
        lines.append(f"streaming ingest ({len(stats)} capture(s)):")
        lines.append(f"  packets {total('packets_seen')}, "
                     f"decoded {total('records_decoded')}, "
                     f"non-TCP {total('non_tcp_packets')}, "
                     f"errors {total('decode_errors')}, "
                     f"truncated {total('truncated_records')}")
        lines.append(f"  flows opened {total('flows_opened')}, "
                     f"retired {total('flows_retired')}, "
                     f"evicted {total('flows_evicted')}, "
                     f"orphan packets {total('orphan_packets')}, "
                     f"peak live "
                     f"{max(s.get('peak_live_flows', 0) for s in stats)}")

    lines.append("")
    footer = (f"jobs: {batch.jobs}; cache: {batch.cache_hits} hit(s), "
              f"{batch.cache_misses} miss(es)")
    if batch.resumed:
        footer += f"; resumed {batch.resumed} item(s) from journal"
    lines.append(footer)
    lines.append(f"wall clock: {batch.wall_time:.2f}s "
                 f"({batch.throughput:.1f} traces/sec)")
    return "\n".join(lines)
