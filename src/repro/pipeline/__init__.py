"""Parallel corpus batch analysis (the Table-1 scale substrate).

``run_batch`` fans the full per-trace pipeline (calibration plus
sender/receiver identification) out across worker processes, with an
on-disk result cache keyed by trace content and catalog version.
``write_jsonl`` and ``aggregate_report`` turn a batch into stable
machine-readable results and a Table-1-style summary.
"""

from repro.pipeline.cache import ResultCache, file_digest, trace_digest
from repro.pipeline.report import aggregate_report, result_line, write_jsonl
from repro.pipeline.runner import (
    BatchItem,
    BatchResult,
    TraceResult,
    analyze_item,
    analyze_item_stream,
    corpus_items,
    memory_items,
    run_batch,
    true_implementation,
)

__all__ = [
    "BatchItem",
    "BatchResult",
    "ResultCache",
    "TraceResult",
    "aggregate_report",
    "analyze_item",
    "analyze_item_stream",
    "corpus_items",
    "file_digest",
    "memory_items",
    "result_line",
    "run_batch",
    "trace_digest",
    "true_implementation",
    "write_jsonl",
]
