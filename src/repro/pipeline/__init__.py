"""Parallel corpus batch analysis (the Table-1 scale substrate).

``run_batch`` fans the full per-trace pipeline (calibration plus
sender/receiver identification) out across worker processes, with an
on-disk result cache keyed by trace content and catalog version.
``write_jsonl`` and ``aggregate_report`` turn a batch into stable
machine-readable results and a Table-1-style summary.

The resilience layer keeps corpus-scale runs alive through anything a
single trace can do: :class:`SupervisedPool` survives worker crashes
and enforces per-trace timeouts, every failure is quarantined as a
classified :class:`~repro.core.errors.AnalysisError` payload instead
of aborting the batch, and :class:`BatchJournal` checkpoints completed
items durably so an interrupted run resumes where it stopped.
"""

from repro.core.errors import ERROR_KINDS, AnalysisError, classify_exception
from repro.pipeline.cache import ResultCache, file_digest, trace_digest
from repro.pipeline.journal import BatchJournal
from repro.pipeline.report import aggregate_report, result_line, write_jsonl
from repro.pipeline.resilience import (
    PoolSession,
    SupervisedPool,
    error_payload,
)
from repro.pipeline.runner import (
    BatchItem,
    BatchResult,
    TraceResult,
    analyze_item,
    analyze_item_stream,
    corpus_items,
    memory_items,
    run_batch,
    true_implementation,
)

__all__ = [
    "ERROR_KINDS",
    "AnalysisError",
    "BatchItem",
    "BatchJournal",
    "BatchResult",
    "PoolSession",
    "ResultCache",
    "SupervisedPool",
    "TraceResult",
    "aggregate_report",
    "analyze_item",
    "analyze_item_stream",
    "classify_exception",
    "corpus_items",
    "error_payload",
    "file_digest",
    "memory_items",
    "result_line",
    "run_batch",
    "trace_digest",
    "true_implementation",
    "write_jsonl",
]
