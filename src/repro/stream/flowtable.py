"""Flow demultiplexing: split a capture stream into connections.

A real packet filter records whatever matched — usually many
connections interleaved, arriving and departing over hours.  The
:class:`FlowTable` consumes one :class:`TraceRecord` at a time and
groups records by connection (the unordered endpoint pair, i.e. the
4-tuple), with the lifecycle a kernel's demux would apply:

- **birth** on SYN (non-SYN strays are counted as orphans unless
  ``syn_only=False`` admits mid-capture flows);
- **retirement** on RST or a completed FIN handshake (after a short
  time-wait so straggling final acks stay with their connection), or
  after ``idle_timeout`` of stream-clock silence;
- **eviction** of the least-recently-active flow when the live-flow
  count exceeds ``max_flows``, so memory stays bounded even under
  adversarial traffic (SYN floods, port scans).

Completed flows are handed back in birth order as plain
:class:`Flow` objects whose ``to_trace()`` feeds straight into the
existing ``analyze_trace`` machinery.  The table is clocked entirely
by record timestamps — no wall-clock dependence, so replaying a
capture is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.packets import Endpoint, FlowKey
from repro.stream.stats import IngestStats
from repro.trace.record import Trace, TraceRecord

#: Seconds of stream-clock silence after which a flow is retired.
DEFAULT_IDLE_TIMEOUT = 64.0
#: Linger after a FIN handshake / RST so trailing acks stay attached.
DEFAULT_TIME_WAIT = 2.0
#: Live-flow cap; the least-recently-active flow is evicted beyond it.
DEFAULT_MAX_FLOWS = 4096
#: How often (stream seconds) the table scans for idle/closed flows.
EXPIRY_GRANULARITY = 0.5


def _endpoint_order(endpoint: Endpoint) -> tuple[str, int]:
    return (endpoint.addr, endpoint.port)


@dataclass(frozen=True, slots=True)
class ConnectionKey:
    """A connection identifier: the unordered endpoint pair.

    Both directions of one connection map to the same key; ``a`` and
    ``b`` are stored in a canonical order so keys print and sort
    deterministically.
    """

    a: Endpoint
    b: Endpoint

    @classmethod
    def of(cls, src: Endpoint, dst: Endpoint) -> "ConnectionKey":
        if _endpoint_order(dst) < _endpoint_order(src):
            src, dst = dst, src
        return cls(src, dst)

    @classmethod
    def from_record(cls, record: TraceRecord) -> "ConnectionKey":
        return cls.of(record.src, record.dst)

    def __str__(self) -> str:
        return f"{self.a} <-> {self.b}"


@dataclass(slots=True)
class Flow:
    """One demultiplexed connection: its records plus lifecycle facts."""

    key: ConnectionKey
    index: int                   # birth order within the capture
    records: list[TraceRecord] = field(default_factory=list)
    saw_syn: bool = False
    # "fin" | "rst" | "idle" | "evicted" | "eof" | "shed"
    close_reason: str = ""
    opened_at: float = 0.0
    last_seen: float = 0.0
    # FIN/RST teardown progress (directions that sent FIN; pending
    # close reason once the handshake looks complete).
    fin_directions: set[FlowKey] = field(default_factory=set)
    closing_at: float | None = None
    close_pending: str = ""

    def to_trace(self, vantage: str = "", filter_name: str = "") -> Trace:
        """This flow as a single-connection trace for the analyzers."""
        return Trace(records=list(self.records), vantage=vantage,
                     filter_name=filter_name, reported_drops=None)

    def describe(self) -> str:
        return (f"{self.key} — {len(self.records)} records, "
                f"{self.last_seen - self.opened_at:.3f}s, "
                f"closed: {self.close_reason or 'open'}")


class FlowTable:
    """Streaming 4-tuple demultiplexer with bounded live-flow memory.

    Feed records with :meth:`add`; each call returns the flows that
    *completed* as a result (usually none).  Call :meth:`drain` at end
    of stream for everything still live.  Iteration order of returned
    flows is always birth order.
    """

    def __init__(self,
                 idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
                 time_wait: float = DEFAULT_TIME_WAIT,
                 max_flows: int = DEFAULT_MAX_FLOWS,
                 syn_only: bool = True,
                 stats: IngestStats | None = None,
                 on_retire: Callable[[Flow], None] | None = None) -> None:
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1, not {max_flows}")
        self.idle_timeout = idle_timeout
        self.time_wait = time_wait
        self.max_flows = max_flows
        self.syn_only = syn_only
        self.stats = stats if stats is not None else IngestStats()
        # Invoked once per flow, at the moment it is retired (its
        # close_reason already set).  Lets a live consumer — the serve
        # tailer — react to completions without polling the return
        # values of every add(); batch callers simply leave it unset.
        self.on_retire = on_retire
        # Insertion order is maintained as least-recently-active first
        # (flows are re-inserted on every touch), so the front of the
        # dict is both the LRU eviction victim and the idlest flow.
        self._flows: dict[ConnectionKey, Flow] = {}
        self._next_index = 0
        self._last_expiry: float | None = None

    @property
    def live_flows(self) -> int:
        return len(self._flows)

    def add(self, record: TraceRecord) -> list[Flow]:
        """Account one record; return flows completed by its arrival."""
        completed = self._expire(record.timestamp)
        key = ConnectionKey.from_record(record)
        flow = self._flows.get(key)

        if flow is not None and flow.closing_at is not None \
                and record.is_syn and not record.has_ack:
            # The 4-tuple is being reused: a fresh SYN against a
            # closed-down flow starts a new connection, so retire the
            # old one immediately rather than gluing them together.
            self._retire(flow, flow.close_pending or "fin")
            completed.append(flow)
            flow = None

        if flow is None:
            if self.syn_only and not record.is_syn:
                self.stats.orphan_packets += 1
                return sorted(completed, key=lambda f: f.index)
            flow = Flow(key=key, index=self._next_index,
                        opened_at=record.timestamp)
            self._next_index += 1
            self._flows[key] = flow
            self.stats.flow_opened()
            while len(self._flows) > self.max_flows:
                victim_key = next(iter(self._flows))
                victim = self._flows[victim_key]
                self._retire(victim, "evicted")
                completed.append(victim)
        else:
            # Touch: move to the most-recently-active end.
            del self._flows[key]
            self._flows[key] = flow

        flow.records.append(record)
        flow.last_seen = record.timestamp
        if record.is_syn:
            flow.saw_syn = True
        if record.is_rst:
            flow.close_pending = "rst"
            flow.closing_at = record.timestamp
        elif record.is_fin:
            flow.fin_directions.add(record.flow)
        elif len(flow.fin_directions) >= 2 and record.is_pure_ack:
            # Both sides sent FIN and this looks like the final ack of
            # the teardown: start the time-wait linger.
            flow.close_pending = "fin"
            flow.closing_at = record.timestamp
        return sorted(completed, key=lambda f: f.index)

    def shed(self, count: int) -> list[Flow]:
        """Early-retire the *count* least-recently-active live flows.

        The memory-pressure escape valve for the serve governor: the
        flows come back (close reason ``"shed"``) so their records can
        still be analyzed, but the table stops holding them.  Never
        called on the batch path — shedding trades the live-vs-batch
        equivalence of the affected flows for a bounded memory
        ceiling, which is exactly the degradation ladder's deal.
        """
        victims = []
        for key in list(self._flows):
            if len(victims) >= count:
                break
            victims.append(self._flows[key])
        for flow in victims:
            self._retire(flow, "shed")
        return sorted(victims, key=lambda f: f.index)

    def drain(self) -> list[Flow]:
        """Retire everything still live (end of stream)."""
        remaining = sorted(self._flows.values(), key=lambda f: f.index)
        for flow in remaining:
            self._retire(flow, flow.close_pending or "eof")
        return remaining

    def _retire(self, flow: Flow, reason: str) -> None:
        flow.close_reason = reason
        del self._flows[flow.key]
        self.stats.flow_retired(reason)
        if self.on_retire is not None:
            self.on_retire(flow)

    def _expire(self, now: float) -> list[Flow]:
        """Retire flows whose time-wait or idle timeout has passed.

        Runs a full scan at most every ``EXPIRY_GRANULARITY`` stream
        seconds; with the live-flow cap, the scan cost is bounded no
        matter how long the capture runs.
        """
        if self._last_expiry is not None \
                and now - self._last_expiry < EXPIRY_GRANULARITY:
            return []
        self._last_expiry = now
        expired = []
        for flow in list(self._flows.values()):
            if flow.closing_at is not None \
                    and now - flow.closing_at >= self.time_wait:
                self._retire(flow, flow.close_pending)
                expired.append(flow)
            elif now - flow.last_seen >= self.idle_timeout:
                self._retire(flow, "idle")
                expired.append(flow)
        return expired


def demux_records(records: Iterable[TraceRecord],
                  stats: IngestStats | None = None,
                  **table_options) -> Iterator[Flow]:
    """Demultiplex a record stream into completed flows, lazily."""
    table = FlowTable(stats=stats, **table_options)
    for record in records:
        yield from table.add(record)
    yield from table.drain()
