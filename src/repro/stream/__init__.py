"""Streaming ingest and flow demultiplexing (the scale front end).

Real captures are long-lived, multi-connection, and partially damaged.
This package turns them into the single-connection traces the rest of
the system analyzes, with bounded memory:

- :func:`iter_pcap` — incremental pcap decode, one record at a time,
  damage-tolerant (truncated trailers, unknown link types, non-TCP
  cross-traffic become counted warnings, not exceptions);
- :class:`FlowTable` / :func:`demux_records` — 4-tuple
  demultiplexing with SYN birth, FIN/RST/idle retirement, and an LRU
  live-flow cap;
- :func:`analyze_stream` / :func:`demux_pcap` — the composed
  pipeline: capture in, per-connection :class:`FlowReport` out;
- :class:`IngestStats` — the accounting layer every stage reports
  into.
"""

from repro.stream.demux import (
    FlowReport,
    analyze_stream,
    build_flow_report,
    demux_pcap,
    flow_payload,
)
from repro.stream.flowtable import (
    ConnectionKey,
    Flow,
    FlowTable,
    demux_records,
)
from repro.stream.reader import (
    IncrementalPcapReader,
    PcapHeader,
    iter_pcap,
    read_pcap_header,
)
from repro.stream.stats import IngestStats, IngestWarning

__all__ = [
    "ConnectionKey",
    "Flow",
    "FlowReport",
    "FlowTable",
    "IncrementalPcapReader",
    "IngestStats",
    "IngestWarning",
    "PcapHeader",
    "analyze_stream",
    "build_flow_report",
    "demux_pcap",
    "demux_records",
    "flow_payload",
    "iter_pcap",
    "read_pcap_header",
]
