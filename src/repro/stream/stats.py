"""Ingest accounting for the streaming front end.

Real packet-filter captures arrive damaged: truncated trailing
records, cross-traffic the filter did not mean to keep, link types the
reader has never heard of.  The paper's whole methodology (§3) starts
from not trusting the measurement, so the streaming reader never
silently discards — every skipped packet and every retired flow lands
in an :class:`IngestStats`, and the first few of each anomaly carry a
structured :class:`IngestWarning` explaining exactly what was seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cap on retained warning objects; beyond it only the count grows.
DEFAULT_MAX_WARNINGS = 50


@dataclass(frozen=True)
class IngestWarning:
    """One structured ingest anomaly.

    ``kind`` is a stable machine-readable tag (``"truncated-record"``,
    ``"non-tcp"``, ``"decode-error"``, ``"unknown-linktype"``);
    ``packet_index`` is the zero-based ordinal of the offending packet
    record in the capture, or -1 for file-level warnings.
    """

    kind: str
    detail: str
    packet_index: int = -1

    def __str__(self) -> str:
        where = f" (packet {self.packet_index})" if self.packet_index >= 0 \
            else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclass
class IngestStats:
    """Counters for one streaming ingest run (reader + flow table)."""

    # Reader-side counters.
    packets_seen: int = 0        # raw pcap records encountered
    bytes_seen: int = 0          # captured bytes (after link-layer strip)
    records_decoded: int = 0     # TCP records successfully decoded
    non_tcp_packets: int = 0     # IPv4 cross-traffic (UDP, ICMP, ...)
    decode_errors: int = 0       # non-IP or malformed packets
    truncated_records: int = 0   # partial trailing records

    # Flow-table counters.
    flows_opened: int = 0
    flows_retired: int = 0       # all retirements, including evictions
    flows_evicted: int = 0       # LRU-cap retirements only
    orphan_packets: int = 0      # no live flow and no SYN to start one
    live_flows: int = 0
    peak_live_flows: int = 0
    retired_by_reason: dict[str, int] = field(default_factory=dict)

    warnings: list[IngestWarning] = field(default_factory=list)
    warnings_total: int = 0      # including those dropped past the cap
    max_warnings: int = DEFAULT_MAX_WARNINGS

    def warn(self, kind: str, detail: str, packet_index: int = -1) -> None:
        """Record a structured warning (capped; the count is not)."""
        self.warnings_total += 1
        if len(self.warnings) < self.max_warnings:
            self.warnings.append(IngestWarning(kind=kind, detail=detail,
                                               packet_index=packet_index))

    def flow_opened(self) -> None:
        self.flows_opened += 1
        self.live_flows += 1
        self.peak_live_flows = max(self.peak_live_flows, self.live_flows)

    def flow_retired(self, reason: str) -> None:
        self.flows_retired += 1
        self.live_flows -= 1
        self.retired_by_reason[reason] = \
            self.retired_by_reason.get(reason, 0) + 1
        if reason == "evicted":
            self.flows_evicted += 1

    def to_dict(self) -> dict:
        """A JSON-serializable, deterministic summary of the run."""
        return {
            "packets_seen": self.packets_seen,
            "bytes_seen": self.bytes_seen,
            "records_decoded": self.records_decoded,
            "non_tcp_packets": self.non_tcp_packets,
            "decode_errors": self.decode_errors,
            "truncated_records": self.truncated_records,
            "flows_opened": self.flows_opened,
            "flows_retired": self.flows_retired,
            "flows_evicted": self.flows_evicted,
            "orphan_packets": self.orphan_packets,
            "peak_live_flows": self.peak_live_flows,
            "retired_by_reason": dict(sorted(
                self.retired_by_reason.items())),
            "warnings": self.warnings_total,
        }

    def summary(self) -> str:
        """A human-readable ingest footer for CLI output."""
        lines = [
            f"ingest: {self.packets_seen} packets "
            f"({self.bytes_seen} bytes), "
            f"{self.records_decoded} TCP records decoded",
        ]
        skipped = []
        if self.non_tcp_packets:
            skipped.append(f"{self.non_tcp_packets} non-TCP")
        if self.decode_errors:
            skipped.append(f"{self.decode_errors} undecodable")
        if self.truncated_records:
            skipped.append(f"{self.truncated_records} truncated")
        if self.orphan_packets:
            skipped.append(f"{self.orphan_packets} orphaned")
        if skipped:
            lines.append(f"  skipped: {', '.join(skipped)}")
        reasons = ", ".join(f"{count} by {reason}" for reason, count
                            in sorted(self.retired_by_reason.items()))
        lines.append(f"  flows: {self.flows_opened} opened, "
                     f"{self.flows_retired} retired"
                     + (f" ({reasons})" if reasons else "")
                     + f", peak live {self.peak_live_flows}")
        for warning in self.warnings[:10]:
            lines.append(f"  warning {warning}")
        if self.warnings_total > min(len(self.warnings), 10):
            lines.append(f"  ... {self.warnings_total} warning(s) total")
        return "\n".join(lines)
