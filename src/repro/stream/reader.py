"""Incremental pcap ingest: one decoded record at a time, O(1) memory.

``read_pcap`` materializes a whole capture before anything can look at
it — fine for a 100 KB transfer trace, hopeless for the multi-hour,
multi-connection captures real packet filters produce (the paper's
corpus alone was ~20,000 traces).  :func:`iter_pcap` is the streaming
replacement: it decodes and yields each :class:`TraceRecord` as it is
read, holds no more than one packet in memory, and degrades gracefully
where the eager reader raised — truncated trailing records become
warning-carrying partial results, unknown link types become a
structured warning plus a best-effort raw-IP decode, and non-TCP
cross-traffic is counted rather than crashed on.

:class:`IncrementalPcapReader` is the live-capture variant underneath
it: a stateful reader that can be polled repeatedly against a file
that is *still being written*.  A partially-written trailing record is
never treated as damage mid-stream — the reader rewinds to the record
boundary (the **resume offset**) and retries once more bytes land.
Only :meth:`IncrementalPcapReader.finalize` applies the end-of-capture
truncation semantics, which is what ``iter_pcap`` does implicitly at
end of file.

All anomalies are reported through an optional :class:`IngestStats`;
callers that pass none simply get the clean records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import BinaryIO, Iterator

from repro.stream.stats import IngestStats
from repro.trace.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PCAP_MAGIC,
    PCAP_MAGIC_SWAPPED,
)
from repro.trace.record import TraceRecord
from repro.trace.wire import (
    AddressMap,
    PacketDecodeError,
    decode_packet,
    decode_packet_batch,
)

ETHERNET_HEADER_LEN = 14

GLOBAL_HEADER_LEN = 24
RECORD_HEADER_LEN = 16

#: How much pending capture a poll reads and batch-decodes at a time.
#: Bounds memory for multi-GB captures while amortizing the per-call
#: overhead of the vectorized decoder.
CHUNK_BYTES = 4 << 20


@dataclass(frozen=True)
class PcapHeader:
    """The decoded pcap global header."""

    endian: str          # struct prefix: ">" or "<"
    snaplen: int
    linktype: int

    @property
    def link_supported(self) -> bool:
        return self.linktype in (LINKTYPE_RAW, LINKTYPE_ETHERNET)


def read_pcap_header(handle: BinaryIO, name: str = "") -> PcapHeader:
    """Parse the 24-byte global header; raise ValueError for non-pcap.

    A bad magic number or a short header means the file is not a pcap
    at all — that is a caller error, not a damaged capture, so it
    raises rather than warns.
    """
    header = handle.read(GLOBAL_HEADER_LEN)
    if len(header) < GLOBAL_HEADER_LEN:
        raise ValueError(f"{name}: too short to be a pcap file")
    return parse_pcap_header(header, name=name)


def parse_pcap_header(header: bytes, name: str = "") -> PcapHeader:
    """Decode 24 already-read global-header bytes (see read_pcap_header)."""
    # One detection path: read the magic big-endian.  A match means a
    # big-endian file; the byte-swapped constant means the writer was
    # little-endian; anything else is not a pcap file.
    magic = struct.unpack(">I", header[:4])[0]
    if magic == PCAP_MAGIC:
        endian = ">"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = "<"
    else:
        raise ValueError(f"{name}: unrecognized pcap magic {magic:#010x}")
    _v_major, _v_minor, _tz, _sig, snaplen, linktype = struct.unpack(
        endian + "HHiIII", header[4:GLOBAL_HEADER_LEN])
    return PcapHeader(endian=endian, snaplen=snaplen, linktype=linktype)


class IncrementalPcapReader:
    """A pollable pcap decoder for captures that are still growing.

    Each :meth:`poll` decodes every record that is *completely* on
    disk and returns, leaving :attr:`resume_offset` at the first byte
    it could not fully consume.  A record whose per-packet header or
    payload bytes are only partially written is left pending — the
    next poll seeks back to the same offset and retries, so a tailer
    never mistakes an in-progress write for a damaged capture.

    :meth:`finalize` declares end-of-capture: any still-pending
    partial record is then given the historical ``iter_pcap``
    treatment (counted, warned about, and — when its headers survived
    — decoded without checksum verification and yielded).

    The reader opens lazily: constructing one against a path that does
    not exist yet is fine; polls simply return nothing until the file
    appears and its global header is complete.
    """

    def __init__(self, path: str | FilePath,
                 addresses: AddressMap | None = None,
                 stats: IngestStats | None = None,
                 strict: bool = False):
        self.path = FilePath(path)
        self.addresses = addresses
        self.stats = stats if stats is not None else IngestStats()
        self.strict = strict
        self.header: PcapHeader | None = None
        self._handle: BinaryIO | None = None
        self._strip = 0
        self._offset = 0          # first byte not fully consumed
        self._index = -1          # pcap record ordinal, for warnings
        self._finalized = False

    @property
    def resume_offset(self) -> int:
        """File offset the next poll retries from (bytes consumed)."""
        return self._offset

    def _ensure_header(self) -> bool:
        """Open the file and parse the global header once available."""
        if self.header is not None:
            return True
        if self._handle is None:
            try:
                self._handle = open(self.path, "rb")
            except FileNotFoundError:
                return False
        self._handle.seek(0)
        raw = self._handle.read(GLOBAL_HEADER_LEN)
        if len(raw) < GLOBAL_HEADER_LEN:
            return False          # header itself still being written
        header = parse_pcap_header(raw, name=str(self.path))
        self.header = header
        self._offset = GLOBAL_HEADER_LEN
        self._strip = ETHERNET_HEADER_LEN \
            if header.linktype == LINKTYPE_ETHERNET else 0
        if not header.link_supported:
            if self.strict:
                raise ValueError(f"{self.path}: unsupported link type "
                                 f"{header.linktype}")
            self.stats.warn("unknown-linktype",
                            f"link type {header.linktype} unknown; "
                            f"attempting raw-IP decode")
        return True

    def poll(self) -> Iterator[TraceRecord]:
        """Yield every record now fully on disk; hold partials back.

        Records are read and decoded a chunk at a time (so the numpy
        backend can decode whole batches vectorially), but the resume
        offset and stats commit per record, *before* that record's
        yield — abandoning the generator mid-chunk leaves the reader
        positioned exactly after the last record handed out, the same
        contract the one-record-at-a-time loop provided.
        """
        if self._finalized:
            raise ValueError(f"{self.path}: reader already finalized")
        if not self._ensure_header():
            return
        stats = self.stats
        handle = self._handle
        endian = self.header.endian
        while True:
            handle.seek(self._offset)
            blob = handle.read(CHUNK_BYTES)
            # Walk every complete record in the chunk without
            # committing anything yet.
            position = 0
            metas: list[tuple[int, int, int]] = []
            packets: list[bytes] = []
            timestamps: list[float] = []
            verify: list[bool] = []
            while position + RECORD_HEADER_LEN <= len(blob):
                seconds, micros, incl_len, orig_len = struct.unpack_from(
                    endian + "IIII", blob, position)
                if position + RECORD_HEADER_LEN + incl_len > len(blob):
                    break         # record incomplete within this chunk
                data = blob[position + RECORD_HEADER_LEN:
                            position + RECORD_HEADER_LEN + incl_len]
                position += RECORD_HEADER_LEN + incl_len
                metas.append((incl_len, seconds, micros))
                packets.append(data[self._strip:])
                timestamps.append(seconds + micros / 1e6)
                verify.append(incl_len >= orig_len)
            if not metas:
                if len(blob) >= CHUNK_BYTES:
                    # One record larger than a whole chunk: take the
                    # unbatched path for it, then resume chunking.
                    if self._poll_one_oversized(handle, endian) is None:
                        return
                    record = self._pending_record
                    self._pending_record = None
                    if record is not None:
                        yield record
                    continue
                return            # partial tail: retry next poll
            decoded = decode_packet_batch(packets, timestamps,
                                          self.addresses, verify)
            for k, (incl_len, _seconds, _micros) in enumerate(metas):
                self._offset += RECORD_HEADER_LEN + incl_len
                self._index += 1
                stats.packets_seen += 1
                stats.bytes_seen += incl_len
                outcome = decoded[k]
                if isinstance(outcome, PacketDecodeError):
                    if outcome.kind == "non-tcp":
                        stats.non_tcp_packets += 1
                        stats.warn("non-tcp", str(outcome), self._index)
                    else:
                        stats.decode_errors += 1
                        stats.warn("decode-error", str(outcome), self._index)
                    continue
                stats.records_decoded += 1
                yield outcome
            if len(blob) < CHUNK_BYTES:
                return            # consumed all bytes on disk at read time

    #: Scratch slot for the oversized-record path (set by
    #: :meth:`_poll_one_oversized`, consumed by :meth:`poll`).
    _pending_record: TraceRecord | None = None

    def _poll_one_oversized(self, handle, endian) -> bool | None:
        """Read and commit a single record the pre-chunking way.

        Returns None when the record is still incomplete on disk (the
        poll should stop and retry later); otherwise commits offset
        and stats, leaves any decoded record in ``_pending_record``,
        and returns True.
        """
        stats = self.stats
        handle.seek(self._offset)
        record_header = handle.read(RECORD_HEADER_LEN)
        if len(record_header) < RECORD_HEADER_LEN:
            return None
        seconds, micros, incl_len, orig_len = struct.unpack(
            endian + "IIII", record_header)
        data = handle.read(incl_len)
        if len(data) < incl_len:
            return None
        self._offset += RECORD_HEADER_LEN + incl_len
        self._index += 1
        stats.packets_seen += 1
        stats.bytes_seen += len(data)
        self._pending_record = self._decode(data, seconds, micros,
                                            truncated=incl_len < orig_len,
                                            short=False)
        return True

    def finalize(self) -> Iterator[TraceRecord]:
        """Declare end-of-capture; apply truncated-trailer semantics.

        Whatever trailing bytes remain unconsumed are now damage, not
        an in-progress write: a cut-short record header warns; a
        cut-short payload decodes without checksum verification and is
        yielded as a partial result when its packet headers survive.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.header is None:
            # Never enough bytes for a global header: preserve the
            # historical contract that such a file is not a pcap.
            if self._handle is not None:
                self._handle.seek(0)
                raw = self._handle.read(GLOBAL_HEADER_LEN)
                self.close()
                if raw:
                    raise ValueError(
                        f"{self.path}: too short to be a pcap file")
            return
        stats = self.stats
        handle = self._handle
        handle.seek(self._offset)
        record_header = handle.read(RECORD_HEADER_LEN)
        if not record_header:
            self.close()
            return
        self._index += 1
        if len(record_header) < RECORD_HEADER_LEN:
            stats.packets_seen += 1
            stats.truncated_records += 1
            stats.warn("truncated-record",
                       f"final record header cut short "
                       f"({len(record_header)} of "
                       f"{RECORD_HEADER_LEN} bytes)", self._index)
            self.close()
            return
        seconds, micros, incl_len, _orig_len = struct.unpack(
            self.header.endian + "IIII", record_header)
        data = handle.read(incl_len)
        incomplete = len(data)
        self._offset += RECORD_HEADER_LEN + incomplete
        stats.packets_seen += 1
        stats.bytes_seen += len(data)
        record = self._decode(data, seconds, micros, truncated=True,
                              short=True, expected=incl_len)
        self.close()
        if record is not None:
            yield record

    def _decode(self, data: bytes, seconds: int, micros: int,
                truncated: bool, short: bool,
                expected: int = 0) -> TraceRecord | None:
        """Decode one captured packet, doing all the stats accounting.

        *short* marks a cut-short final record (finalize path): decode
        failures there are truncation warnings, not decode errors.
        """
        stats = self.stats
        data = data[self._strip:]
        timestamp = seconds + micros / 1e6
        # Snaplen truncation (incl < orig) and a cut-short final
        # record both leave the payload unverifiable.
        try:
            record = decode_packet(data, timestamp, self.addresses,
                                   verify_checksum=not truncated)
        except PacketDecodeError as error:
            if short:
                stats.truncated_records += 1
                stats.warn("truncated-record",
                           f"final record cut short ({len(data)} of "
                           f"{expected} captured bytes): {error}",
                           self._index)
                return None
            if error.kind == "non-tcp":
                stats.non_tcp_packets += 1
                stats.warn("non-tcp", str(error), self._index)
            else:
                stats.decode_errors += 1
                stats.warn("decode-error", str(error), self._index)
            return None
        stats.records_decoded += 1
        if short:
            stats.truncated_records += 1
            stats.warn("truncated-record",
                       f"final record cut short ({len(data)} of "
                       f"{expected} captured bytes); partial record "
                       f"decoded without checksum verification",
                       self._index)
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def iter_pcap(path: str | FilePath,
              addresses: AddressMap | None = None,
              stats: IngestStats | None = None,
              strict: bool = False) -> Iterator[TraceRecord]:
    """Yield each decoded TCP record of a pcap file, one at a time.

    Memory use is O(1) in the capture length: exactly one packet is
    held between yields.  Damage tolerance:

    - a truncated trailing record decodes with checksum verification
      off and is yielded as a partial result (plus a
      ``"truncated-record"`` warning) when its headers survive;
    - non-TCP IPv4 cross-traffic and undecodable packets are counted
      and skipped, never raised;
    - an unknown link type warns once and then attempts a raw-IP
      decode of every packet (with ``strict=True`` it raises instead,
      preserving the historical ``read_pcap`` contract).

    A bad magic number or short global header still raises
    ``ValueError`` in either mode: that file is not a pcap.
    """
    reader = IncrementalPcapReader(path, addresses=addresses,
                                   stats=stats, strict=strict)
    try:
        if not reader._ensure_header():
            # Missing file raises in open(); present-but-short raises
            # here, matching the eager reader's contract.
            if reader._handle is None:
                open(path, "rb").close()   # surface FileNotFoundError
            raise ValueError(f"{path}: too short to be a pcap file")
        yield from reader.poll()
        yield from reader.finalize()
    finally:
        reader.close()
