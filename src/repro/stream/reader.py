"""Incremental pcap ingest: one decoded record at a time, O(1) memory.

``read_pcap`` materializes a whole capture before anything can look at
it — fine for a 100 KB transfer trace, hopeless for the multi-hour,
multi-connection captures real packet filters produce (the paper's
corpus alone was ~20,000 traces).  :func:`iter_pcap` is the streaming
replacement: it decodes and yields each :class:`TraceRecord` as it is
read, holds no more than one packet in memory, and degrades gracefully
where the eager reader raised — truncated trailing records become
warning-carrying partial results, unknown link types become a
structured warning plus a best-effort raw-IP decode, and non-TCP
cross-traffic is counted rather than crashed on.

All anomalies are reported through an optional :class:`IngestStats`;
callers that pass none simply get the clean records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import BinaryIO, Iterator

from repro.stream.stats import IngestStats
from repro.trace.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PCAP_MAGIC,
    PCAP_MAGIC_SWAPPED,
)
from repro.trace.record import TraceRecord
from repro.trace.wire import AddressMap, PacketDecodeError, decode_packet

ETHERNET_HEADER_LEN = 14

GLOBAL_HEADER_LEN = 24
RECORD_HEADER_LEN = 16


@dataclass(frozen=True)
class PcapHeader:
    """The decoded pcap global header."""

    endian: str          # struct prefix: ">" or "<"
    snaplen: int
    linktype: int

    @property
    def link_supported(self) -> bool:
        return self.linktype in (LINKTYPE_RAW, LINKTYPE_ETHERNET)


def read_pcap_header(handle: BinaryIO, name: str = "") -> PcapHeader:
    """Parse the 24-byte global header; raise ValueError for non-pcap.

    A bad magic number or a short header means the file is not a pcap
    at all — that is a caller error, not a damaged capture, so it
    raises rather than warns.
    """
    header = handle.read(GLOBAL_HEADER_LEN)
    if len(header) < GLOBAL_HEADER_LEN:
        raise ValueError(f"{name}: too short to be a pcap file")
    # One detection path: read the magic big-endian.  A match means a
    # big-endian file; the byte-swapped constant means the writer was
    # little-endian; anything else is not a pcap file.
    magic = struct.unpack(">I", header[:4])[0]
    if magic == PCAP_MAGIC:
        endian = ">"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = "<"
    else:
        raise ValueError(f"{name}: unrecognized pcap magic {magic:#010x}")
    _v_major, _v_minor, _tz, _sig, snaplen, linktype = struct.unpack(
        endian + "HHiIII", header[4:GLOBAL_HEADER_LEN])
    return PcapHeader(endian=endian, snaplen=snaplen, linktype=linktype)


def iter_pcap(path: str | FilePath,
              addresses: AddressMap | None = None,
              stats: IngestStats | None = None,
              strict: bool = False) -> Iterator[TraceRecord]:
    """Yield each decoded TCP record of a pcap file, one at a time.

    Memory use is O(1) in the capture length: exactly one packet is
    held between yields.  Damage tolerance:

    - a truncated trailing record decodes with checksum verification
      off and is yielded as a partial result (plus a
      ``"truncated-record"`` warning) when its headers survive;
    - non-TCP IPv4 cross-traffic and undecodable packets are counted
      and skipped, never raised;
    - an unknown link type warns once and then attempts a raw-IP
      decode of every packet (with ``strict=True`` it raises instead,
      preserving the historical ``read_pcap`` contract).

    A bad magic number or short global header still raises
    ``ValueError`` in either mode: that file is not a pcap.
    """
    stats = stats if stats is not None else IngestStats()
    with open(path, "rb") as handle:
        header = read_pcap_header(handle, name=str(path))
        strip = ETHERNET_HEADER_LEN \
            if header.linktype == LINKTYPE_ETHERNET else 0
        if not header.link_supported:
            if strict:
                raise ValueError(f"{path}: unsupported link type "
                                 f"{header.linktype}")
            stats.warn("unknown-linktype",
                       f"link type {header.linktype} unknown; "
                       f"attempting raw-IP decode")

        index = -1
        while True:
            index += 1
            record_header = handle.read(RECORD_HEADER_LEN)
            if not record_header:
                break
            if len(record_header) < RECORD_HEADER_LEN:
                stats.packets_seen += 1
                stats.truncated_records += 1
                stats.warn("truncated-record",
                           f"final record header cut short "
                           f"({len(record_header)} of "
                           f"{RECORD_HEADER_LEN} bytes)", index)
                break
            seconds, micros, incl_len, orig_len = struct.unpack(
                header.endian + "IIII", record_header)
            data = handle.read(incl_len)
            stats.packets_seen += 1
            stats.bytes_seen += len(data)
            short = len(data) < incl_len
            data = data[strip:]
            timestamp = seconds + micros / 1e6
            # Snaplen truncation (incl < orig) and a cut-short final
            # record both leave the payload unverifiable.
            truncated = short or incl_len < orig_len
            try:
                record = decode_packet(data, timestamp, addresses,
                                       verify_checksum=not truncated)
            except PacketDecodeError as error:
                if short:
                    stats.truncated_records += 1
                    stats.warn("truncated-record",
                               f"final record cut short ({len(data)} of "
                               f"{incl_len} captured bytes): {error}",
                               index)
                    break
                if error.kind == "non-tcp":
                    stats.non_tcp_packets += 1
                    stats.warn("non-tcp", str(error), index)
                else:
                    stats.decode_errors += 1
                    stats.warn("decode-error", str(error), index)
                continue
            stats.records_decoded += 1
            if short:
                stats.truncated_records += 1
                stats.warn("truncated-record",
                           f"final record cut short ({len(data)} of "
                           f"{incl_len} captured bytes); partial record "
                           f"decoded without checksum verification", index)
                yield record
                break
            yield record
