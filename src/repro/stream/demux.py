"""The streaming analysis front end: pcap → flows → TraceReports.

Composes :func:`iter_pcap` (bounded-memory decode) with the
:class:`FlowTable` (4-tuple demux) and hands each completed flow to
the existing ``analyze_trace`` machinery, so one large multi-
connection capture fans out into per-connection reports exactly as if
each connection had been captured alone.  For a single-connection
capture the streamed report is byte-identical to the eager
``read_pcap`` → ``analyze_trace`` path — the equivalence the test
suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import Iterator

from repro.core.engine import IdentificationEngine
from repro.core.errors import AnalysisError, classify_exception
from repro.core.report import TraceReport, analyze_trace
from repro.stream.flowtable import Flow, demux_records
from repro.stream.reader import iter_pcap
from repro.stream.stats import IngestStats
from repro.tcp.params import TCPBehavior
from repro.trace.wire import AddressMap


@dataclass
class FlowReport:
    """One demultiplexed connection plus its analysis report.

    In tolerant mode a connection whose analysis failed still yields a
    FlowReport — *report* is None and *error* carries the classified
    failure, so one poisonous connection quarantines itself instead of
    sinking every other flow in the capture.
    """

    flow: Flow
    report: TraceReport | None
    error: AnalysisError | None = None

    @property
    def name(self) -> str:
        return f"flow-{self.flow.index:04d}"

    def to_dict(self) -> dict:
        """The report payload extended with flow provenance."""
        payload = {
            "flow": {
                "connection": str(self.flow.key),
                "index": self.flow.index,
                "records": len(self.flow.records),
                "close_reason": self.flow.close_reason,
                "saw_syn": self.flow.saw_syn,
            },
        }
        if self.error is not None:
            payload.update(self.error.to_fields())
        if self.report is not None:
            payload.update(self.report.to_dict())
        return payload


def build_flow_report(flow: Flow,
                      behavior: TCPBehavior | None = None,
                      identify: bool = False,
                      headers_only: bool = False,
                      engine: IdentificationEngine | None = None,
                      tolerant: bool = False) -> FlowReport:
    """Analyze one completed flow into a :class:`FlowReport`.

    With *tolerant* set, an analysis failure is classified and
    returned as an errored report instead of propagating.
    """
    try:
        report = analyze_trace(flow.to_trace(), behavior,
                               identify=identify,
                               headers_only=headers_only,
                               engine=engine)
    except Exception as error:
        if not tolerant:
            raise
        return FlowReport(flow=flow, report=None,
                          error=classify_exception(error))
    return FlowReport(flow=flow, report=report)


def flow_payload(flow_report: FlowReport, trace_name: str,
                 implementation: str | None = None) -> dict:
    """The canonical JSONL payload for one analyzed flow.

    Both the batch runner and the serve daemon emit per-flow payloads
    through this one builder, which is what makes live output
    comparable line-for-line with ``batch --stream`` output: same
    keys, same order, same values for the same flow.  (Batch appends
    a capture-wide ``ingest`` block afterwards; the serve sink cannot
    — the capture is still growing when the flow is reported.)
    """
    payload = {
        "trace": trace_name,
        "implementation": implementation,
        "records": len(flow_report.flow.records),
    }
    payload.update(flow_report.to_dict())
    return payload


def demux_pcap(path: str | FilePath,
               addresses: AddressMap | None = None,
               stats: IngestStats | None = None,
               strict: bool = False,
               **table_options) -> Iterator[Flow]:
    """Stream a pcap file into completed flows, one at a time.

    Reader and flow table share *stats*, so after exhaustion the
    caller holds the full ingest picture (decode errors, flow
    lifecycle counts, peak live flows).
    """
    stats = stats if stats is not None else IngestStats()
    yield from demux_records(
        iter_pcap(path, addresses=addresses, stats=stats, strict=strict),
        stats=stats, **table_options)


def analyze_stream(path: str | FilePath,
                   behavior: TCPBehavior | None = None,
                   identify: bool = False,
                   headers_only: bool = False,
                   addresses: AddressMap | None = None,
                   stats: IngestStats | None = None,
                   strict: bool = False,
                   engine: IdentificationEngine | None = None,
                   tolerant: bool = False,
                   **table_options) -> Iterator[FlowReport]:
    """Analyze every connection in *path*, yielding reports lazily.

    Peak memory is bounded by the live-flow set, not the capture
    length: each flow is analyzed and released as soon as it
    completes.  A single identification engine (the caller's, or one
    built here) serves every flow in the capture.  With *tolerant*, a
    flow whose analysis fails yields an errored FlowReport instead of
    aborting the remaining connections.
    """
    if identify and engine is None:
        engine = IdentificationEngine()
    for flow in demux_pcap(path, addresses=addresses, stats=stats,
                           strict=strict, **table_options):
        yield build_flow_report(flow, behavior, identify=identify,
                                headers_only=headers_only, engine=engine,
                                tolerant=tolerant)
