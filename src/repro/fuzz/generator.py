"""Seeded scenario planning.

A :class:`ScenarioPlan` is the *complete* recipe for one adversarial
scenario: which implementation talks over which path, where the
filter sits and how it misbehaves, which record/frame/file manglers
run and in what order.  The plan is a pure function of its seed —
``plan_scenario(s)`` returns the same plan in every process on every
machine — so a failure reported by a sweep anywhere reproduces from
its seed alone.

Sampling is weighted, not uniform: the common case (one mangler, a
plain path) dominates, heavy compositions (cross traffic + middlebox
damage + torn file) appear in a deliberate minority, and a slice of
scenarios is left entirely clean so the sweep also guards against
regressions on *friendly* input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.fuzz.ingredients import (
    FILE_MANGLERS,
    FRAME_MANGLERS,
    RECORD_MANGLERS,
)
from repro.harness.scenarios import SCENARIOS
from repro.tcp.catalog import CATALOG

#: Network scenarios the fuzzer draws from.  ``satellite`` and the
#: modems are excluded only for sweep wall-clock; they remain
#: reachable by naming them in a hand-written plan.
FUZZ_SCENARIOS = ("lan", "wan", "wan-lossy", "transatlantic",
                  "lossy-corrupting", "adsl-asymmetric", "ack-lossy",
                  "congested")

#: Filter defects (applied at the capture point, inside the
#: simulation) the planner may enable.
FILTER_FAULTS = ("drops", "duplication", "resequencing")

_DATA_SIZES = (4096, 8192, 16384, 24576, 32768)


@dataclass(frozen=True)
class ScenarioPlan:
    """One fully specified adversarial scenario."""

    seed: int
    implementation: str
    scenario: str
    data_size: int
    vantage: str                       # "sender" or "receiver"
    filter_faults: tuple[str, ...] = ()
    record_manglers: tuple[str, ...] = ()
    frame_manglers: tuple[str, ...] = ()
    file_manglers: tuple[str, ...] = ()
    cross_connections: tuple[str, ...] = ()   # implementations
    max_duration: float = 120.0

    def __post_init__(self):
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        for name in (self.implementation, *self.cross_connections):
            if name not in CATALOG:
                raise ValueError(f"unknown implementation {name!r}")
        for fault in self.filter_faults:
            if fault not in FILTER_FAULTS:
                raise ValueError(f"unknown filter fault {fault!r}")
        for group, registry in ((self.record_manglers, RECORD_MANGLERS),
                                (self.frame_manglers, FRAME_MANGLERS),
                                (self.file_manglers, FILE_MANGLERS)):
            for name in group:
                if name not in registry:
                    raise ValueError(f"unknown mangler {name!r}")

    @property
    def ingredients(self) -> tuple[str, ...]:
        """Every adversarial ingredient, for reporting."""
        return (tuple(f"filter:{f}" for f in self.filter_faults)
                + tuple(f"record:{m}" for m in self.record_manglers)
                + tuple(f"frame:{m}" for m in self.frame_manglers)
                + tuple(f"file:{m}" for m in self.file_manglers))

    def describe(self) -> str:
        extras = ", ".join(self.ingredients) or "clean"
        cross = (f" +{len(self.cross_connections)} cross-conn"
                 if self.cross_connections else "")
        return (f"seed={self.seed} {self.implementation} over "
                f"{self.scenario} ({self.data_size} B, "
                f"{self.vantage} vantage{cross}): {extras}")

    def to_dict(self) -> dict:
        """JSON-ready form, written next to every reproducer."""
        return {
            "seed": self.seed,
            "implementation": self.implementation,
            "scenario": self.scenario,
            "data_size": self.data_size,
            "vantage": self.vantage,
            "filter_faults": list(self.filter_faults),
            "record_manglers": list(self.record_manglers),
            "frame_manglers": list(self.frame_manglers),
            "file_manglers": list(self.file_manglers),
            "cross_connections": list(self.cross_connections),
            "max_duration": self.max_duration,
        }


def _sample(rng: random.Random, names: tuple[str, ...],
            count: int) -> tuple[str, ...]:
    return tuple(rng.sample(list(names), min(count, len(names))))


def plan_scenario(seed: int) -> ScenarioPlan:
    """Compose the adversarial scenario for *seed* (deterministic)."""
    rng = random.Random(f"plan-{seed}")
    implementation = rng.choice(list(CATALOG))
    scenario = rng.choice(FUZZ_SCENARIOS)
    data_size = rng.choice(_DATA_SIZES)
    vantage = rng.choice(("sender", "receiver"))

    # ~12% of scenarios stay entirely clean: the sweep must keep
    # passing friendly input too, or a gate that only sees horrors
    # would miss a regression that breaks *everything*.
    if rng.random() < 0.12:
        return ScenarioPlan(seed=seed, implementation=implementation,
                            scenario=scenario, data_size=data_size,
                            vantage=vantage)

    filter_faults = ()
    if rng.random() < 0.35:
        filter_faults = _sample(rng, FILTER_FAULTS,
                                1 if rng.random() < 0.8 else 2)

    record_manglers = ()
    if rng.random() < 0.55:
        record_manglers = _sample(rng, tuple(RECORD_MANGLERS),
                                  1 if rng.random() < 0.7 else 2)

    frame_manglers = ()
    if rng.random() < 0.55:
        frame_manglers = _sample(rng, tuple(FRAME_MANGLERS),
                                 1 if rng.random() < 0.7 else 2)

    file_manglers = ()
    if rng.random() < 0.15:
        file_manglers = ("tear-tail",)

    cross_connections: tuple[str, ...] = ()
    if rng.random() < 0.30:
        cross_connections = tuple(rng.choice(list(CATALOG))
                                  for _ in range(rng.randint(1, 2)))

    return ScenarioPlan(seed=seed,
                        implementation=implementation,
                        scenario=scenario,
                        data_size=data_size,
                        vantage=vantage,
                        filter_faults=filter_faults,
                        record_manglers=record_manglers,
                        frame_manglers=frame_manglers,
                        file_manglers=file_manglers,
                        cross_connections=cross_connections)


def iter_plans(base_seed: int, count: int) -> Iterator[ScenarioPlan]:
    """The *count* plans of the sweep rooted at *base_seed*."""
    for i in range(count):
        yield plan_scenario(base_seed + i)
