"""Delta-debugging reproducer minimization.

A fuzzer-found failure on a 400-frame capture is a chore to debug; the
same failure on 9 frames is an afternoon fix and a permanent
regression test.  :func:`minimize_frames` is classic ddmin over the
frame list: remove chunks, keep any removal that preserves the failure
signature, halve the chunk size when nothing can be removed, stop at
granularity one.

The predicate gets a candidate frame list and returns True when the
candidate still fails *the same way* — callers should compare failure
signatures (outcome class plus exception type), not just "some
failure", or minimization can walk from the bug being chased to a
different, already-known one.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def minimize_frames(frames: Sequence[T],
                    still_fails: Callable[[list[T]], bool],
                    max_probes: int = 400) -> list[T]:
    """Shrink *frames* to a (1-minimal) list still failing the predicate.

    *max_probes* bounds the number of predicate evaluations: each probe
    replays the full analysis pipeline, and an adversarial capture can
    make ddmin quadratic.  On budget exhaustion the best reduction so
    far is returned — still a valid reproducer, just not minimal.
    """
    current = list(frames)
    if not still_fails(current):
        raise ValueError("input does not fail the predicate; "
                         "nothing to minimize")
    probes = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and probes < max_probes:
        reduced = False
        start = 0
        while start < len(current) and probes < max_probes:
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            probes += 1
            if still_fails(candidate):
                current = candidate
                reduced = True
                # Re-test the same offset: the next chunk slid into it.
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        else:
            chunk = min(chunk, max(1, len(current) // 2))
    return current
