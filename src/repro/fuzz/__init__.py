"""Adversarial scenario fuzzing: the standing correctness gate.

The paper's core claim is that tcpanaly stays *correct on hostile
input* — packet-filter defects, reordering-heavy paths, middlebox
damage.  This package turns that claim into a machine-checkable gate:

- :mod:`repro.fuzz.ingredients` is the vocabulary of adversarial
  ingredients — record-level path/middlebox mangling, frame-level
  byte surgery, torn capture files;
- :mod:`repro.fuzz.generator` composes ingredients into seeded,
  deterministic :class:`ScenarioPlan`\\ s;
- :mod:`repro.fuzz.runner` pushes every generated scenario through
  the full pipeline (wire encode → stream ingest → demux →
  identification) and classifies the outcome against a closed oracle;
- :mod:`repro.fuzz.minimize` shrinks a failing capture to a minimal
  reproducer.

Every scenario must either identify correctly, refuse honestly, or
quarantine with a classified :class:`~repro.core.errors.AnalysisError`
kind.  An exception escaping the pipeline unclassified, or a
confident misidentification on a calibration-clean trace, is a
fuzzer-found bug.
"""

from repro.fuzz.generator import ScenarioPlan, iter_plans, plan_scenario
from repro.fuzz.ingredients import (
    FILE_MANGLERS,
    FRAME_MANGLERS,
    RECORD_MANGLERS,
    Frame,
    render_pcap,
)
from repro.fuzz.minimize import minimize_frames
from repro.fuzz.runner import (
    FAIL_OUTCOMES,
    FuzzOutcome,
    SweepReport,
    run_scenario,
    run_sweep,
)

__all__ = [
    "FAIL_OUTCOMES",
    "FILE_MANGLERS",
    "FRAME_MANGLERS",
    "Frame",
    "FuzzOutcome",
    "RECORD_MANGLERS",
    "ScenarioPlan",
    "SweepReport",
    "iter_plans",
    "minimize_frames",
    "plan_scenario",
    "render_pcap",
    "run_scenario",
    "run_sweep",
]
