"""Run fuzz scenarios through the full pipeline and judge the outcome.

The oracle is deliberately closed.  Every scenario ends in exactly one
of these outcomes:

PASS
    ``identified``            the true implementation is in the close set
    ``near-miss``             truth ranked imperfect (damage cost evidence,
                              the analyzer stayed honest about fit quality)
    ``no-close-fit``          nothing fit closely — an honest refusal
    ``misidentified-flagged`` wrong answer, but calibration flagged the
                              trace as damaged measurement
    ``quarantined:<kind>``    the flow errored with a *classified*
                              :class:`~repro.core.errors.AnalysisError`
    ``consumed``              the primary connection never formed a flow,
                              and the ingest counters account for every
                              discarded packet

FAIL (fuzzer-found bug)
    ``misidentified``         truth ranked incorrect/unusable while an
                              impostor fit closely on a trace calibration
                              called *clean* — a silent wrong answer
    ``unclassified``          an exception escaped the pipeline instead
                              of quarantining
    ``silently-lost``         the primary connection vanished with no
                              counter explaining where it went

Everything here is deterministic: the simulation, the mangling RNG
substreams (one per mangler, keyed off the plan seed), and the
analysis.  A failing seed reproduces anywhere.
"""

from __future__ import annotations

import json
import random
import tempfile
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path as FilePath

from repro.capture import (
    DropInjector,
    DuplicationInjector,
    PacketFilter,
    ResequencingInjector,
)
from repro.fuzz.generator import ScenarioPlan, iter_plans
from repro.fuzz.ingredients import (
    FILE_MANGLERS,
    FRAME_MANGLERS,
    RECORD_MANGLERS,
    Frame,
    render_pcap,
)
from repro.fuzz.minimize import minimize_frames
from repro.harness.corpus import get_behavior, interleave_traces
from repro.harness.scenarios import traced_transfer
from repro.stream.demux import analyze_stream
from repro.stream.flowtable import ConnectionKey
from repro.stream.stats import IngestStats
from repro.trace.record import Trace
from repro.trace.wire import AddressMap, encode_record

FAIL_OUTCOMES = frozenset({"misidentified", "unclassified",
                           "silently-lost"})


@dataclass
class FuzzOutcome:
    """One scenario's verdict, plus the artifacts needed to replay it."""

    plan: ScenarioPlan
    outcome: str
    detail: str = ""
    #: The exact mangled frames analyzed (kept for minimization).
    frames: list[Frame] = field(default_factory=list, repr=False)
    addresses: AddressMap | None = field(default=None, repr=False)
    truth_key: ConnectionKey | None = field(default=None, repr=False)
    truth_implementation: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome not in FAIL_OUTCOMES

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "outcome": self.outcome,
            "ok": self.ok,
            "detail": self.detail,
            "truth_implementation": self.truth_implementation,
        }


def _build_filter(plan: ScenarioPlan) -> PacketFilter | None:
    """The misbehaving packet filter the plan asks for, if any."""
    if not plan.filter_faults:
        return None
    rng = random.Random(f"filter-{plan.seed}")
    kwargs = {}
    if "drops" in plan.filter_faults:
        kwargs["drops"] = DropInjector(rate=rng.uniform(0.01, 0.05),
                                       seed=plan.seed)
    if "duplication" in plan.filter_faults:
        kwargs["duplication"] = DuplicationInjector()
    if "resequencing" in plan.filter_faults:
        kwargs["resequencing"] = ResequencingInjector(seed=plan.seed)
    return PacketFilter(name="fuzz-filter", vantage=plan.vantage, **kwargs)


def build_capture(plan: ScenarioPlan) -> tuple[list[Frame], AddressMap,
                                               ConnectionKey, str]:
    """Simulate, mangle, and encode *plan* into analyzable frames.

    Returns ``(frames, addresses, truth_key, truth_implementation)``;
    the address map must be shared with the decode side so symbolic
    host names round-trip.
    """
    fuzz_filter = _build_filter(plan)
    transfer = traced_transfer(
        get_behavior(plan.implementation),
        scenario=plan.scenario,
        data_size=plan.data_size,
        seed=plan.seed,
        sender_filter=fuzz_filter if plan.vantage == "sender" else None,
        receiver_filter=fuzz_filter if plan.vantage == "receiver" else None,
        max_duration=plan.max_duration)
    primary = (transfer.sender_trace if plan.vantage == "sender"
               else transfer.receiver_trace)

    for name in plan.record_manglers:
        rng = random.Random(f"record-{plan.seed}-{name}")
        primary = RECORD_MANGLERS[name](primary, rng)

    traces: list[Trace] = [primary]
    labels: list[str] = [plan.implementation]
    for i, cross_impl in enumerate(plan.cross_connections):
        cross = traced_transfer(get_behavior(cross_impl),
                                scenario=plan.scenario,
                                data_size=min(plan.data_size, 8192),
                                seed=plan.seed + 101 + i,
                                max_duration=plan.max_duration)
        traces.append(cross.sender_trace if plan.vantage == "sender"
                      else cross.receiver_trace)
        labels.append(cross_impl)

    capture = interleave_traces(traces, labels)
    truth = capture.flows[0]
    truth_key = ConnectionKey.of(truth.client, truth.server)

    # Packet ids come from a process-global counter, and they encode
    # into the IP identification field — canonicalize them (preserving
    # duplicate identity: filter-duplicated records share an id) so
    # the capture's bytes are a pure function of the plan.
    ids: dict[int, int] = {}
    records = [replace(record,
                       packet_id=ids.setdefault(record.packet_id,
                                                len(ids) + 1))
               for record in capture.trace.records]

    addresses = AddressMap()
    frames = [Frame(record.timestamp, encode_record(record, addresses))
              for record in records]

    for name in plan.frame_manglers:
        rng = random.Random(f"frame-{plan.seed}-{name}")
        frames = FRAME_MANGLERS[name](frames, rng)
    for name in plan.file_manglers:
        rng = random.Random(f"file-{plan.seed}-{name}")
        frames = FILE_MANGLERS[name](frames, rng)
    return frames, addresses, truth_key, truth.implementation


def _fits_of(report) -> list[tuple[str, str]]:
    """(implementation, category) pairs from either identification."""
    if report.identification is not None:
        return [(f.implementation, f.category)
                for f in report.identification.fits]
    if report.receiver_identification is not None:
        return [(f.implementation, f.category)
                for f in report.receiver_identification]
    return []


def evaluate_capture(path: str | FilePath,
                     addresses: AddressMap,
                     truth_key: ConnectionKey,
                     truth_implementation: str) -> tuple[str, str]:
    """Push one written capture through the pipeline; judge it.

    Returns ``(outcome, detail)`` per the module-level oracle.
    """
    stats = IngestStats()
    try:
        reports = list(analyze_stream(path, identify=True, tolerant=True,
                                      stats=stats, addresses=addresses))
    except Exception as error:  # noqa: BLE001 - the gate itself
        trace_tail = traceback.format_exc(limit=3)
        return ("unclassified",
                f"{type(error).__name__}: {error} escaped the pipeline\n"
                f"{trace_tail}")

    matching = [r for r in reports if r.flow.key == truth_key]
    if not matching:
        accounted = (stats.decode_errors + stats.truncated_records
                     + stats.non_tcp_packets + stats.orphan_packets)
        if accounted > 0 or stats.packets_seen == 0:
            return ("consumed",
                    f"primary flow absent; ingest accounted "
                    f"{accounted} discarded packet(s)")
        return ("silently-lost",
                f"primary flow {truth_key} missing and ingest counters "
                f"account for nothing "
                f"({stats.packets_seen} packets seen)")

    # 4-tuple reuse can split the connection across several flows;
    # the one carrying the most records is the connection proper.
    flow_report = max(matching, key=lambda r: len(r.flow.records))
    if flow_report.error is not None:
        return (f"quarantined:{flow_report.error.kind}",
                flow_report.error.message)

    report = flow_report.report
    fits = _fits_of(report)
    close = [impl for impl, category in fits if category == "close"]
    truth_category = dict(fits).get(truth_implementation, "absent")

    if truth_implementation in close:
        return ("identified",
                f"close set of {len(close)} contains "
                f"{truth_implementation}")
    if not close:
        return ("no-close-fit",
                f"honest refusal; truth ranked {truth_category}")
    if truth_category == "imperfect":
        return ("near-miss",
                f"truth ranked imperfect; close set {close[:4]}")
    if not report.calibration.clean:
        return ("misidentified-flagged",
                f"truth ranked {truth_category} vs close {close[:4]}, "
                f"but calibration flagged the trace "
                f"({report.calibration.summary()})")
    return ("misidentified",
            f"calibration-clean trace: truth {truth_implementation} "
            f"ranked {truth_category} while {close[:4]} fit closely")


def run_scenario(plan: ScenarioPlan,
                 workdir: str | FilePath | None = None) -> FuzzOutcome:
    """Build and judge one scenario end to end."""
    frames, addresses, truth_key, truth_impl = build_capture(plan)
    outcome, detail = _judge_frames(frames, addresses, truth_key,
                                    truth_impl, workdir)
    return FuzzOutcome(plan=plan, outcome=outcome, detail=detail,
                       frames=frames, addresses=addresses,
                       truth_key=truth_key,
                       truth_implementation=truth_impl)


def _judge_frames(frames: list[Frame], addresses: AddressMap,
                  truth_key: ConnectionKey, truth_impl: str,
                  workdir: str | FilePath | None) -> tuple[str, str]:
    data = render_pcap(frames)
    if workdir is not None:
        path = FilePath(workdir) / "scenario.pcap"
        path.write_bytes(data)
        return evaluate_capture(path, addresses, truth_key, truth_impl)
    with tempfile.NamedTemporaryFile(suffix=".pcap") as handle:
        handle.write(data)
        handle.flush()
        return evaluate_capture(handle.name, addresses, truth_key,
                                truth_impl)


def minimize_outcome(outcome: FuzzOutcome,
                     max_probes: int = 200) -> list[Frame]:
    """Shrink a failing outcome's capture, preserving its signature.

    The signature is the outcome string plus (for unclassified
    escapes) the exception type's name, so minimization cannot drift
    from the bug being chased onto a different one.
    """
    signature = (outcome.outcome, outcome.detail.split(":", 1)[0]
                 if outcome.outcome == "unclassified" else "")

    def still_fails(candidate: list[Frame]) -> bool:
        result, detail = _judge_frames(candidate, outcome.addresses,
                                       outcome.truth_key,
                                       outcome.truth_implementation,
                                       workdir=None)
        got = (result, detail.split(":", 1)[0]
               if result == "unclassified" else "")
        return got == signature

    return minimize_frames(outcome.frames, still_fails,
                           max_probes=max_probes)


@dataclass
class SweepReport:
    """The verdict of one corpus-of-horrors sweep."""

    base_seed: int
    count: int
    outcomes: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzOutcome] = field(default_factory=list)
    reproducers: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "count": self.count,
            "passed": self.passed,
            "outcomes": dict(sorted(self.outcomes.items())),
            "failures": [f.to_dict() for f in self.failures],
            "reproducers": list(self.reproducers),
        }

    def summary(self) -> str:
        lines = [f"fuzz sweep: {self.count} scenarios from seed "
                 f"{self.base_seed} -> "
                 f"{'PASS' if self.passed else 'FAIL'}"]
        for outcome, tally in sorted(self.outcomes.items()):
            lines.append(f"  {outcome:24s} {tally:4d}")
        for failure in self.failures:
            lines.append(f"  FAIL seed={failure.plan.seed} "
                         f"{failure.outcome}: {failure.detail}")
            lines.append(f"       {failure.plan.describe()}")
        if self.reproducers:
            lines.append("  reproducers: " + ", ".join(self.reproducers))
        return "\n".join(lines)


def run_sweep(base_seed: int, count: int,
              reproducer_dir: str | FilePath | None = None,
              minimize: bool = True,
              progress=None) -> SweepReport:
    """Run *count* seeded scenarios; minimize and save every failure.

    *progress* (an optional callable taking each FuzzOutcome) lets the
    CLI stream per-scenario lines without this layer knowing about
    output formats.
    """
    report = SweepReport(base_seed=base_seed, count=count)
    for plan in iter_plans(base_seed, count):
        outcome = run_scenario(plan)
        report.outcomes[outcome.outcome] = \
            report.outcomes.get(outcome.outcome, 0) + 1
        if progress is not None:
            progress(outcome)
        if outcome.ok:
            continue
        report.failures.append(outcome)
        if reproducer_dir is None:
            continue
        directory = FilePath(reproducer_dir)
        directory.mkdir(parents=True, exist_ok=True)
        frames = outcome.frames
        if minimize:
            try:
                frames = minimize_outcome(outcome)
            except ValueError:
                # Flaky against re-analysis (should not happen: the
                # pipeline is deterministic) — keep the full capture.
                frames = outcome.frames
        stem = f"repro-seed{plan.seed}"
        pcap_path = directory / f"{stem}.pcap"
        pcap_path.write_bytes(render_pcap(frames))
        meta = outcome.to_dict()
        meta["minimized_frames"] = len(frames)
        meta["original_frames"] = len(outcome.frames)
        (directory / f"{stem}.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n")
        report.reproducers.append(str(pcap_path))
    return report
