"""The adversarial ingredient vocabulary.

Three mangling layers, matching where real damage happens:

**Record manglers** (``Trace -> Trace``) model path and middlebox
behavior *before* the capture point: ack thinning on asymmetric
return channels, almost-sorted reordering (the reordering-heavy paths
of arXiv 0810.1639), middlebox window rewriting and MSS-option
stripping (the mangling modes cataloged by arXiv 2002.05400), RST
aborts, measurement duplicates, and sequence-space wraparound
(rebasing both ISNs so the transfer crosses 2**32 mid-flight).

**Frame manglers** (``list[Frame] -> list[Frame]``) do byte surgery
on encoded packets — the damage a capture path inflicts after the
packet left the stack: link-layer trailer padding, snaplen
truncation, checksum damage, truncated/zero-length TCP options,
garbage and non-TCP cross-traffic frames, clock steps.

**File manglers** operate on the final frame list to model container
damage: a capture torn mid-record by a dying filter.

Every mangler takes an explicit ``random.Random`` so a scenario's
composition is a pure function of its seed.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, replace

from repro.packets import ACK, RST
from repro.trace.record import Trace, TraceRecord
from repro.units import SEQ_SPACE, seq_add

#: pcap constants, duplicated knowingly: the fuzzer must be able to
#: write containers the production writer would refuse.
_PCAP_MAGIC = 0xA1B2C3D4
_LINKTYPE_RAW = 101


@dataclass
class Frame:
    """One on-the-wire packet inside a capture being mangled.

    ``orig_len`` > len(data) records an honest snaplen truncation;
    ``declared_len`` > len(data) *lies* to the reader about how many
    bytes follow — the torn-capture case, valid only as damage.
    """

    timestamp: float
    data: bytes
    orig_len: int | None = None
    declared_len: int | None = None


def render_pcap(frames: list[Frame]) -> bytes:
    """Render frames as classic big-endian pcap bytes, lies included."""
    out = [struct.pack(">IHHiIII", _PCAP_MAGIC, 2, 4, 0, 0, 65535,
                       _LINKTYPE_RAW)]
    for frame in frames:
        declared = frame.declared_len if frame.declared_len is not None \
            else len(frame.data)
        orig = frame.orig_len if frame.orig_len is not None \
            else max(declared, len(frame.data))
        seconds = int(frame.timestamp)
        micros = int(round((frame.timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        out.append(struct.pack(">IIII", seconds, micros, declared, orig))
        out.append(frame.data)
    return b"".join(out)


def _tcp_bounds(data: bytes) -> tuple[int, int] | None:
    """(ip header length, tcp header length) if parseable IPv4/TCP."""
    if len(data) < 20 or data[0] >> 4 != 4:
        return None
    ihl = (data[0] & 0x0F) * 4
    if data[9] != 6 or len(data) < ihl + 20:
        return None
    header_len = (data[ihl + 12] >> 4) * 4
    return ihl, header_len


# ---------------------------------------------------------------------------
# Record manglers: path and middlebox behavior ahead of the filter.
# ---------------------------------------------------------------------------

def _rebuild(trace: Trace, records: list[TraceRecord]) -> Trace:
    return Trace(records=records, vantage=trace.vantage,
                 filter_name=trace.filter_name,
                 reported_drops=trace.reported_drops)


def thin_acks(trace: Trace, rng: random.Random,
              drop_fraction: float = 0.3) -> Trace:
    """Drop a fraction of pure acks — the thinned return path an
    asymmetric channel (or an ack-decimating middlebox) produces."""
    kept = [r for r in trace.records
            if not (r.is_pure_ack and not r.is_rst
                    and rng.random() < drop_fraction)]
    return _rebuild(trace, kept)


def reorder_records(trace: Trace, rng: random.Random,
                    swap_fraction: float = 0.15) -> Trace:
    """Almost-sorted reordering: swap the timestamps of adjacent
    record pairs, so recording order no longer matches wire order."""
    records = list(trace.records)
    i = 0
    while i < len(records) - 1:
        if rng.random() < swap_fraction:
            a, b = records[i], records[i + 1]
            records[i] = replace(a, timestamp=b.timestamp)
            records[i + 1] = replace(b, timestamp=a.timestamp)
            i += 2
        else:
            i += 1
    return _rebuild(trace, records)


def rewrite_windows(trace: Trace, rng: random.Random,
                    cap: int = 4096) -> Trace:
    """Middlebox window rewriting: clamp the advertised window on the
    ack (reverse-of-primary) direction, as rate-limiting boxes do."""
    reverse = trace.primary_flow().reversed()
    records = [replace(r, window=min(r.window, cap))
               if r.flow == reverse else r
               for r in trace.records]
    return _rebuild(trace, records)


def strip_mss(trace: Trace, rng: random.Random) -> Trace:
    """MSS-option stripping: the middlebox removed TCP options."""
    records = [replace(r, mss_option=None) if r.mss_option is not None
               else r for r in trace.records]
    return _rebuild(trace, records)


def rst_abort(trace: Trace, rng: random.Random,
              keep_fraction: float = 0.7,
              stale_data: bool = False) -> Trace:
    """Cut the connection short with a RST+ACK from the receiver side.

    With *stale_data*, one in-flight data packet straggles in after
    the RST — the data-after-close arrival the flow table must keep
    attached without resurrecting the connection.
    """
    records = list(trace.records)
    if len(records) < 4:
        return trace
    cut = max(3, int(len(records) * keep_fraction))
    kept = records[:cut]
    flow = trace.primary_flow()
    last = kept[-1]
    data = [r for r in kept if r.flow == flow and r.payload > 0]
    reset = TraceRecord(
        timestamp=last.timestamp + 0.005,
        src=flow.dst, dst=flow.src,
        seq=last.ack if last.flow == flow.reversed() else 0,
        ack=(data[-1].seq_end if data else last.seq_end),
        flags=RST | ACK, payload=0, window=0)
    kept.append(reset)
    if stale_data and data:
        straggler = replace(data[-1],
                            timestamp=reset.timestamp + 0.050)
        kept.append(straggler)
    return _rebuild(trace, kept)


def fin_rst_close(trace: Trace, rng: random.Random) -> Trace:
    """Fold RST into the last FIN — a FIN+RST in one segment, as
    abortive-close middleboxes emit."""
    records = list(trace.records)
    for i in range(len(records) - 1, -1, -1):
        if records[i].is_fin:
            records[i] = replace(records[i],
                                 flags=records[i].flags | RST)
            break
    return _rebuild(trace, records)


def duplicate_records(trace: Trace, rng: random.Random,
                      duplicate_fraction: float = 0.1) -> Trace:
    """IRIX-style measurement duplicates: records copied back-to-back."""
    records: list[TraceRecord] = []
    for record in trace.records:
        records.append(record)
        if rng.random() < duplicate_fraction:
            records.append(replace(record,
                                   timestamp=record.timestamp + 1e-5))
    return _rebuild(trace, records)


def wrap_sequences(trace: Trace, rng: random.Random) -> Trace:
    """Rebase both directions' ISNs so the primary (data) direction's
    sequence space wraps past 2**32 mid-transfer.

    A wrap is perfectly legal TCP — the ISN is 32-bit random, so one
    transfer in ~2**32/size crosses zero — but it is poison to any
    analysis that compares raw sequence numbers instead of using
    modular arithmetic (``seq_diff``/``seq_lt``).  The shift lands the
    wrap *inside* a mid-transfer data segment (its payload straddles
    zero), and the reverse direction gets an independent random ISN so
    ack numbers exercise the same arithmetic.
    """
    flow = trace.primary_flow()
    reverse = flow.reversed()
    forward = [r for r in trace.records if r.flow == flow]
    if not forward:
        return trace
    # The record the wrap lands in: middle half of the transfer, so
    # both sides of the wrap hold enough packets to analyze.
    lo = len(forward) // 4
    target = forward[rng.randint(lo, max(lo, (3 * len(forward)) // 4))]
    inside = rng.randint(0, max(target.payload - 1, 0))
    delta_fwd = (SEQ_SPACE - target.seq - inside) % SEQ_SPACE
    delta_rev = rng.randrange(SEQ_SPACE)
    records = []
    for record in trace.records:
        if record.flow == flow:
            record = replace(
                record, seq=seq_add(record.seq, delta_fwd),
                ack=seq_add(record.ack, delta_rev)
                if record.has_ack else record.ack)
        elif record.flow == reverse:
            record = replace(
                record, seq=seq_add(record.seq, delta_rev),
                ack=seq_add(record.ack, delta_fwd)
                if record.has_ack else record.ack)
        records.append(record)
    return _rebuild(trace, records)


RECORD_MANGLERS = {
    "thin-acks": thin_acks,
    "reorder": reorder_records,
    "rewrite-windows": rewrite_windows,
    "strip-mss": strip_mss,
    "rst-abort": rst_abort,
    "fin-rst": fin_rst_close,
    "duplicates": duplicate_records,
    "seq-wraparound": wrap_sequences,
}


# ---------------------------------------------------------------------------
# Frame manglers: byte surgery on encoded packets.
# ---------------------------------------------------------------------------

def pad_frames(frames: list[Frame], rng: random.Random,
               pad_fraction: float = 0.5, max_pad: int = 22) -> list[Frame]:
    """Append link-layer trailer padding (Ethernet's 60-byte minimum
    is the classic source) past the IP datagram's total length."""
    out = []
    for frame in frames:
        if frame.declared_len is None and rng.random() < pad_fraction:
            pad = rng.randint(1, max_pad)
            out.append(replace(frame, data=frame.data + b"\x00" * pad,
                               orig_len=None))
        else:
            out.append(frame)
    return out


def truncate_frames(frames: list[Frame], rng: random.Random,
                    truncate_fraction: float = 0.05,
                    min_keep: int = 28) -> list[Frame]:
    """Honest snaplen-style truncation of a fraction of frames."""
    out = []
    for frame in frames:
        if frame.declared_len is None and len(frame.data) > min_keep \
                and rng.random() < truncate_fraction:
            keep = rng.randint(min_keep, len(frame.data) - 1)
            out.append(Frame(frame.timestamp, frame.data[:keep],
                             orig_len=len(frame.data)))
        else:
            out.append(frame)
    return out


def damage_checksums(frames: list[Frame], rng: random.Random,
                     damage_fraction: float = 0.03) -> list[Frame]:
    """Flip one payload byte after checksumming — line damage the
    checksum verifier must catch (and only genuine damage: never the
    padding or the headers)."""
    out = []
    for frame in frames:
        bounds = _tcp_bounds(frame.data)
        if bounds is not None and frame.declared_len is None \
                and rng.random() < damage_fraction:
            ihl, header_len = bounds
            body = ihl + header_len
            if len(frame.data) > body:
                at = rng.randrange(body, len(frame.data))
                data = bytearray(frame.data)
                data[at] ^= 0xFF
                out.append(replace(frame, data=bytes(data)))
                continue
        out.append(frame)
    return out


def truncate_mss_frames(frames: list[Frame], rng: random.Random,
                        mangle_fraction: float = 0.6) -> list[Frame]:
    """Truncate the MSS option mid-body: the option area declares an
    MSS (kind 2, length 4) whose body overruns the TCP header — the
    exact wire shape that used to escape as a bare ``struct.error``."""
    out = []
    for frame in frames:
        bounds = _tcp_bounds(frame.data)
        if bounds is not None:
            ihl, header_len = bounds
            if header_len >= 24 and len(frame.data) >= ihl + 24 \
                    and rng.random() < mangle_fraction:
                data = bytearray(frame.data)
                data[ihl + 20:ihl + 24] = b"\x01\x01\x02\x04"
                out.append(replace(frame, data=bytes(data)))
                continue
        out.append(frame)
    return out


def zero_length_options(frames: list[Frame], rng: random.Random,
                        mangle_fraction: float = 0.6) -> list[Frame]:
    """Write a zero-length TCP option — the walk-stalling pathology."""
    out = []
    for frame in frames:
        bounds = _tcp_bounds(frame.data)
        if bounds is not None:
            ihl, header_len = bounds
            if header_len >= 24 and len(frame.data) >= ihl + 24 \
                    and rng.random() < mangle_fraction:
                data = bytearray(frame.data)
                data[ihl + 20:ihl + 22] = b"\x08\x00"
                out.append(replace(frame, data=bytes(data)))
                continue
        out.append(frame)
    return out


def inject_garbage(frames: list[Frame], rng: random.Random,
                   count: int = 2, max_size: int = 96) -> list[Frame]:
    """Insert frames of raw noise — not IP, not anything."""
    out = list(frames)
    for _ in range(count):
        size = rng.randint(1, max_size)
        blob = bytes(rng.randrange(256) for _ in range(size))
        at = rng.randrange(len(out) + 1) if out else 0
        timestamp = out[min(at, len(out) - 1)].timestamp if out else 0.0
        out.insert(at, Frame(timestamp, blob))
    return out


def inject_udp(frames: list[Frame], rng: random.Random,
               count: int = 3) -> list[Frame]:
    """Insert well-formed IPv4/UDP cross-traffic frames."""
    out = list(frames)
    for _ in range(count):
        payload = rng.randint(8, 64)
        udp = struct.pack("!HHHH", rng.randint(1024, 65535), 53,
                          8 + payload, 0) + b"\x00" * payload
        total = 20 + len(udp)
        header = struct.pack("!BBHHHBBH4s4s", 0x45, 0, total,
                             rng.randint(0, 0xFFFF), 0, 64, 17, 0,
                             bytes([10, 9, 0, 1]), bytes([10, 9, 0, 2]))
        at = rng.randrange(len(out) + 1) if out else 0
        timestamp = out[min(at, len(out) - 1)].timestamp if out else 0.0
        out.insert(at, Frame(timestamp, header + udp))
    return out


def time_travel(frames: list[Frame], rng: random.Random,
                magnitude: float = 0.5) -> list[Frame]:
    """Step one frame's clock backwards — the filter clock defect the
    calibration battery must flag."""
    if len(frames) < 3:
        return frames
    out = list(frames)
    at = rng.randrange(1, len(out))
    victim = out[at]
    out[at] = replace(victim,
                      timestamp=max(0.0, victim.timestamp - magnitude))
    return out


FRAME_MANGLERS = {
    "pad": pad_frames,
    "truncate": truncate_frames,
    "damage-checksum": damage_checksums,
    "truncate-mss": truncate_mss_frames,
    "zero-length-option": zero_length_options,
    "garbage": inject_garbage,
    "udp-cross-traffic": inject_udp,
    "time-travel": time_travel,
}


# ---------------------------------------------------------------------------
# File manglers: container damage.
# ---------------------------------------------------------------------------

def tear_tail(frames: list[Frame], rng: random.Random,
              max_cut: int = 24) -> list[Frame]:
    """Tear the capture mid-record: the final frame's header promises
    more bytes than the file holds (a filter that died writing)."""
    if not frames:
        return frames
    out = list(frames)
    last = out[-1]
    if len(last.data) < 2:
        return out
    cut = rng.randint(1, min(max_cut, len(last.data) - 1))
    out[-1] = Frame(last.timestamp, last.data[:len(last.data) - cut],
                    orig_len=last.orig_len
                    if last.orig_len is not None else len(last.data),
                    declared_len=len(last.data))
    return out


FILE_MANGLERS = {
    "tear-tail": tear_tail,
}


# Convenience used by tests and regression traces: make the exact
# wire bytes of the satellite bugs reproducible without a full plan.
def truncated_mss_packet(base_packet: bytes) -> bytes:
    """A copy of *base_packet* whose MSS option overruns the header."""
    mangled = truncate_mss_frames([Frame(0.0, base_packet)],
                                  random.Random(0), 1.0)
    return mangled[0].data


def padded_packet(base_packet: bytes, pad: int = 6) -> bytes:
    """A copy of *base_packet* with link-layer trailer padding."""
    return base_packet + b"\x00" * pad
