"""Packet and segment representations shared by the simulator and analyzer.

A :class:`Segment` is the in-simulator object: a TCP segment plus just
enough IP-level identity (addresses) to route and demultiplex it.  The
packet-filter machinery copies segments into trace records
(:mod:`repro.trace.record`); the analyzer never sees live segments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.units import seq_add

#: TCP flag bits, matching the on-the-wire encoding.
FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [(SYN, "S"), (FIN, "F"), (RST, "R"), (PSH, "P"), (URG, "U")]

_packet_ids = itertools.count(1)


def flags_to_string(flags: int) -> str:
    """Render TCP flags tcpdump-style (``S``, ``.``, ``P.``, ...)."""
    out = "".join(ch for bit, ch in _FLAG_NAMES if flags & bit)
    if flags & ACK:
        out += "."
    return out or "-"


@dataclass(frozen=True)
class Endpoint:
    """One side of a TCP connection: an (address, port) pair."""

    addr: str
    port: int

    def __str__(self) -> str:
        return f"{self.addr}.{self.port}"


@dataclass(frozen=True)
class FlowKey:
    """A directed connection identifier (source endpoint -> destination)."""

    src: Endpoint
    dst: Endpoint

    def reversed(self) -> "FlowKey":
        """The key of the opposite direction of the same connection."""
        return FlowKey(self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.src} > {self.dst}"


@dataclass
class Segment:
    """A TCP segment in flight inside the simulator.

    ``seq`` is the sequence number of the first payload byte (or of the
    SYN/FIN when those flags are set); ``payload`` is the number of data
    bytes carried.  We track byte counts, not byte contents — the payload
    itself is irrelevant to trace analysis, except for checksum modelling,
    which :attr:`corrupted` stands in for.
    """

    src: Endpoint
    dst: Endpoint
    seq: int
    ack: int
    flags: int
    payload: int = 0
    window: int = 65535
    mss_option: int | None = None
    #: Set when the segment was damaged in flight; receivers discard it.
    corrupted: bool = False
    #: Unique per transmitted packet; retransmissions get fresh ids.
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def flow(self) -> FlowKey:
        return FlowKey(self.src, self.dst)

    @property
    def seq_end(self) -> int:
        """Sequence number just past this segment's payload (and SYN/FIN)."""
        length = self.payload
        if self.flags & SYN:
            length += 1
        if self.flags & FIN:
            length += 1
        return seq_add(self.seq, length)

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & ACK)

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire: payload + 40 bytes of IP/TCP header.

        The MSS option, when present, adds 4 bytes, as on a real wire.
        """
        return self.payload + 40 + (4 if self.mss_option is not None else 0)

    def copy(self) -> "Segment":
        """A fresh copy with a new packet id (a distinct wire packet)."""
        return replace(self, packet_id=next(_packet_ids))

    def __str__(self) -> str:
        parts = [f"{self.flow} {flags_to_string(self.flags)}"]
        parts.append(f"{self.seq}:{self.seq_end}({self.payload})")
        if self.has_ack:
            parts.append(f"ack {self.ack}")
        parts.append(f"win {self.window}")
        if self.mss_option is not None:
            parts.append(f"<mss {self.mss_option}>")
        return " ".join(parts)


@dataclass
class SourceQuench:
    """An ICMP source quench aimed at a host, referencing a flow.

    Quenches are delivered to the transport endpoint but — matching the
    paper's measurement setup, where the packet filter pattern selected
    TCP packets only — are never recorded in traces.
    """

    target: Endpoint
    flow: FlowKey
