"""Injectable packet-filter measurement errors (§3.1).

Three injector classes cover the paper's error taxonomy beyond clock
defects (which live in :mod:`repro.capture.clock`):

* :class:`DropInjector` — the filter fails to record some packets,
  typically under load (user-level filtering losing the race).  The
  filter's *report* of its drops is independently configurable, since
  the paper found reports missing, stale, or simply false.
* :class:`DuplicationInjector` — the IRIX 5.2/5.3 defect (§3.1.2,
  Figure 1): outbound packets are copied to the filter twice, once
  when the OS sources them (early, bogus timing at the OS's data rate)
  and once when they actually depart onto the Ethernet (accurate,
  rate-limited timing).
* :class:`ResequencingInjector` — the Solaris defect (§3.1.3):
  inbound and outbound packets reach the filter by different code
  paths with different latencies and are timestamped only when the
  filter processes them, so trace order and timestamps no longer
  reflect wire order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.packets import Segment


class DropInjector:
    """Randomly omit records, as an overloaded filter would.

    ``report_style`` controls what the filter later claims:

    * ``"accurate"`` — reports the true count;
    * ``"none"`` — the OS offers no drop report (None);
    * ``"zero"`` — reports 0 despite drops (NetBSD 1.0 / Solaris);
    * ``"stale"`` — reports a fixed stale count regardless of reality
      (the IRIX site reporting exactly 62 drops for 256 traces).
    """

    def __init__(self, rate: float = 0.0, seed: int = 0,
                 report_style: str = "accurate", stale_count: int = 62):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("drop rate must be in [0, 1]")
        if report_style not in ("accurate", "none", "zero", "stale"):
            raise ValueError(f"unknown report style {report_style!r}")
        self.rate = rate
        self.report_style = report_style
        self.stale_count = stale_count
        self._rng = random.Random(seed)
        self.true_drops = 0

    def should_drop(self, segment: Segment, outbound: bool) -> bool:
        if self.rate and self._rng.random() < self.rate:
            self.true_drops += 1
            return True
        return False

    def reported_drops(self) -> int | None:
        if self.report_style == "accurate":
            return self.true_drops
        if self.report_style == "none":
            return None
        if self.report_style == "zero":
            return 0
        return self.stale_count


@dataclass
class DuplicationInjector:
    """IRIX-style double copies of outbound packets (§3.1.2).

    The first copy is stamped at OS-sourcing time — packets pour out
    back-to-back at ``os_rate`` (the >2.5 MB/s slope of Figure 1).
    The second copy is stamped at Ethernet departure: serialized at
    ``wire_rate`` (the ~1 MB/s slope).  The injector keeps its own
    serialization horizon for each slope.
    """

    os_rate: float = 2.6e6
    wire_rate: float = 1.0e6

    def __post_init__(self) -> None:
        self._os_free = 0.0
        self._wire_free = 0.0

    def timestamps(self, segment: Segment, true_time: float) -> list[float]:
        """Both capture times for an outbound packet."""
        size = segment.wire_size
        os_start = max(true_time, self._os_free)
        self._os_free = os_start + size / self.os_rate
        wire_start = max(os_start, self._wire_free)
        self._wire_free = wire_start + size / self.wire_rate
        return [self._os_free, self._wire_free]


@dataclass
class ResequencingInjector:
    """Solaris-style per-direction filter-path latencies (§3.1.3).

    Packets are timestamped when the filter *processes* them:
    outbound packets ride a fast path (``outbound_lag``), inbound a
    slow one (``inbound_lag``), and each path preserves its own order
    but the merge is by processing time.  With a slow inbound path, an
    ack that arrived (wire) just before a data packet departed gets
    recorded *after* it — inverting apparent cause and effect.

    ``jitter`` adds uniform noise to each lag, so inversions happen
    "frequently" rather than always, matching the ~20 % of Solaris
    self-traces the paper found plagued.
    """

    outbound_lag: float = 0.0001
    inbound_lag: float = 0.0025
    jitter: float = 0.0015
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._out_free = 0.0
        self._in_free = 0.0

    def process_time(self, true_time: float, outbound: bool) -> float:
        """When the filter processes (and stamps) this packet."""
        lag = self.outbound_lag if outbound else self.inbound_lag
        lag += self._rng.random() * self.jitter
        if outbound:
            t = max(true_time + lag, self._out_free)
            self._out_free = t
        else:
            t = max(true_time + lag, self._in_free)
            self._in_free = t
        return t
