"""The packet filter: observes packets at a vantage point, builds a trace.

A :class:`PacketFilter` is attached to taps — at a host (seeing that
endpoint's inbound and outbound packets, the paper's usual setup) or
on a link (a passive monitor).  Each observation runs the error
pipeline: drop injection, timestamping through a clock model (with
optional resequencing lag), and optional IRIX-style duplication.

The finished :class:`~repro.trace.record.Trace` is ordered the way the
filter *recorded* packets — which, under resequencing, is not wire
order.
"""

from __future__ import annotations

from repro.capture.clock import ClockModel, PerfectClock
from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)
from repro.netsim.network import Path
from repro.packets import Segment
from repro.trace.record import Trace, record_from_segment


class PacketFilter:
    """Records packets into a trace, with configurable defects."""

    def __init__(self, name: str = "filter", vantage: str = "",
                 clock: ClockModel | None = None,
                 drops: DropInjector | None = None,
                 resequencing: ResequencingInjector | None = None,
                 duplication: DuplicationInjector | None = None):
        self.name = name
        self.vantage = vantage
        self.clock = clock or PerfectClock()
        self.drops = drops
        self.resequencing = resequencing
        self.duplication = duplication
        #: (ordering key, record) pairs; the key is the time the filter
        #: processed the packet, which under resequencing differs from
        #: wire time.
        self._entries: list[tuple[float, int, object]] = []
        self._counter = 0

    # -- tap callbacks ---------------------------------------------------

    def observe_outbound(self, segment: Segment, true_time: float) -> None:
        self._observe(segment, true_time, outbound=True)

    def observe_inbound(self, segment: Segment, true_time: float) -> None:
        self._observe(segment, true_time, outbound=False)

    def _observe(self, segment: Segment, true_time: float,
                 outbound: bool) -> None:
        if self.drops is not None and self.drops.should_drop(segment,
                                                             outbound):
            return
        if outbound and self.duplication is not None:
            for stamp_time in self.duplication.timestamps(segment, true_time):
                self._record(segment, stamp_time, stamp_time)
            return
        if self.resequencing is not None:
            stamp_time = self.resequencing.process_time(true_time, outbound)
        else:
            stamp_time = true_time
        self._record(segment, stamp_time, stamp_time)

    def _record(self, segment: Segment, stamp_time: float,
                order_key: float) -> None:
        record = record_from_segment(segment, self.clock.read(stamp_time))
        self._entries.append((order_key, self._counter, record))
        self._counter += 1

    # -- trace production --------------------------------------------------

    def trace(self) -> Trace:
        """The completed trace, in filter-recording order."""
        ordered = sorted(self._entries, key=lambda e: (e[0], e[1]))
        reported = (self.drops.reported_drops() if self.drops is not None
                    else 0)
        return Trace(records=[record for _, _, record in ordered],
                     vantage=self.vantage, filter_name=self.name,
                     reported_drops=reported)


def attach_at_host(host, packet_filter: PacketFilter) -> PacketFilter:
    """Run *packet_filter* on *host*, seeing its traffic both ways."""
    host.send_taps.append(packet_filter.observe_outbound)
    host.recv_taps.append(packet_filter.observe_inbound)
    return packet_filter


def attach_filter_pair(path: Path,
                       sender_filter: PacketFilter | None = None,
                       receiver_filter: PacketFilter | None = None,
                       ) -> tuple[PacketFilter, PacketFilter]:
    """Attach filters at both endpoints of a path (the paper's paired
    measurement setup, needed for clock calibration)."""
    sender_filter = sender_filter or PacketFilter(vantage="sender")
    receiver_filter = receiver_filter or PacketFilter(vantage="receiver")
    sender_filter.vantage = sender_filter.vantage or "sender"
    receiver_filter.vantage = receiver_filter.vantage or "receiver"
    attach_at_host(path.sender, sender_filter)
    attach_at_host(path.receiver, receiver_filter)
    return sender_filter, receiver_filter
