"""Clock models for packet-filter timestamps (§3.1.4).

A :class:`ClockModel` maps true (simulated wire) time to the timestamp
a filter writes.  Real tracing machines exhibited relative skew (one
endpoint's clock runs fast), and step adjustments — including the
backward steps that produce "time travel", observed more than 500
times in the paper's traces, all on BSDI 1.1 / NetBSD 1.0 machines
whose fast-running clocks were periodically yanked back into sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockModel:
    """Interface: translate true time to a recorded timestamp."""

    def read(self, true_time: float) -> float:
        raise NotImplementedError


class PerfectClock(ClockModel):
    """Timestamps equal true wire time."""

    def read(self, true_time: float) -> float:
        return true_time


@dataclass
class SkewedClock(ClockModel):
    """A clock running at a slightly wrong rate: ``offset + rate*t``.

    ``rate`` of 1.0001 means the clock gains 100 ppm — enough, over a
    long transfer, for paired-trace analysis to detect relative skew.
    """

    rate: float = 1.0
    offset: float = 0.0

    def read(self, true_time: float) -> float:
        return self.offset + self.rate * true_time


@dataclass
class QuantizedClock(ClockModel):
    """A clock read at finite resolution.

    Mid-1990s Unix kernels timestamped packets from a clock advanced
    by the scheduling interrupt — 10 ms ticks were common, some
    systems managed ~1 ms, and only the better packet filters
    interpolated microseconds.  Quantization hides sub-tick response
    delays and produces heavy timestamp ties, both of which the
    analyzer must tolerate.

    Wraps any inner clock model; ``resolution`` is the tick in
    seconds.
    """

    inner: ClockModel = field(default_factory=PerfectClock)
    resolution: float = 0.010

    def read(self, true_time: float) -> float:
        value = self.inner.read(true_time)
        if self.resolution <= 0:
            return value
        return int(value / self.resolution) * self.resolution


@dataclass
class SteppingClock(ClockModel):
    """A (possibly skewed) clock subject to step adjustments.

    ``steps`` is a list of ``(true_time, delta)``: at each given true
    time the clock jumps by ``delta`` seconds (negative = the backward
    step that causes time travel).  This models periodic hard
    synchronization of a drifting clock to an external source.
    """

    rate: float = 1.0
    offset: float = 0.0
    steps: list[tuple[float, float]] = field(default_factory=list)

    def read(self, true_time: float) -> float:
        adjustment = sum(delta for at, delta in self.steps
                         if true_time >= at)
        return self.offset + self.rate * true_time + adjustment
