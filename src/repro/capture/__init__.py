"""The measurement apparatus: packet filters, clocks, and their errors.

The paper's §3 is about *calibrating* packet-filter measurement; this
package provides filters whose defects are injectable and therefore
ground-truth-known, so the analyzer's calibration checks
(:mod:`repro.core.calibrate`) can be validated exactly.
"""

from repro.capture.clock import (
    ClockModel,
    PerfectClock,
    QuantizedClock,
    SkewedClock,
    SteppingClock,
)
from repro.capture.filter import PacketFilter, attach_filter_pair, attach_at_host
from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)

__all__ = [
    "ClockModel",
    "PerfectClock",
    "QuantizedClock",
    "SkewedClock",
    "SteppingClock",
    "PacketFilter",
    "attach_filter_pair",
    "attach_at_host",
    "DropInjector",
    "DuplicationInjector",
    "ResequencingInjector",
]
