"""tcpanaly-repro: automated packet trace analysis of TCP implementations.

A from-scratch reproduction of Vern Paxson's tcpanaly (SIGCOMM 1997)
and every substrate it needs: a discrete-event network simulator
(:mod:`repro.netsim`), behavior-faithful models of the studied TCP
implementations (:mod:`repro.tcp`), packet filters with the paper's
measurement-error taxonomy (:mod:`repro.capture`), trace formats
including real pcap (:mod:`repro.trace`), the analyzer itself
(:mod:`repro.core`), statistics and plots (:mod:`repro.analysis`),
and experiment harnesses (:mod:`repro.harness`).

Quick tour::

    from repro.harness import traced_transfer
    from repro.tcp import get_behavior
    from repro.core import analyze_sender, identify_implementation

    transfer = traced_transfer(get_behavior("linux-1.0"), "wan-lossy")
    print(analyze_sender(transfer.sender_trace,
                         get_behavior("linux-1.0")).summary())
    print(identify_implementation(transfer.sender_trace).best.implementation)

See README.md for the architecture, DESIGN.md for the system inventory
and experiment index, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
