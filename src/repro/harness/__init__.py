"""Experiment infrastructure: scenarios and trace-corpus generation."""

from repro.harness.scenarios import (
    SCENARIOS,
    Scenario,
    traced_transfer,
    TracedTransfer,
)
from repro.harness.corpus import generate_corpus, CorpusEntry
from repro.harness.faults import (
    FAULT_KINDS,
    RESOURCE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    ResourceFaultPlan,
    ResourceFaultSpec,
    decode_storm_bytes,
)
from repro.harness.probing import Arrival, drive_receiver, probe_hole_fill

__all__ = [
    "SCENARIOS",
    "Scenario",
    "traced_transfer",
    "TracedTransfer",
    "generate_corpus",
    "CorpusEntry",
    "Arrival",
    "drive_receiver",
    "probe_hole_fill",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "RESOURCE_FAULT_KINDS",
    "ResourceFaultPlan",
    "ResourceFaultSpec",
    "decode_storm_bytes",
]
