"""Deterministic fault injection for the batch pipeline.

The resilience layer's claims ("a crashed worker is requeued", "a hung
trace is killed and quarantined") are only testable if crashes and
hangs can be produced on demand, in the worker that owns the item, at
an exact point in the run.  A :class:`FaultPlan` is a picklable recipe
the pipeline threads into its workers: before an item is analyzed, the
plan is consulted and — if a spec matches the item's name (or its
dispatch index) and the current attempt number — the configured fault
fires.

Fault kinds:

``raise``
    Raise a named exception inside the analysis path — exercises the
    error-classification taxonomy (``KeyError`` → ``model``,
    ``OSError`` → ``io``, ...).
``hang``
    Sleep for ``hang_seconds`` before analyzing — drives the item past
    any per-trace timeout so the supervisor must kill the worker.
``kill``
    ``os._exit`` the worker process mid-item, bypassing all exception
    handling — the supervisor must notice the corpse, requeue the
    item, and quarantine it once the retry budget is spent.
``corrupt``
    Analyze a byte-corrupted *copy* of the item's capture file (the
    original is never touched) — a deterministic stand-in for the
    damaged traces a real packet-filter corpus is riddled with.

Every spec can be limited to specific attempt numbers via
``on_attempts``, so a test can, e.g., kill the first attempt and let
the retry succeed.
"""

from __future__ import annotations

import os
import struct
import tempfile
import time
from dataclasses import dataclass, replace

FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: Exceptions a ``raise`` fault may name.  A fixed whitelist keeps the
#: plan picklable and the injection auditable.
RAISEABLE: dict[str, type[BaseException]] = {
    "RuntimeError": RuntimeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RecursionError": RecursionError,
    "MemoryError": MemoryError,
    "ZeroDivisionError": ZeroDivisionError,
    "OSError": OSError,
    "ValueError": ValueError,
    "struct.error": struct.error,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where it fires and what it does."""

    match: str | int            # item name, or dispatch index
    kind: str                   # one of FAULT_KINDS
    exception: str = "RuntimeError"   # for kind="raise" (see RAISEABLE)
    message: str = "injected fault"
    hang_seconds: float = 3600.0      # for kind="hang"
    exit_code: int = 9                # for kind="kill"
    corrupt_offset: int = 0           # for kind="corrupt"
    corrupt_bytes: bytes = b"\xde\xad\xbe\xef"
    on_attempts: tuple[int, ...] | None = None  # None: every attempt

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.kind == "raise" and self.exception not in RAISEABLE:
            raise ValueError(f"unraiseable exception: {self.exception!r} "
                             f"(choose from {sorted(RAISEABLE)})")

    def fires(self, name: str, index: int, attempt: int) -> bool:
        if self.match != name and self.match != index:
            return False
        return self.on_attempts is None or attempt in self.on_attempts


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of fault specs, applied inside pipeline workers."""

    specs: tuple[FaultSpec, ...] = ()

    def apply(self, item, index: int, attempt: int):
        """Fire every matching fault; return the (possibly substituted)
        item the worker should analyze.

        ``raise``/``hang``/``kill`` act immediately; ``corrupt``
        swaps the item for one pointing at a corrupted temp copy of
        its capture file.
        """
        for spec in self.specs:
            if not spec.fires(item.name, index, attempt):
                continue
            if spec.kind == "raise":
                raise RAISEABLE[spec.exception](spec.message)
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
            elif spec.kind == "kill":
                os._exit(spec.exit_code)
            elif spec.kind == "corrupt":
                item = replace(item, path=_corrupted_copy(
                    item.path, spec.corrupt_offset, spec.corrupt_bytes))
        return item


def _corrupted_copy(path, offset: int, garbage: bytes):
    """Write a corrupted copy of *path* to a temp file, return its path.

    The corruption is deterministic (fixed offset, fixed bytes), so a
    corrupted item fails identically on every attempt and every run.
    """
    from pathlib import Path
    data = bytearray(Path(path).read_bytes())
    end = min(len(data), offset + len(garbage))
    data[offset:end] = garbage[:max(0, end - offset)]
    if not data:
        data = bytearray(garbage)
    handle, copy_path = tempfile.mkstemp(prefix="tcpanaly-fault-",
                                         suffix=".pcap")
    with os.fdopen(handle, "wb") as copy:
        copy.write(bytes(data))
    return Path(copy_path)
