"""Deterministic fault injection for the batch pipeline.

The resilience layer's claims ("a crashed worker is requeued", "a hung
trace is killed and quarantined") are only testable if crashes and
hangs can be produced on demand, in the worker that owns the item, at
an exact point in the run.  A :class:`FaultPlan` is a picklable recipe
the pipeline threads into its workers: before an item is analyzed, the
plan is consulted and — if a spec matches the item's name (or its
dispatch index) and the current attempt number — the configured fault
fires.

Fault kinds:

``raise``
    Raise a named exception inside the analysis path — exercises the
    error-classification taxonomy (``KeyError`` → ``model``,
    ``OSError`` → ``io``, ...).
``hang``
    Sleep for ``hang_seconds`` before analyzing — drives the item past
    any per-trace timeout so the supervisor must kill the worker.
``kill``
    ``os._exit`` the worker process mid-item, bypassing all exception
    handling — the supervisor must notice the corpse, requeue the
    item, and quarantine it once the retry budget is spent.
``corrupt``
    Analyze a byte-corrupted *copy* of the item's capture file (the
    original is never touched) — a deterministic stand-in for the
    damaged traces a real packet-filter corpus is riddled with.

Every spec can be limited to specific attempt numbers via
``on_attempts``, so a test can, e.g., kill the first attempt and let
the retry succeed.  A string ``match`` may carry glob wildcards
(``bad.pcap#*``), so one spec can poison every flow of one serve
source.

Worker faults model *analysis* failures.  The serve daemon also needs
its *environment* to fail on cue — a disk that fills under the sink,
I/O that crawls under the tailer — which is what
:class:`ResourceFaultSpec` / :class:`ResourceFaultPlan` provide.
Resource faults are daemon-side (never pickled into workers), stateful
(they fire after a configured number of calls, for a configured
duration), and matched by source name with the same glob rules.
:func:`decode_storm_bytes` rounds out the kit with a valid-but-
worthless capture: a well-formed pcap whose every record fails to
decode, the classic garbage-spewing source.
"""

from __future__ import annotations

import errno
import fnmatch
import os
import struct
import tempfile
import time
from dataclasses import dataclass, field, replace

FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: Exceptions a ``raise`` fault may name.  A fixed whitelist keeps the
#: plan picklable and the injection auditable.
RAISEABLE: dict[str, type[BaseException]] = {
    "RuntimeError": RuntimeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RecursionError": RecursionError,
    "MemoryError": MemoryError,
    "ZeroDivisionError": ZeroDivisionError,
    "OSError": OSError,
    "ValueError": ValueError,
    "struct.error": struct.error,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: where it fires and what it does."""

    match: str | int            # item name, or dispatch index
    kind: str                   # one of FAULT_KINDS
    exception: str = "RuntimeError"   # for kind="raise" (see RAISEABLE)
    message: str = "injected fault"
    hang_seconds: float = 3600.0      # for kind="hang"
    exit_code: int = 9                # for kind="kill"
    corrupt_offset: int = 0           # for kind="corrupt"
    corrupt_bytes: bytes = b"\xde\xad\xbe\xef"
    on_attempts: tuple[int, ...] | None = None  # None: every attempt

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if self.kind == "raise" and self.exception not in RAISEABLE:
            raise ValueError(f"unraiseable exception: {self.exception!r} "
                             f"(choose from {sorted(RAISEABLE)})")

    def fires(self, name: str, index: int, attempt: int) -> bool:
        if not _matches(self.match, name, index):
            return False
        return self.on_attempts is None or attempt in self.on_attempts


@dataclass(frozen=True)
class FaultPlan:
    """A picklable set of fault specs, applied inside pipeline workers."""

    specs: tuple[FaultSpec, ...] = ()

    def apply(self, item, index: int, attempt: int):
        """Fire every matching fault; return the (possibly substituted)
        item the worker should analyze.

        ``raise``/``hang``/``kill`` act immediately; ``corrupt``
        swaps the item for one pointing at a corrupted temp copy of
        its capture file.
        """
        for spec in self.specs:
            if not spec.fires(item.name, index, attempt):
                continue
            if spec.kind == "raise":
                raise RAISEABLE[spec.exception](spec.message)
            if spec.kind == "hang":
                time.sleep(spec.hang_seconds)
            elif spec.kind == "kill":
                os._exit(spec.exit_code)
            elif spec.kind == "corrupt":
                item = replace(item, path=_corrupted_copy(
                    item.path, spec.corrupt_offset, spec.corrupt_bytes))
        return item


def _matches(pattern: str | int, name: str, index: int) -> bool:
    """Spec matching: exact name, dispatch index, or name glob."""
    if pattern == name or pattern == index:
        return True
    if isinstance(pattern, str) and any(c in pattern for c in "*?["):
        return fnmatch.fnmatchcase(name, pattern)
    return False


RESOURCE_FAULT_KINDS = ("enospc", "slow-io")


@dataclass(frozen=True)
class ResourceFaultSpec:
    """One environmental fault: which calls it poisons, and how.

    ``match`` globs against the *source* name (``"*"`` hits every
    source).  The fault is armed after ``after_calls`` matching calls
    have gone through cleanly, then fires for ``duration_calls``
    calls (``None``: forever).  ``enospc`` raises ``OSError(ENOSPC)``
    from the hooked operation; ``slow-io`` sleeps ``delay_seconds``
    before letting it proceed.
    """

    kind: str
    match: str = "*"
    after_calls: int = 0
    duration_calls: int | None = None
    delay_seconds: float = 0.05

    def __post_init__(self):
        if self.kind not in RESOURCE_FAULT_KINDS:
            raise ValueError(f"unknown resource fault kind: {self.kind!r}")

    def active(self, calls_so_far: int) -> bool:
        if calls_so_far < self.after_calls:
            return False
        if self.duration_calls is None:
            return True
        return calls_so_far < self.after_calls + self.duration_calls


@dataclass
class ResourceFaultPlan:
    """Daemon-side environmental faults, keyed by hook point.

    The daemon threads :meth:`check_sink_write` under every sink
    append and :meth:`io_delay` ahead of every tailer poll.  Call
    counters are per ``(hook, source)``, so "the 3rd write to
    cap.pcap fails" is expressible and deterministic.
    """

    specs: tuple[ResourceFaultSpec, ...] = ()
    _calls: dict = field(default_factory=dict, repr=False)

    def _count(self, hook: str, source: str) -> int:
        key = (hook, source)
        calls = self._calls.get(key, 0)
        self._calls[key] = calls + 1
        return calls

    def check_sink_write(self, source: str) -> None:
        """Raise ``OSError(ENOSPC)`` when an armed ``enospc`` spec
        covers this sink write; otherwise let it through."""
        calls = self._count("sink", source)
        for spec in self.specs:
            if spec.kind != "enospc":
                continue
            if not _matches(spec.match, source, -1):
                continue
            if spec.active(calls):
                raise OSError(errno.ENOSPC, "injected: no space left "
                              f"on device (sink write for {source})")

    def io_delay(self, source: str) -> float:
        """Seconds a tailer poll of *source* must stall (0 = none)."""
        calls = self._count("io", source)
        delay = 0.0
        for spec in self.specs:
            if spec.kind != "slow-io":
                continue
            if not _matches(spec.match, source, -1):
                continue
            if spec.active(calls):
                delay = max(delay, spec.delay_seconds)
        return delay


def decode_storm_bytes(records: int = 64, seed: int = 0) -> bytes:
    """A well-formed pcap whose every record is undecodable garbage.

    The global header parses (little-endian, raw-IP link type), the
    per-record framing is intact, but each packet body is
    deterministic noise that fails IP/TCP decode — so a tailer
    ingests it happily while the decode-error counters spin.  The
    storm source for chaos tests: not quarantinable as "not a pcap",
    yet never yields a flow.
    """
    from repro.trace.pcap import LINKTYPE_RAW, PCAP_MAGIC
    blob = bytearray(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0,
                                 65535, LINKTYPE_RAW))
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    for index in range(records):
        payload = bytearray()
        for _ in range(40):
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            payload.append(state >> 24)
        payload[0] = 0x00       # IP version nibble 0: never decodes
        blob += struct.pack("<IIII", index, 0, len(payload),
                            len(payload))
        blob += payload
    return bytes(blob)


def _corrupted_copy(path, offset: int, garbage: bytes):
    """Write a corrupted copy of *path* to a temp file, return its path.

    The corruption is deterministic (fixed offset, fixed bytes), so a
    corrupted item fails identically on every attempt and every run.
    """
    from pathlib import Path
    data = bytearray(Path(path).read_bytes())
    end = min(len(data), offset + len(garbage))
    data[offset:end] = garbage[:max(0, end - offset)]
    if not data:
        data = bytearray(garbage)
    handle, copy_path = tempfile.mkstemp(prefix="tcpanaly-fault-",
                                         suffix=".pcap")
    with os.fdopen(handle, "wb") as copy:
        copy.write(bytes(data))
    return Path(copy_path)
