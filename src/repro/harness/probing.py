"""Active probing of receiver implementations (§2's suggested combination).

The paper closes its related-work section with: "one can combine
active techniques, for controlling the stimuli seen by a TCP
implementation, with automated analysis of traces of the results, for
determining the TCP's response."  This module is that combination for
*receivers*: drive a receiving TCP with a scripted arrival sequence
(à la Comer & Lin's active probing or Dawson et al.'s fault
injection), capture the exchange with a packet filter, and hand the
trace to the automated receiver analysis.

The canned scripts target behaviors passive bulk-transfer traces
rarely expose — e.g. a *small* hole fill (advance under two segments),
the one situation that separates Solaris 2.3's acking bug from 2.4's
fix (§8.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capture.filter import PacketFilter
from repro.netsim.engine import Engine
from repro.netsim.node import Host
from repro.packets import ACK, FIN, SYN, Endpoint, Segment
from repro.tcp.params import TCPBehavior
from repro.tcp.receiver import TCPReceiver
from repro.trace.record import Trace


@dataclass(frozen=True)
class Arrival:
    """One scripted packet the prober delivers to the receiver."""

    at: float                  # absolute delivery time (seconds)
    seq: int
    payload: int = 0
    flags: int = ACK
    mss_option: int | None = None


def drive_receiver(behavior: TCPBehavior, arrivals: list[Arrival],
                   mss: int = 512, duration: float = 5.0) -> Trace:
    """Deliver *arrivals* to a receiver running *behavior*; return the
    captured (receiver-vantage) trace of the whole exchange."""
    engine = Engine()
    host = Host(engine, "receiver")
    packet_filter = PacketFilter(vantage="receiver")
    prober = Endpoint("prober", 1024)
    local = Endpoint("receiver", 9000)

    # The prober is not a real host: capture the receiver's outbound
    # packets directly instead of routing them anywhere.
    def capture_send(segment: Segment) -> None:
        packet_filter.observe_outbound(segment, engine.now)

    host.send = capture_send
    receiver = TCPReceiver(engine, host, behavior, local, prober, mss=1460)
    receiver.listen()

    for arrival in arrivals:
        segment = Segment(src=prober, dst=local, seq=arrival.seq, ack=1,
                          flags=arrival.flags, payload=arrival.payload,
                          mss_option=arrival.mss_option)
        engine.schedule_at(arrival.at,
                           lambda s=segment, t=arrival.at: (
                               packet_filter.observe_inbound(s, t),
                               host.deliver(s)))
    engine.run(until=duration)
    return packet_filter.trace()


def hole_fill_script(mss: int = 512) -> list[Arrival]:
    """SYN, then two hole-fill episodes whose fills each advance
    rcv_nxt by *less than two segments* — the §8.6 discriminator
    between Solaris 2.3 (delays the ack) and 2.4 (acks at once).
    Two episodes give the analysis repetition to score against."""
    base = 1
    script = [Arrival(0.0, seq=0, flags=SYN, mss_option=mss)]
    for episode in range(2):
        start = base + episode * (2 * mss + 300)
        script += [
            Arrival(1.0 * episode + 0.1, seq=start, payload=mss),
            Arrival(1.0 * episode + 0.2, seq=start + 2 * mss,
                    payload=300),                       # above a hole
            Arrival(1.0 * episode + 0.3, seq=start + mss,
                    payload=mss),                       # fills it
        ]
    end = base + 2 * (2 * mss + 300)
    script.append(Arrival(2.5, seq=end, flags=FIN | ACK))
    return script


def probe_hole_fill(behavior: TCPBehavior, mss: int = 512) -> Trace:
    """Run the small-hole-fill probe against *behavior*."""
    return drive_receiver(behavior, hole_fill_script(mss), mss=mss)
