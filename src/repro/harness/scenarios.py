"""Transfer scenarios: named network paths plus a traced-transfer helper.

A :class:`Scenario` captures path characteristics matching the kinds
of Internet paths in the paper's study: campus LAN, cross-country WAN,
the high-latency trans-Atlantic paths where Solaris's timer pathology
bites (§8.6), slow modem-grade links where ack-timer policy matters
(§9.1), and lossy variants of each.

:func:`traced_transfer` runs a bulk transfer with packet filters at
both endpoints and returns the transfer result plus both traces —
the unit of measurement of the entire study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.capture.filter import PacketFilter, attach_filter_pair
from repro.netsim.engine import Engine
from repro.netsim.link import LossModel, RandomLoss
from repro.netsim.network import build_path
from repro.tcp.connection import TransferResult, run_bulk_transfer
from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace
from repro.units import kbit, kbyte, mbit


@dataclass(frozen=True)
class Scenario:
    """A named network path configuration.

    The reverse-path and cross-traffic fields model the adversarial
    path shapes the fuzz layer composes: an asymmetric return channel
    (ADSL-style thin upstream, where the ack stream itself congests
    and thins), loss on the ack channel alone, and bursty competing
    traffic on the forward bottleneck (the queue oscillations that
    make real-path timestamps noisy).
    """

    name: str
    bottleneck_bandwidth: float = mbit(1.0)
    bottleneck_delay: float = 0.020     # one-way; RTT ≈ 2*(this + access)
    queue_limit: int = 64
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    # Asymmetric return path; None mirrors the forward bottleneck.
    reverse_bandwidth: float | None = None
    reverse_delay: float | None = None
    ack_drop_rate: float = 0.0          # loss on the ack channel only
    # Competing traffic on the forward bottleneck (bytes/s of offered
    # load; on/off make it bursty rather than constant-rate).
    cross_traffic_rate: float = 0.0
    cross_traffic_on: float | None = None
    cross_traffic_off: float | None = None
    description: str = ""

    def forward_loss(self, seed: int = 0) -> LossModel | None:
        if self.drop_rate == 0.0 and self.corrupt_rate == 0.0:
            return None
        return RandomLoss(self.drop_rate, self.corrupt_rate, seed=seed)

    def reverse_loss(self, seed: int = 0) -> LossModel | None:
        if self.ack_drop_rate == 0.0:
            return None
        # Offset the seed so forward and reverse losses decorrelate.
        return RandomLoss(self.ack_drop_rate, seed=seed + 0x5EED)

    @property
    def rtt(self) -> float:
        return 2 * (self.bottleneck_delay + 0.0005)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario("lan", bottleneck_bandwidth=mbit(10.0),
                 bottleneck_delay=0.001,
                 description="local Ethernet, ~3 ms RTT"),
        Scenario("wan", bottleneck_bandwidth=mbit(1.0),
                 bottleneck_delay=0.035,
                 description="cross-country path, ~70 ms RTT"),
        Scenario("wan-lossy", bottleneck_bandwidth=mbit(1.0),
                 bottleneck_delay=0.035, drop_rate=0.03,
                 description="cross-country path with 3% loss"),
        Scenario("transatlantic", bottleneck_bandwidth=kbit(512),
                 bottleneck_delay=0.339,
                 description="California-Netherlands, ~680 ms RTT (Fig 5)"),
        Scenario("satellite", bottleneck_bandwidth=kbit(256),
                 bottleneck_delay=1.3,
                 description="2.6 s minimum RTT (the §8.6 worst case)"),
        Scenario("modem-56k", bottleneck_bandwidth=kbit(56),
                 bottleneck_delay=0.050,
                 description="56 kbit/s access, the §9.1 delayed-ack regime"),
        Scenario("modem-64k", bottleneck_bandwidth=kbit(64),
                 bottleneck_delay=0.050,
                 description="64 kbit/s access"),
        Scenario("lossy-corrupting", bottleneck_bandwidth=mbit(1.0),
                 bottleneck_delay=0.035, drop_rate=0.02, corrupt_rate=0.01,
                 description="loss plus checksum corruption (§7)"),
        Scenario("adsl-asymmetric", bottleneck_bandwidth=mbit(1.5),
                 bottleneck_delay=0.025,
                 reverse_bandwidth=kbit(128), reverse_delay=0.025,
                 queue_limit=24,
                 description="thin upstream: the ack channel congests"),
        Scenario("ack-lossy", bottleneck_bandwidth=mbit(1.0),
                 bottleneck_delay=0.035, ack_drop_rate=0.10,
                 description="10% loss on the return path alone "
                 "(ack-thinned arrivals)"),
        Scenario("congested", bottleneck_bandwidth=mbit(1.0),
                 bottleneck_delay=0.035, queue_limit=32,
                 cross_traffic_rate=60000.0,
                 cross_traffic_on=0.5, cross_traffic_off=0.5,
                 description="bursty competing traffic on the "
                 "bottleneck queue"),
    )
}


@dataclass
class TracedTransfer:
    """A transfer's outcome together with its two endpoint traces."""

    result: TransferResult
    sender_trace: Trace
    receiver_trace: Trace
    scenario: Scenario | None = None
    seed: int = 0


def traced_transfer(behavior: TCPBehavior,
                    scenario: Scenario | str = "wan",
                    receiver_behavior: TCPBehavior | None = None,
                    data_size: int = kbyte(100),
                    mss: int = 512,
                    seed: int = 0,
                    sender_filter: PacketFilter | None = None,
                    receiver_filter: PacketFilter | None = None,
                    sender_window: int | None = None,
                    receiver_buffer: int = 65535,
                    consume_rate: float | None = None,
                    heartbeat_phase: float = 0.0,
                    quench_threshold: int | None = None,
                    max_duration: float = 600.0) -> TracedTransfer:
    """Run one bulk transfer on *scenario* with filters at both ends.

    Pass pre-configured :class:`PacketFilter` objects to inject
    measurement errors; by default both filters are perfect.
    """
    if isinstance(scenario, str):
        scenario = SCENARIOS[scenario]
    engine = Engine()
    path = build_path(engine,
                      bottleneck_bandwidth=scenario.bottleneck_bandwidth,
                      bottleneck_delay=scenario.bottleneck_delay,
                      queue_limit=scenario.queue_limit,
                      forward_loss=scenario.forward_loss(seed),
                      reverse_loss=scenario.reverse_loss(seed),
                      reverse_bottleneck_bandwidth=scenario.reverse_bandwidth,
                      reverse_bottleneck_delay=scenario.reverse_delay,
                      quench_threshold=quench_threshold)
    if scenario.cross_traffic_rate > 0.0:
        from repro.netsim.crosstraffic import CrossTrafficSource
        CrossTrafficSource(engine, path.forward_bottleneck,
                           rate=scenario.cross_traffic_rate,
                           on_time=scenario.cross_traffic_on,
                           off_time=scenario.cross_traffic_off).start()
    sender_filter, receiver_filter = attach_filter_pair(
        path, sender_filter, receiver_filter)
    result = run_bulk_transfer(behavior, receiver_behavior,
                               data_size=data_size, mss=mss,
                               sender_window=sender_window,
                               receiver_buffer=receiver_buffer,
                               consume_rate=consume_rate,
                               heartbeat_phase=heartbeat_phase,
                               max_duration=max_duration,
                               path=path)
    return TracedTransfer(result=result,
                          sender_trace=sender_filter.trace(),
                          receiver_trace=receiver_filter.trace(),
                          scenario=scenario, seed=seed)
