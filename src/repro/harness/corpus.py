"""Trace-corpus generation: the stand-in for the paper's 20k traces.

The paper's measurements came from ~20,000 tcpdump traces of 100 KB
bulk transfers across many implementations and Internet paths
(Table 1).  :func:`generate_corpus` produces the synthetic analogue:
for each requested implementation, a set of traced transfers across a
rotation of scenarios and random seeds.  Benchmarks use small corpora
(tens of traces) to keep runtimes sane; the generator scales to
thousands if asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.harness.scenarios import SCENARIOS, TracedTransfer, traced_transfer
from repro.tcp.catalog import CORE_STUDY, get_behavior
from repro.units import kbyte

#: The default scenario rotation: a mix of clean, lossy, and
#: high-latency paths, as the real corpus spanned.
DEFAULT_ROTATION = ("wan", "wan-lossy", "lan", "transatlantic", "modem-56k")


@dataclass
class CorpusEntry:
    """One corpus element: an implementation label plus its transfer."""

    implementation: str
    transfer: TracedTransfer

    @property
    def sender_trace(self):
        return self.transfer.sender_trace

    @property
    def receiver_trace(self):
        return self.transfer.receiver_trace


def generate_corpus(implementations: Iterable[str] | None = None,
                    traces_per_implementation: int = 5,
                    scenarios: Iterable[str] = DEFAULT_ROTATION,
                    data_size: int = kbyte(100),
                    base_seed: int = 0) -> Iterator[CorpusEntry]:
    """Yield traced transfers for each implementation in turn.

    Scenario and seed vary per trace so the corpus exercises a range
    of conditions (loss patterns, RTTs, ack-timing regimes).
    """
    implementations = list(implementations or CORE_STUDY)
    scenario_list = [SCENARIOS[s] if isinstance(s, str) else s
                     for s in scenarios]
    for implementation in implementations:
        behavior = get_behavior(implementation)
        for index in range(traces_per_implementation):
            scenario = scenario_list[index % len(scenario_list)]
            seed = base_seed + index
            transfer = traced_transfer(behavior, scenario,
                                       data_size=data_size, seed=seed)
            yield CorpusEntry(implementation=implementation,
                              transfer=transfer)


@dataclass
class WrittenCorpusEntry:
    """One corpus element written to disk: label, index, and pcap paths."""

    implementation: str
    index: int
    sender_path: Path
    receiver_path: Path
    transfer: TracedTransfer

    @property
    def stem(self) -> str:
        return f"{self.implementation}-{self.index:04d}"


def write_corpus(outdir: str | Path,
                 implementations: Iterable[str] | None = None,
                 traces_per_implementation: int = 5,
                 scenarios: Iterable[str] = DEFAULT_ROTATION,
                 data_size: int = kbyte(100),
                 base_seed: int = 0) -> list[WrittenCorpusEntry]:
    """Generate a corpus and write it to *outdir* as pcap pairs.

    Files are numbered per implementation —
    ``{label}-{index:04d}-{sender,receiver}.pcap`` with *index*
    starting at 0 for each label — so the layout is predictable from
    the generation parameters alone.
    """
    from repro.trace.pcap import write_pcap

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    counters: dict[str, int] = {}
    written = []
    for entry in generate_corpus(
            implementations=implementations,
            traces_per_implementation=traces_per_implementation,
            scenarios=scenarios, data_size=data_size, base_seed=base_seed):
        index = counters.get(entry.implementation, 0)
        counters[entry.implementation] = index + 1
        stem = f"{entry.implementation}-{index:04d}"
        sender_path = outdir / f"{stem}-sender.pcap"
        receiver_path = outdir / f"{stem}-receiver.pcap"
        write_pcap(entry.sender_trace, sender_path)
        write_pcap(entry.receiver_trace, receiver_path)
        written.append(WrittenCorpusEntry(
            implementation=entry.implementation, index=index,
            sender_path=sender_path, receiver_path=receiver_path,
            transfer=entry.transfer))
    return written


def corpus_summary(entries: Iterable[CorpusEntry]) -> dict[str, dict]:
    """Aggregate a corpus Table-1 style: per-implementation counts and
    basic transfer statistics."""
    summary: dict[str, dict] = {}
    for entry in entries:
        stats = summary.setdefault(entry.implementation, {
            "traces": 0, "completed": 0, "packets": 0, "retransmissions": 0,
        })
        sender = entry.transfer.result.sender
        stats["traces"] += 1
        stats["completed"] += int(entry.transfer.result.completed)
        stats["packets"] += sender.stats_data_packets
        stats["retransmissions"] += sender.stats_retransmissions
    return summary
