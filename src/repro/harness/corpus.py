"""Trace-corpus generation: the stand-in for the paper's 20k traces.

The paper's measurements came from ~20,000 tcpdump traces of 100 KB
bulk transfers across many implementations and Internet paths
(Table 1).  :func:`generate_corpus` produces the synthetic analogue:
for each requested implementation, a set of traced transfers across a
rotation of scenarios and random seeds.  Benchmarks use small corpora
(tens of traces) to keep runtimes sane; the generator scales to
thousands if asked.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator

from repro.harness.scenarios import SCENARIOS, TracedTransfer, traced_transfer
from repro.packets import Endpoint
from repro.tcp.catalog import CORE_STUDY, get_behavior
from repro.trace.record import Trace, TraceRecord
from repro.units import kbyte

#: The default scenario rotation: a mix of clean, lossy, and
#: high-latency paths, as the real corpus spanned.
DEFAULT_ROTATION = ("wan", "wan-lossy", "lan", "transatlantic", "modem-56k")


@dataclass
class CorpusEntry:
    """One corpus element: an implementation label plus its transfer."""

    implementation: str
    transfer: TracedTransfer

    @property
    def sender_trace(self):
        return self.transfer.sender_trace

    @property
    def receiver_trace(self):
        return self.transfer.receiver_trace


def generate_corpus(implementations: Iterable[str] | None = None,
                    traces_per_implementation: int = 5,
                    scenarios: Iterable[str] = DEFAULT_ROTATION,
                    data_size: int = kbyte(100),
                    base_seed: int = 0) -> Iterator[CorpusEntry]:
    """Yield traced transfers for each implementation in turn.

    Scenario and seed vary per trace so the corpus exercises a range
    of conditions (loss patterns, RTTs, ack-timing regimes).
    """
    implementations = list(implementations or CORE_STUDY)
    scenario_list = [SCENARIOS[s] if isinstance(s, str) else s
                     for s in scenarios]
    for implementation in implementations:
        behavior = get_behavior(implementation)
        for index in range(traces_per_implementation):
            scenario = scenario_list[index % len(scenario_list)]
            seed = base_seed + index
            transfer = traced_transfer(behavior, scenario,
                                       data_size=data_size, seed=seed)
            yield CorpusEntry(implementation=implementation,
                              transfer=transfer)


@dataclass
class WrittenCorpusEntry:
    """One corpus element written to disk: label, index, and pcap paths."""

    implementation: str
    index: int
    sender_path: Path
    receiver_path: Path
    transfer: TracedTransfer

    @property
    def stem(self) -> str:
        return f"{self.implementation}-{self.index:04d}"


def write_corpus(outdir: str | Path,
                 implementations: Iterable[str] | None = None,
                 traces_per_implementation: int = 5,
                 scenarios: Iterable[str] = DEFAULT_ROTATION,
                 data_size: int = kbyte(100),
                 base_seed: int = 0) -> list[WrittenCorpusEntry]:
    """Generate a corpus and write it to *outdir* as pcap pairs.

    Files are numbered per implementation —
    ``{label}-{index:04d}-{sender,receiver}.pcap`` with *index*
    starting at 0 for each label — so the layout is predictable from
    the generation parameters alone.
    """
    from repro.trace.pcap import write_pcap

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    counters: dict[str, int] = {}
    written = []
    for entry in generate_corpus(
            implementations=implementations,
            traces_per_implementation=traces_per_implementation,
            scenarios=scenarios, data_size=data_size, base_seed=base_seed):
        index = counters.get(entry.implementation, 0)
        counters[entry.implementation] = index + 1
        stem = f"{entry.implementation}-{index:04d}"
        sender_path = outdir / f"{stem}-sender.pcap"
        receiver_path = outdir / f"{stem}-receiver.pcap"
        write_pcap(entry.sender_trace, sender_path)
        write_pcap(entry.receiver_trace, receiver_path)
        written.append(WrittenCorpusEntry(
            implementation=entry.implementation, index=index,
            sender_path=sender_path, receiver_path=receiver_path,
            transfer=entry.transfer))
    return written


@dataclass(frozen=True)
class InterleavedFlow:
    """Ground truth for one connection inside an interleaved capture."""

    implementation: str
    client: Endpoint       # the remapped connection-unique client endpoint
    server: Endpoint
    records: int
    start: float           # capture-relative start time


@dataclass
class InterleavedCapture:
    """A multi-connection capture plus its per-connection ground truth.

    The synthetic analogue of a busy packet filter's output: many
    connections to one server, overlapping in time, all in one trace —
    the input the streaming demux subsystem exists to take apart.
    """

    trace: Trace
    flows: list[InterleavedFlow]

    @property
    def connections(self) -> int:
        return len(self.flows)


def _client_endpoint(records: list[TraceRecord]) -> Endpoint:
    """The connection initiator: sender of the first pure SYN."""
    for record in records:
        if record.is_syn and not record.has_ack:
            return record.src
    return records[0].src


def interleave_traces(traces: Iterable[Trace],
                      labels: Iterable[str],
                      start_interval: float = 0.5,
                      port_base: int = 40000) -> InterleavedCapture:
    """Merge single-connection traces into one interleaved capture.

    Connection *i* keeps its host names but has its client port
    remapped to ``port_base + i`` (a busy server sees many ephemeral
    client ports), and its clock shifted by ``i * start_interval`` so
    the connections overlap in time.  Records are merged in timestamp
    order (ties preserve connection order), exactly as a packet filter
    would have recorded the interleaving.
    """
    merged: list[TraceRecord] = []
    flows: list[InterleavedFlow] = []
    for i, (trace, label) in enumerate(zip(traces, labels)):
        if not trace.records:
            continue
        client = _client_endpoint(trace.records)
        new_client = Endpoint(client.addr, port_base + i)
        offset = i * start_interval
        remapped = [
            replace(record,
                    src=new_client if record.src == client else record.src,
                    dst=new_client if record.dst == client else record.dst,
                    timestamp=record.timestamp + offset)
            for record in trace.records
        ]
        first = remapped[0]
        server = first.dst if first.src == new_client else first.src
        flows.append(InterleavedFlow(
            implementation=label, client=new_client, server=server,
            records=len(remapped), start=first.timestamp))
        merged.extend(remapped)
    merged.sort(key=lambda record: record.timestamp)
    return InterleavedCapture(trace=Trace(records=merged), flows=flows)


def generate_interleaved_capture(implementations: Iterable[str] | None = None,
                                 connections: int = 10,
                                 scenarios: Iterable[str] = DEFAULT_ROTATION,
                                 data_size: int = kbyte(20),
                                 base_seed: int = 0,
                                 start_interval: float = 0.5,
                                 distinct_transfers: int = 8,
                                 side: str = "sender",
                                 port_base: int = 40000) -> InterleavedCapture:
    """Synthesize a *connections*-way interleaved capture.

    At most ``distinct_transfers`` transfers are actually simulated
    (cycling implementations, scenarios, and seeds); further
    connections reuse them with fresh client ports and shifted start
    times, so captures with hundreds of connections stay cheap to
    build.  *side* picks the vantage: ``"sender"`` or ``"receiver"``.
    """
    if side not in ("sender", "receiver"):
        raise ValueError(f"side must be 'sender' or 'receiver', not {side!r}")
    implementations = list(implementations or CORE_STUDY)
    scenario_list = list(scenarios)
    distinct = max(1, min(connections, distinct_transfers))
    base: list[tuple[str, Trace]] = []
    for i in range(distinct):
        label = implementations[i % len(implementations)]
        scenario = scenario_list[i % len(scenario_list)]
        transfer = traced_transfer(get_behavior(label), scenario,
                                   data_size=data_size,
                                   seed=base_seed + i)
        trace = transfer.sender_trace if side == "sender" \
            else transfer.receiver_trace
        base.append((label, trace))
    labels = [base[i % distinct][0] for i in range(connections)]
    traces = [base[i % distinct][1] for i in range(connections)]
    return interleave_traces(traces, labels,
                             start_interval=start_interval,
                             port_base=port_base)


def corpus_summary(entries: Iterable[CorpusEntry]) -> dict[str, dict]:
    """Aggregate a corpus Table-1 style: per-implementation counts and
    basic transfer statistics."""
    summary: dict[str, dict] = {}
    for entry in entries:
        stats = summary.setdefault(entry.implementation, {
            "traces": 0, "completed": 0, "packets": 0, "retransmissions": 0,
        })
        sender = entry.transfer.result.sender
        stats["traces"] += 1
        stats["completed"] += int(entry.transfer.result.completed)
        stats["packets"] += sender.stats_data_packets
        stats["retransmissions"] += sender.stats_retransmissions
    return summary
