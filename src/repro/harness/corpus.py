"""Trace-corpus generation: the stand-in for the paper's 20k traces.

The paper's measurements came from ~20,000 tcpdump traces of 100 KB
bulk transfers across many implementations and Internet paths
(Table 1).  :func:`generate_corpus` produces the synthetic analogue:
for each requested implementation, a set of traced transfers across a
rotation of scenarios and random seeds.  Benchmarks use small corpora
(tens of traces) to keep runtimes sane; the generator scales to
thousands if asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.harness.scenarios import SCENARIOS, TracedTransfer, traced_transfer
from repro.tcp.catalog import CORE_STUDY, get_behavior
from repro.units import kbyte

#: The default scenario rotation: a mix of clean, lossy, and
#: high-latency paths, as the real corpus spanned.
DEFAULT_ROTATION = ("wan", "wan-lossy", "lan", "transatlantic", "modem-56k")


@dataclass
class CorpusEntry:
    """One corpus element: an implementation label plus its transfer."""

    implementation: str
    transfer: TracedTransfer

    @property
    def sender_trace(self):
        return self.transfer.sender_trace

    @property
    def receiver_trace(self):
        return self.transfer.receiver_trace


def generate_corpus(implementations: Iterable[str] | None = None,
                    traces_per_implementation: int = 5,
                    scenarios: Iterable[str] = DEFAULT_ROTATION,
                    data_size: int = kbyte(100),
                    base_seed: int = 0) -> Iterator[CorpusEntry]:
    """Yield traced transfers for each implementation in turn.

    Scenario and seed vary per trace so the corpus exercises a range
    of conditions (loss patterns, RTTs, ack-timing regimes).
    """
    implementations = list(implementations or CORE_STUDY)
    scenario_list = [SCENARIOS[s] if isinstance(s, str) else s
                     for s in scenarios]
    for implementation in implementations:
        behavior = get_behavior(implementation)
        for index in range(traces_per_implementation):
            scenario = scenario_list[index % len(scenario_list)]
            seed = base_seed + index
            transfer = traced_transfer(behavior, scenario,
                                       data_size=data_size, seed=seed)
            yield CorpusEntry(implementation=implementation,
                              transfer=transfer)


def corpus_summary(entries: Iterable[CorpusEntry]) -> dict[str, dict]:
    """Aggregate a corpus Table-1 style: per-implementation counts and
    basic transfer statistics."""
    summary: dict[str, dict] = {}
    for entry in entries:
        stats = summary.setdefault(entry.implementation, {
            "traces": 0, "completed": 0, "packets": 0, "retransmissions": 0,
        })
        sender = entry.transfer.result.sender
        stats["traces"] += 1
        stats["completed"] += int(entry.transfer.result.completed)
        stats["packets"] += sender.stats_data_packets
        stats["retransmissions"] += sender.stats_retransmissions
    return summary
