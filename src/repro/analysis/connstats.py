"""Per-connection summary statistics (tcptrace-style).

A downstream user pointing this library at a pcap usually wants the
overview numbers before any behavioral diagnosis: how much data
moved, how fast, how lossy, what the RTT looked like, how bursty the
sender was.  :func:`connection_stats` computes them from a single
trace; :func:`split_connections` first separates a multi-connection
capture into per-connection traces (real packet filters record
whatever matches, often several connections at once).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.packets import FlowKey
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_diff, seq_ge, seq_gt


def split_connections(trace: Trace) -> dict[frozenset, Trace]:
    """Separate a capture into one trace per TCP connection.

    Connections are keyed by the unordered pair of endpoints (both
    directions of one connection map to the same key).  Record order
    within each connection is preserved.
    """
    buckets: dict[frozenset, list[TraceRecord]] = {}
    for record in trace.records:
        key = frozenset((record.src, record.dst))
        buckets.setdefault(key, []).append(record)
    return {key: Trace(records=records, vantage=trace.vantage,
                       filter_name=trace.filter_name)
            for key, records in buckets.items()}


@dataclass
class ConnectionStats:
    """Summary numbers for one connection's trace."""

    flow: FlowKey
    duration: float = 0.0
    unique_bytes: int = 0
    total_data_packets: int = 0
    retransmitted_packets: int = 0
    acks: int = 0
    throughput: float = 0.0          # unique bytes / duration
    goodput_ratio: float = 1.0       # unique / total data bytes sent
    rtt_min: float | None = None
    rtt_median: float | None = None
    rtt_max: float | None = None
    max_burst: int = 0               # most data packets within 5 ms
    idle_time: float = 0.0           # total gaps > 1 s
    syn_count: int = 0
    fin_seen: bool = False
    rst_seen: bool = False

    def render(self) -> str:
        lines = [
            f"connection {self.flow}",
            f"  duration {self.duration:.3f}s, "
            f"{self.unique_bytes} unique bytes, "
            f"throughput {self.throughput / 1024:.1f} KB/s",
            f"  data packets {self.total_data_packets} "
            f"({self.retransmitted_packets} retransmitted, "
            f"goodput ratio {self.goodput_ratio:.2f}); acks {self.acks}",
        ]
        if self.rtt_min is not None:
            lines.append(f"  rtt min/median/max = {self.rtt_min * 1e3:.1f}/"
                         f"{self.rtt_median * 1e3:.1f}/"
                         f"{self.rtt_max * 1e3:.1f} ms")
        lines.append(f"  max burst {self.max_burst} packets; "
                     f"idle {self.idle_time:.2f}s; "
                     f"SYNs {self.syn_count}, "
                     f"FIN {'yes' if self.fin_seen else 'no'}, "
                     f"RST {'yes' if self.rst_seen else 'no'}")
        return "\n".join(lines)


BURST_WINDOW = 0.005
IDLE_THRESHOLD = 1.0


def connection_stats(trace: Trace) -> ConnectionStats:
    """Compute summary statistics over one connection's trace."""
    if not trace.records:
        raise ValueError("empty trace")
    flow = trace.primary_flow()
    reverse = flow.reversed()
    stats = ConnectionStats(flow=flow)

    records = trace.records
    stats.duration = records[-1].timestamp - records[0].timestamp

    highest_sent: int | None = None
    total_data_bytes = 0
    burst: list[float] = []
    previous_time: float | None = None
    rtt_samples: list[float] = []
    pending: list[tuple[int, float]] = []   # (seq_end, first-send time)
    seen_starts: set[int] = set()

    for record in records:
        if previous_time is not None:
            gap = record.timestamp - previous_time
            if gap > IDLE_THRESHOLD:
                stats.idle_time += gap
        previous_time = record.timestamp

        if record.flow == flow:
            if record.is_syn:
                stats.syn_count += 1
            if record.is_fin:
                stats.fin_seen = True
            if record.is_rst:
                stats.rst_seen = True
            if record.payload > 0:
                stats.total_data_packets += 1
                total_data_bytes += record.payload
                if record.seq in seen_starts or (
                        highest_sent is not None
                        and seq_gt(highest_sent, record.seq)):
                    stats.retransmitted_packets += 1
                else:
                    pending.append((record.seq_end, record.timestamp))
                seen_starts.add(record.seq)
                if highest_sent is None or seq_gt(record.seq_end,
                                                  highest_sent):
                    if highest_sent is not None:
                        stats.unique_bytes += seq_diff(record.seq_end,
                                                       highest_sent)
                    else:
                        stats.unique_bytes += record.payload
                    highest_sent = record.seq_end
                burst = [t for t in burst
                         if record.timestamp - t <= BURST_WINDOW]
                burst.append(record.timestamp)
                stats.max_burst = max(stats.max_burst, len(burst))
        elif record.flow == reverse and record.has_ack \
                and not record.is_syn:
            stats.acks += 1
            while pending and seq_ge(record.ack, pending[0][0]):
                seq_end, sent_at = pending.pop(0)
                rtt_samples.append(record.timestamp - sent_at)

    if stats.duration > 0:
        stats.throughput = stats.unique_bytes / stats.duration
    if total_data_bytes > 0:
        stats.goodput_ratio = stats.unique_bytes / total_data_bytes
    if rtt_samples:
        ordered = sorted(rtt_samples)
        stats.rtt_min = ordered[0]
        stats.rtt_median = ordered[len(ordered) // 2]
        stats.rtt_max = ordered[-1]
    return stats
