"""Time-sequence plots — the paper's primary diagnostic picture.

Figures 1–5 of the paper are all sequence plots: time on the x-axis,
upper sequence number on the y-axis, solid marks for data packets and
outlined marks for acks.  :func:`sequence_plot` extracts the plot's
point series from a trace; :func:`render_ascii_plot` draws a terminal
rendition, which the benchmarks print so each figure is literally
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.record import Trace
from repro.units import seq_diff


@dataclass
class SequencePlot:
    """The two point series of a time-sequence plot (relative units)."""

    data_points: list[tuple[float, int]] = field(default_factory=list)
    ack_points: list[tuple[float, int]] = field(default_factory=list)
    title: str = ""

    @property
    def duration(self) -> float:
        times = [t for t, _ in self.data_points + self.ack_points]
        return max(times) if times else 0.0

    @property
    def max_seq(self) -> int:
        seqs = [s for _, s in self.data_points + self.ack_points]
        return max(seqs) if seqs else 0


def sequence_plot(trace: Trace, title: str = "") -> SequencePlot:
    """Extract a sequence plot from *trace*.

    Times are relative to the first record; sequence numbers relative
    to the data stream's initial sequence number.  Data points use the
    packet's *upper* sequence number, acks the acknowledgement number,
    matching the paper's plots.
    """
    plot = SequencePlot(title=title)
    if not trace.records:
        return plot
    flow = trace.primary_flow()
    base_time = trace.start_time
    base_seq = None
    for record in trace:
        if record.flow == flow:
            if base_seq is None and record.is_syn:
                base_seq = record.seq
            if base_seq is None:
                base_seq = record.seq
            if record.payload > 0:
                plot.data_points.append(
                    (record.timestamp - base_time,
                     seq_diff(record.seq_end, base_seq)))
        elif record.flow == flow.reversed() and record.has_ack \
                and not record.is_syn:
            if base_seq is not None:
                plot.ack_points.append(
                    (record.timestamp - base_time,
                     seq_diff(record.ack, base_seq)))
    return plot


def render_ascii_plot(plot: SequencePlot, width: int = 72,
                      height: int = 24) -> str:
    """Draw the plot with terminal characters.

    ``#`` marks data packets (solid squares in the paper), ``o`` marks
    acks (outlined squares); ``*`` marks cells holding both.
    """
    if not plot.data_points and not plot.ack_points:
        return "(empty plot)"
    duration = max(plot.duration, 1e-9)
    max_seq = max(plot.max_seq, 1)
    grid = [[" "] * width for _ in range(height)]

    def place(time: float, seq: int, mark: str) -> None:
        x = min(int(time / duration * (width - 1)), width - 1)
        y = height - 1 - min(int(seq / max_seq * (height - 1)), height - 1)
        current = grid[y][x]
        grid[y][x] = "*" if current not in (" ", mark) else mark

    for time, seq in plot.ack_points:
        place(time, seq, "o")
    for time, seq in plot.data_points:
        place(time, seq, "#")

    lines = []
    if plot.title:
        lines.append(plot.title)
    lines.append(f"seq 0..{max_seq} (vertical), "
                 f"time 0..{duration:.3f}s (horizontal); "
                 f"# data, o ack")
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)
