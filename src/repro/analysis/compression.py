"""Ack-compression detection ([Pa97a], referenced by the paper).

The paper's stretch-ack footnote notes that apparent impossibilities
"sometimes happen due to timing compression by the network after the
bottleneck link".  *Ack compression* is the canonical case: acks leave
the receiver spaced by the data they acknowledge, queue up somewhere
on the return path, and arrive at the sender back-to-back.  A sender
(or analyzer) pacing itself by the ack clock then sees a burst where
the receiver created smoothness.

Detection needs only the sender-side trace plus the generation spacing
implied by the acked data: a run of acks whose *arrival* span is far
smaller than the span of the sends they acknowledge was compressed in
flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import Trace
from repro.units import seq_gt

#: Minimum acks in a run for a compression event.
MIN_RUN = 3
#: Arrival span must shrink by at least this factor.
MIN_FACTOR = 4.0
#: Send gaps beyond this reflect sender stalls, not ack generation.
MAX_STEP_SEND_GAP = 0.5


@dataclass(frozen=True)
class CompressionEvent:
    """A run of acks arriving far closer together than generated."""

    start_time: float          # arrival of the run's first ack
    acks: int
    send_span: float           # spacing of the acked data's sends
    arrival_span: float

    @property
    def factor(self) -> float:
        return self.send_span / max(self.arrival_span, 1e-9)


def detect_ack_compression(trace: Trace,
                           min_run: int = MIN_RUN,
                           min_factor: float = MIN_FACTOR
                           ) -> list[CompressionEvent]:
    """Find ack-compression events in a sender-side trace."""
    if not trace.records:
        return []
    flow = trace.primary_flow()
    reverse = flow.reversed()

    # First-send time of each data sequence boundary.  A boundary that
    # was ever retransmitted is useless as a generation-spacing proxy:
    # its covering ack may arrive an RTO after the first send without
    # any compression having occurred.
    send_time: dict[int, float] = {}
    retransmitted: set[int] = set()
    highest_sent = None
    for record in trace:
        if record.flow == flow and record.payload > 0:
            if record.seq_end in send_time or (
                    highest_sent is not None
                    and not seq_gt(record.seq_end, highest_sent)):
                retransmitted.add(record.seq_end)
            send_time.setdefault(record.seq_end, record.timestamp)
            if highest_sent is None or seq_gt(record.seq_end, highest_sent):
                highest_sent = record.seq_end

    # Advancing acks with (arrival time, send time of the acked data).
    advancing: list[tuple[float, float]] = []
    highest = None
    for record in trace:
        if record.flow != reverse or not record.has_ack or record.is_syn:
            continue
        if highest is not None and not seq_gt(record.ack, highest):
            continue
        highest = record.ack
        if record.ack in send_time and record.ack not in retransmitted:
            advancing.append((record.timestamp, send_time[record.ack]))

    # Per-step compression: consecutive acks whose arrival gap shrank
    # by min_factor relative to the gap between the acked data's sends.
    # A send gap beyond MAX_STEP_SEND_GAP means the *sender* stalled
    # (timeout, window exhaustion) — that is not network compression.
    compressed_step: list[bool] = []
    for (t0, s0), (t1, s1) in zip(advancing, advancing[1:]):
        dt_arrival = t1 - t0
        dt_send = s1 - s0
        compressed_step.append(
            0 < dt_send <= MAX_STEP_SEND_GAP
            and dt_arrival * min_factor <= dt_send)

    events: list[CompressionEvent] = []
    index = 0
    while index < len(compressed_step):
        if not compressed_step[index]:
            index += 1
            continue
        run_end = index
        while run_end < len(compressed_step) and compressed_step[run_end]:
            run_end += 1
        acks = run_end - index + 1       # steps + 1
        if acks >= min_run:
            first = advancing[index]
            last = advancing[run_end]
            events.append(CompressionEvent(
                start_time=first[0], acks=acks,
                send_span=last[1] - first[1],
                arrival_span=last[0] - first[0]))
        index = run_end + 1
    return events
