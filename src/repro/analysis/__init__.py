"""Statistics and plotting helpers for analysis results."""

from repro.analysis.stats import (
    describe,
    Summary,
    ack_class_table,
    retransmission_stats,
)
from repro.analysis.seqplot import sequence_plot, render_ascii_plot
from repro.analysis.connstats import (
    ConnectionStats,
    connection_stats,
    split_connections,
)
from repro.analysis.compression import (
    CompressionEvent,
    detect_ack_compression,
)

__all__ = [
    "ConnectionStats",
    "connection_stats",
    "split_connections",
    "CompressionEvent",
    "detect_ack_compression",
    "describe",
    "Summary",
    "ack_class_table",
    "retransmission_stats",
    "sequence_plot",
    "render_ascii_plot",
]
