"""Summary statistics over analyses and corpora.

Small, dependency-light helpers used by benchmarks and reports:
five-number summaries, ack-class tables (§9.1), and retransmission
statistics (§8) aggregated across traced transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.receiver.analyzer import ReceiverAnalysis
from repro.tcp.connection import TransferResult


@dataclass(frozen=True)
class Summary:
    """Five-number summary plus mean of a sample."""

    count: int
    minimum: float
    median: float
    mean: float
    p90: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} min={self.minimum:.6g} "
                f"median={self.median:.6g} mean={self.mean:.6g} "
                f"p90={self.p90:.6g} max={self.maximum:.6g}")


def describe(values: Iterable[float]) -> Summary:
    """Five-number summary of *values* (raises on empty input)."""
    data = sorted(values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    n = len(data)

    def percentile(q: float) -> float:
        index = min(int(q * (n - 1) + 0.5), n - 1)
        return data[index]

    return Summary(count=n, minimum=data[0], median=percentile(0.5),
                   mean=math.fsum(data) / n, p90=percentile(0.9),
                   maximum=data[-1])


def ack_class_table(analyses: Iterable[ReceiverAnalysis]
                    ) -> dict[str, dict[str, float]]:
    """Aggregate ack classifications across receiver analyses (§9.1).

    Returns per-implementation rows with the fraction of delayed /
    normal / stretch acks and delayed-ack delay statistics.
    """
    rows: dict[str, dict[str, float]] = {}
    grouped: dict[str, list[ReceiverAnalysis]] = {}
    for analysis in analyses:
        grouped.setdefault(analysis.implementation, []).append(analysis)
    for implementation, group in grouped.items():
        counts: dict[str, int] = {}
        delays: list[float] = []
        for analysis in group:
            for kind, count in analysis.counts_by_kind().items():
                counts[kind] = counts.get(kind, 0) + count
            delays.extend(analysis.delays_for("delayed"))
        data_acks = sum(counts.get(k, 0)
                        for k in ("delayed", "normal", "stretch"))
        if data_acks == 0:
            continue
        row = {
            "acks": float(data_acks),
            "delayed_fraction": counts.get("delayed", 0) / data_acks,
            "normal_fraction": counts.get("normal", 0) / data_acks,
            "stretch_fraction": counts.get("stretch", 0) / data_acks,
        }
        if delays:
            summary = describe(delays)
            row["delayed_min_ms"] = summary.minimum * 1e3
            row["delayed_mean_ms"] = summary.mean * 1e3
            row["delayed_max_ms"] = summary.maximum * 1e3
        rows[implementation] = row
    return rows


def retransmission_stats(results: Iterable[tuple[str, TransferResult]]
                         ) -> dict[str, dict[str, float]]:
    """Aggregate sender retransmission behavior per implementation."""
    grouped: dict[str, list[TransferResult]] = {}
    for implementation, result in results:
        grouped.setdefault(implementation, []).append(result)
    rows = {}
    for implementation, group in grouped.items():
        packets = sum(r.sender.stats_data_packets for r in group)
        rexmits = sum(r.sender.stats_retransmissions for r in group)
        timeouts = sum(r.sender.stats_timeouts for r in group)
        rows[implementation] = {
            "transfers": float(len(group)),
            "packets": float(packets),
            "retransmissions": float(rexmits),
            "rexmit_fraction": rexmits / packets if packets else 0.0,
            "timeouts": float(timeouts),
            "mean_throughput": (sum(r.throughput for r in group)
                                / len(group)),
        }
    return rows
