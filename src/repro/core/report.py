"""Human-readable diagnosis reports.

Collects the calibration, sender, receiver, and identification results
for one trace (or trace pair) into the kind of report tcpanaly printed:
measurement-error findings first (nothing downstream is trustworthy
without them), then behavioral findings, then the fit ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace

from repro.core.calibrate import CalibrationReport, calibrate_trace
from repro.core.engine import IdentificationEngine
from repro.core.errors import annotate_stage
from repro.core.fit import FitReport, ReceiverFit
from repro.core.receiver.analyzer import (
    ReceiverAnalysis,
    analyze_receiver,
    extract_receiver_pass_one,
)
from repro.core.sender.analyzer import (
    SenderAnalysis,
    TraceUnusable,
    analyze_sender,
    extract_pass_one,
)
from repro.core.vantage import infer_vantage

#: Engine shared by callers that do not thread their own through —
#: built lazily so importing this module costs nothing extra.
_default_engine: IdentificationEngine | None = None


def default_engine() -> IdentificationEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = IdentificationEngine()
    return _default_engine


@dataclass
class TraceReport:
    """A full tcpanaly-style report for one trace."""

    vantage: str
    calibration: CalibrationReport
    sender: SenderAnalysis | None = None
    receiver: ReceiverAnalysis | None = None
    identification: FitReport | None = None
    receiver_identification: list[ReceiverFit] | None = None

    def render(self) -> str:
        lines = [f"=== tcpanaly report (vantage: {self.vantage}) ==="]
        lines.append("-- measurement calibration --")
        lines.append(self.calibration.summary())
        if self.calibration.resequencing:
            lines.append("NOTE: resequencing detected; recorded "
                         "cause-and-effect is untrustworthy")
        if self.sender is not None:
            lines.append("-- sender behavior --")
            lines.append(self.sender.summary())
            first = self.sender.first_violation()
            if first is not None:
                lines.append(f"first violation at t={first.record.timestamp:.6f}: "
                             f"{first.note}")
            for note in self.sender.notes:
                lines.append(f"note: {note}")
            if self.sender.inferred_quenches:
                lines.append(f"inferred source quenches at "
                             f"{[f'{t:.3f}' for t in self.sender.inferred_quenches]}")
        if self.receiver is not None:
            lines.append("-- receiver behavior --")
            lines.append(self.receiver.summary())
            if self.receiver.delay_ceiling_violations:
                lines.append(f"{len(self.receiver.delay_ceiling_violations)} "
                             f"acks exceeded the 500 ms ceiling")
        if self.identification is not None:
            lines.append("-- implementation identification --")
            lines.append(self.identification.summary())
        if self.receiver_identification is not None:
            lines.append("-- receiver acking-policy identification --")
            for fit in self.receiver_identification:
                notes = "; ".join(fit.inconsistencies)
                lines.append(f"  {fit.implementation:16s} "
                             f"{fit.category:10s} {notes}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the whole report.

        Deterministic for a given trace and catalog — the batch
        pipeline writes exactly this to its JSONL output and result
        cache, so parallel, sequential, and cached runs agree
        byte-for-byte.
        """
        calibration = self.calibration
        summary: dict = {
            "vantage": self.vantage,
            "calibration": {
                "clean": calibration.clean,
                "drop_evidence": len(calibration.drop_evidence),
                "duplicates": len(calibration.duplicates),
                "resequencing": len(calibration.resequencing),
                "time_travel": len(calibration.time_travel),
            },
        }
        if self.identification is not None:
            summary["identification"] = self.identification.to_dict()
        if self.receiver_identification is not None:
            fits = self.receiver_identification
            close = [f.implementation for f in fits
                     if f.category == "close"]
            summary["receiver_identification"] = {
                "close": close,
                "fits": [fit.to_dict() for fit in fits],
            }
        return summary


def analyze_trace(trace: Trace, behavior: TCPBehavior | None = None,
                  peer_trace: Trace | None = None,
                  identify: bool = False,
                  headers_only: bool = False,
                  engine: IdentificationEngine | None = None) -> TraceReport:
    """Run the full analysis pipeline on one trace.

    With *behavior* the behavior-specific checks run; with *identify*
    every catalog implementation is ranked — by congestion behavior
    for sender traces, by acking policy for receiver traces.  The
    analysis appropriate to the trace's vantage is chosen
    automatically.

    Pass-one fact extraction runs **once** per trace: the behavior
    check and the identification engine replay against the same shared
    facts.  *engine* threads a caller-owned
    :class:`~repro.core.engine.IdentificationEngine` through (the
    batch and stream pipelines reuse one across all their traces); by
    default a module-level shared engine is used.
    """
    vantage = infer_vantage(trace)
    want_analysis = behavior is not None or identify
    sender_pass_one = receiver_pass_one = None
    # Stage annotations: an exception escaping any analysis stage is
    # tagged with the stage name so the pipeline's quarantine payload
    # can say *where* a pathological trace broke the model, not just
    # that it did.  The exceptions themselves still propagate.
    if want_analysis and vantage == "sender":
        try:
            sender_pass_one = extract_pass_one(trace)
        except (TraceUnusable, ValueError):
            pass
        except Exception as error:
            annotate_stage(error, "sender pass one")
            raise
    elif want_analysis:
        try:
            receiver_pass_one = extract_receiver_pass_one(
                trace, headers_only)
        except ValueError:
            pass
        except Exception as error:
            annotate_stage(error, "receiver pass one")
            raise
    sender_analysis = None
    if behavior is not None and vantage == "sender" \
            and sender_pass_one is not None:
        try:
            sender_analysis = analyze_sender(None, behavior,
                                             pass_one=sender_pass_one)
        except Exception as error:
            annotate_stage(error, "sender analysis")
            raise
    # Calibration's behavior-dependent checks reuse the replay above
    # instead of re-running the sender analyzer on the same trace.
    try:
        calibration = calibrate_trace(trace, behavior, peer_trace,
                                      sender_analysis=sender_analysis)
    except Exception as error:
        annotate_stage(error, "calibration")
        raise
    report = TraceReport(vantage=vantage, calibration=calibration,
                         sender=sender_analysis)
    if behavior is not None and vantage != "sender" \
            and receiver_pass_one is not None:
        try:
            report.receiver = analyze_receiver(
                None, behavior, headers_only=headers_only,
                pass_one=receiver_pass_one)
        except Exception as error:
            annotate_stage(error, "receiver analysis")
            raise
    if identify:
        if engine is None:
            engine = default_engine()
        try:
            if vantage == "sender":
                report.identification = engine.identify_sender(
                    trace, pass_one=sender_pass_one)
            elif headers_only and receiver_pass_one is not None:
                # Identification always replays the full-content trace
                # semantics; a headers-only pass one is not equivalent.
                report.receiver_identification = \
                    engine.identify_receiver(trace)
            else:
                report.receiver_identification = engine.identify_receiver(
                    trace, pass_one=receiver_pass_one)
        except Exception as error:
            annotate_stage(error, "identification")
            raise
    return report
