"""Human-readable diagnosis reports.

Collects the calibration, sender, receiver, and identification results
for one trace (or trace pair) into the kind of report tcpanaly printed:
measurement-error findings first (nothing downstream is trustworthy
without them), then behavioral findings, then the fit ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace

from repro.core.calibrate import CalibrationReport, calibrate_trace
from repro.core.fit import (
    FitReport,
    ReceiverFit,
    identify_implementation,
    identify_receiver,
)
from repro.core.receiver.analyzer import ReceiverAnalysis, analyze_receiver
from repro.core.sender.analyzer import (
    SenderAnalysis,
    TraceUnusable,
    analyze_sender,
)
from repro.core.vantage import infer_vantage


@dataclass
class TraceReport:
    """A full tcpanaly-style report for one trace."""

    vantage: str
    calibration: CalibrationReport
    sender: SenderAnalysis | None = None
    receiver: ReceiverAnalysis | None = None
    identification: FitReport | None = None
    receiver_identification: list[ReceiverFit] | None = None

    def render(self) -> str:
        lines = [f"=== tcpanaly report (vantage: {self.vantage}) ==="]
        lines.append("-- measurement calibration --")
        lines.append(self.calibration.summary())
        if self.calibration.resequencing:
            lines.append("NOTE: resequencing detected; recorded "
                         "cause-and-effect is untrustworthy")
        if self.sender is not None:
            lines.append("-- sender behavior --")
            lines.append(self.sender.summary())
            first = self.sender.first_violation()
            if first is not None:
                lines.append(f"first violation at t={first.record.timestamp:.6f}: "
                             f"{first.note}")
            for note in self.sender.notes:
                lines.append(f"note: {note}")
            if self.sender.inferred_quenches:
                lines.append(f"inferred source quenches at "
                             f"{[f'{t:.3f}' for t in self.sender.inferred_quenches]}")
        if self.receiver is not None:
            lines.append("-- receiver behavior --")
            lines.append(self.receiver.summary())
            if self.receiver.delay_ceiling_violations:
                lines.append(f"{len(self.receiver.delay_ceiling_violations)} "
                             f"acks exceeded the 500 ms ceiling")
        if self.identification is not None:
            lines.append("-- implementation identification --")
            lines.append(self.identification.summary())
        if self.receiver_identification is not None:
            lines.append("-- receiver acking-policy identification --")
            for fit in self.receiver_identification:
                notes = "; ".join(fit.inconsistencies)
                lines.append(f"  {fit.implementation:16s} "
                             f"{fit.category:10s} {notes}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the whole report.

        Deterministic for a given trace and catalog — the batch
        pipeline writes exactly this to its JSONL output and result
        cache, so parallel, sequential, and cached runs agree
        byte-for-byte.
        """
        calibration = self.calibration
        summary: dict = {
            "vantage": self.vantage,
            "calibration": {
                "clean": calibration.clean,
                "drop_evidence": len(calibration.drop_evidence),
                "duplicates": len(calibration.duplicates),
                "resequencing": len(calibration.resequencing),
                "time_travel": len(calibration.time_travel),
            },
        }
        if self.identification is not None:
            summary["identification"] = self.identification.to_dict()
        if self.receiver_identification is not None:
            fits = self.receiver_identification
            close = [f.implementation for f in fits
                     if f.category == "close"]
            summary["receiver_identification"] = {
                "close": close,
                "fits": [fit.to_dict() for fit in fits],
            }
        return summary


def analyze_trace(trace: Trace, behavior: TCPBehavior | None = None,
                  peer_trace: Trace | None = None,
                  identify: bool = False,
                  headers_only: bool = False) -> TraceReport:
    """Run the full analysis pipeline on one trace.

    With *behavior* the behavior-specific checks run; with *identify*
    every catalog implementation is ranked — by congestion behavior
    for sender traces, by acking policy for receiver traces.  The
    analysis appropriate to the trace's vantage is chosen
    automatically.
    """
    vantage = infer_vantage(trace)
    calibration = calibrate_trace(trace, behavior, peer_trace)
    report = TraceReport(vantage=vantage, calibration=calibration)
    if behavior is not None:
        if vantage == "sender":
            try:
                report.sender = analyze_sender(trace, behavior)
            except TraceUnusable:
                pass
        else:
            try:
                report.receiver = analyze_receiver(
                    trace, behavior, headers_only=headers_only)
            except ValueError:
                pass
    if identify:
        if vantage == "sender":
            report.identification = identify_implementation(trace)
        else:
            report.receiver_identification = identify_receiver(trace)
    return report
