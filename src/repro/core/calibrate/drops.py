"""Filter-drop self-consistency checks (§3.1.1).

Filters cannot be trusted to report their own drops, so tcpanaly
infers them.  The key discipline: never mistake a *network* drop for a
*filter* drop.  TCP's reliability is the lever — a correct TCP repairs
real losses (retransmissions, dup acks) but reacts not at all to
filter drops, because the packets really were delivered.

Eight checks, each looking for a TCP apparently sending at an
inappropriate time or failing to send at an appropriate one:

1.  ``ack_for_unseen_data`` — an inbound ack acknowledges data the
    trace never shows being sent.
2.  ``sequence_gap`` — the sender's data stream skips sequence space
    it never sent before; senders cannot skip ahead.
3.  ``window_violation`` — data sent beyond the congestion/offered
    window as computed for the traced implementation; requires the
    behavior model, and is the most powerful check (§3.1.1).
4.  ``fast_retransmit_without_dups`` — a fast retransmission appears
    but the trace records fewer duplicate acks than the threshold.
5.  ``ack_regression`` — an endpoint's cumulative ack goes backwards;
    rcv_nxt is monotone, so records are missing or reordered.
6.  ``dup_acks_without_cause`` — duplicate acks recorded without any
    out-of-order arrival to provoke them (receiver vantage).
7.  ``stretch_ack_gap`` — an outbound ack advances over data the
    receiver-side trace never shows arriving.
8.  ``retransmission_of_unseen`` — a retransmitted segment whose
    original transmission never appears in the trace.

With the columnar backend each check first runs a vectorized *screen*
over the arrays.  For checks whose per-record state is a plain running
maximum (1, 2, 5, 6, 8) the screen is exact — it finds evidence iff
the loop would — so the original loop (which builds the evidence
objects) only runs when there is evidence to report, which calibrated
traces almost never have.  Check 4's screen is a conservative superset
(any retransmission at all); check 7's receiver-side contiguity merge
has no cheap vector bound and keeps its loop unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.params import TCPBehavior
from repro.trace.columns import numpy_module
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_diff, seq_gt, seq_le, seq_lt

#: Sentinel for "no sequence value yet" in screen running maxima —
#: far below any unwrapped sequence number.
_FLOOR = -(2**62)


@dataclass(frozen=True)
class DropEvidence:
    """One piece of evidence that the filter dropped packets."""

    check: str
    time: float
    detail: str
    record: TraceRecord | None = None


def run_drop_checks(trace: Trace,
                    behavior: TCPBehavior | None = None,
                    vantage: str | None = None,
                    sender_analysis=None) -> list[DropEvidence]:
    """Run the checks valid at this trace's vantage point.

    Vantage matters (§3.2): a sequence gap at the *sender* proves the
    filter missed a send (senders cannot skip sequence space), but at
    the *receiver* it is an ordinary network drop; an unprovoked dup
    ack proves drops only at the receiver; and so on.  The behavior-
    dependent checks (window violation, fast-retransmit dup counting)
    need *behavior* and are skipped without it.  *sender_analysis*
    supplies an already-computed replay of (*trace*, *behavior*) so
    the window-violation check need not run its own.
    """
    if not trace.records:
        return []
    try:
        flow = trace.primary_flow()
    except ValueError:
        return []
    from repro.core.vantage import infer_vantage
    if vantage is None:
        vantage = infer_vantage(trace)

    evidence: list[DropEvidence] = []
    if vantage == "sender":
        evidence += check_ack_for_unseen_data(trace, flow)
        evidence += check_sequence_gap(trace, flow)
        evidence += check_retransmission_of_unseen(trace, flow)
        if behavior is not None:
            evidence += check_window_violation(trace, flow, behavior,
                                               sender_analysis)
            evidence += check_fast_retransmit_without_dups(trace, flow,
                                                           behavior)
    else:
        evidence += check_stretch_ack_gap(trace, flow)
        evidence += check_dup_acks_without_cause(trace, flow)
        evidence += check_ack_regression(trace, flow)
    evidence.sort(key=lambda e: e.time)
    return evidence


def check_ack_for_unseen_data(trace: Trace, flow) -> list[DropEvidence]:
    """Check 1: acks acknowledging data the trace never recorded."""
    columns = trace.columns()
    if columns.is_vector and not _screen_ack_for_unseen(columns, flow):
        return []
    evidence = []
    highest_sent = None
    for record in trace:
        if record.flow == flow and (record.payload > 0 or record.is_syn
                                    or record.is_fin):
            if highest_sent is None or seq_gt(record.seq_end, highest_sent):
                highest_sent = record.seq_end
        elif record.flow == flow.reversed() and record.has_ack \
                and not record.is_syn:
            if highest_sent is not None and seq_gt(record.ack, highest_sent):
                evidence.append(DropEvidence(
                    "ack_for_unseen_data", record.timestamp,
                    f"ack {record.ack} exceeds highest recorded data "
                    f"{highest_sent}", record))
                highest_sent = record.ack  # resync; report each gap once
    return evidence


def check_sequence_gap(trace: Trace, flow) -> list[DropEvidence]:
    """Check 2: the data stream skips never-before-sent sequence space."""
    columns = trace.columns()
    if columns.is_vector and not _screen_sequence_gap(columns, flow):
        return []
    evidence = []
    highest_sent = None
    for record in trace:
        if record.flow != flow or record.payload == 0:
            continue
        if highest_sent is not None and seq_gt(record.seq, highest_sent):
            evidence.append(DropEvidence(
                "sequence_gap", record.timestamp,
                f"data jumps from {highest_sent} to {record.seq} "
                f"({seq_diff(record.seq, highest_sent)} bytes unrecorded)",
                record))
        if highest_sent is None or seq_gt(record.seq_end, highest_sent):
            highest_sent = record.seq_end
    return evidence


def check_ack_regression(trace: Trace, flow) -> list[DropEvidence]:
    """Check 5: cumulative acknowledgements are monotone."""
    columns = trace.columns()
    if columns.is_vector and not _screen_ack_regression(columns, flow):
        return []
    evidence = []
    highest_ack = None
    reverse = flow.reversed()
    for record in trace:
        if record.flow != reverse or not record.has_ack or record.is_syn:
            continue
        if highest_ack is not None and seq_lt(record.ack, highest_ack):
            evidence.append(DropEvidence(
                "ack_regression", record.timestamp,
                f"ack regressed from {highest_ack} to {record.ack}", record))
        if highest_ack is None or seq_gt(record.ack, highest_ack):
            highest_ack = record.ack
    return evidence


def check_dup_acks_without_cause(trace: Trace, flow) -> list[DropEvidence]:
    """Check 6: duplicate acks must be provoked by data arrivals.

    At the receiver's vantage every dup ack follows the arrival that
    provoked it (out-of-order or duplicate data).  A dup ack with no
    arrival since the previous ack means an arrival went unrecorded.
    At the sender's vantage arrivals are invisible, so the check is
    only meaningful for receiver-side traces; it keys on whether the
    trace shows any data *arriving* at the acking endpoint.
    """
    columns = trace.columns()
    if columns.is_vector and not _screen_dup_acks(columns, flow):
        return []
    evidence = []
    reverse = flow.reversed()
    arrivals_since_ack = 0
    last_ack = None
    saw_arrival = False
    for record in trace:
        if record.flow == flow and (record.payload > 0 or record.is_fin):
            arrivals_since_ack += 1
            saw_arrival = True
        elif record.flow == reverse and record.has_ack and not record.is_syn:
            if (saw_arrival and last_ack is not None
                    and record.ack == last_ack and record.payload == 0
                    and arrivals_since_ack == 0 and not record.is_fin):
                evidence.append(DropEvidence(
                    "dup_acks_without_cause", record.timestamp,
                    f"duplicate ack {record.ack} with no recorded arrival "
                    f"to provoke it", record))
            last_ack = record.ack
            arrivals_since_ack = 0
    return evidence


def check_stretch_ack_gap(trace: Trace, flow) -> list[DropEvidence]:
    """Check 7: an ack advancing over data never recorded arriving.

    Receiver-vantage version of check 1: the acking endpoint's own
    outbound acks can only cover data the trace shows arriving.
    """
    evidence = []
    reverse = flow.reversed()
    rcv_high = None    # highest contiguous arrival boundary seen
    seen: list[tuple[int, int]] = []
    for record in trace:
        if record.flow == flow and (record.payload > 0 or record.is_syn
                                    or record.is_fin):
            seen.append((record.seq, record.seq_end))
            if rcv_high is None:
                rcv_high = record.seq_end
            changed = True
            while changed:
                changed = False
                for start, end in seen:
                    if seq_le(start, rcv_high) and seq_gt(end, rcv_high):
                        rcv_high = end
                        changed = True
        elif record.flow == reverse and record.has_ack and not record.is_syn:
            if rcv_high is not None and seq_gt(record.ack, rcv_high):
                evidence.append(DropEvidence(
                    "stretch_ack_gap", record.timestamp,
                    f"ack {record.ack} covers data never recorded "
                    f"arriving (recorded through {rcv_high})", record))
                rcv_high = record.ack
    return evidence


def check_retransmission_of_unseen(trace: Trace, flow) -> list[DropEvidence]:
    """Check 8: a segment is re-sent whose original never appears.

    A retransmission is identifiable as data below the highest sent
    sequence; its start must match some earlier record's start.
    """
    columns = trace.columns()
    if columns.is_vector and not _screen_retransmission_of_unseen(columns,
                                                                  flow):
        return []
    evidence = []
    highest_sent = None
    starts_seen: set[int] = set()
    for record in trace:
        if record.flow != flow or record.payload == 0:
            continue
        if (highest_sent is not None and seq_lt(record.seq, highest_sent)
                and record.seq not in starts_seen):
            evidence.append(DropEvidence(
                "retransmission_of_unseen", record.timestamp,
                f"retransmission of {record.seq} whose original "
                f"transmission is unrecorded", record))
        starts_seen.add(record.seq)
        if highest_sent is None or seq_gt(record.seq_end, highest_sent):
            highest_sent = record.seq_end
    return evidence


# ---------------------------------------------------------------------------
# Columnar screens.  Each answers "could the corresponding loop find any
# evidence?" from the arrays alone.  Sequence values are unwrapped
# relative to the first relevant record (``columns.rel``), under the
# same <2**31-span assumption the modular helpers make.
# ---------------------------------------------------------------------------


def _screen_ack_for_unseen(columns, flow) -> bool:
    """Exact vector form of check 1's running maximum.

    ``highest_sent`` is a running max over sent-segment ends and
    evidence-resync acks; non-evidence acks never exceed it, so a
    running max over *all* post-first-send contributions is identical
    state, and evidence exists iff some ack strictly exceeds the
    maximum of everything before it.
    """
    np = numpy_module()
    fid = columns.flow_id(flow)
    rid = columns.reverse_id(fid)
    ids = columns.flow_ids
    sent = (ids == fid) & (columns.is_data | columns.is_syn | columns.is_fin)
    if rid < 0 or not sent.any():
        return False
    ackr = (ids == rid) & columns.has_ack & ~columns.is_syn
    if not ackr.any():
        return False
    base = int(columns.seq[int(np.flatnonzero(sent)[0])])
    floor = np.int64(_FLOOR)
    contrib = np.full(columns.n, floor)
    contrib[sent] = columns.rel(columns.seq_end[sent], base)
    seen = np.cumsum(sent) > 0
    sent_before = np.concatenate(([False], seen[:-1]))
    live_ack = ackr & sent_before       # acks before any send never count
    contrib[live_ack] = columns.rel(columns.ack[live_ack], base)
    running = np.maximum.accumulate(contrib)
    running_excl = np.concatenate(([floor], running[:-1]))
    return bool(np.any(live_ack
                       & (columns.rel(columns.ack, base) > running_excl)))


def _screen_sequence_gap(columns, flow) -> bool:
    """Exact vector form of check 2: data start above the prior max end."""
    np = numpy_module()
    idx = columns.indices("data", columns.flow_id(flow))
    if len(idx) < 2:
        return False
    base = int(columns.seq[int(idx[0])])
    seq = columns.rel(columns.seq[idx], base)
    end = columns.rel(columns.seq_end[idx], base)
    running = np.maximum.accumulate(end)
    return bool(np.any(seq[1:] > running[:-1]))


def _screen_ack_regression(columns, flow) -> bool:
    """Exact vector form of check 5: an ack below the prior ack max."""
    np = numpy_module()
    fid = columns.flow_id(flow)
    rid = columns.reverse_id(fid)
    if rid < 0:
        return False
    ids = columns.flow_ids
    idx = np.flatnonzero((ids == rid) & columns.has_ack & ~columns.is_syn)
    if idx.size < 2:
        return False
    ack = columns.rel(columns.ack[idx], int(columns.ack[int(idx[0])]))
    running = np.maximum.accumulate(ack)
    return bool(np.any(ack[1:] < running[:-1]))


def _screen_dup_acks(columns, flow) -> bool:
    """Exact vector form of check 6 over the event subsequence.

    ``arrivals_since_ack == 0`` with ``last_ack`` set means the
    previous *event* (arrival or ack) was an ack, so a candidate is an
    ack event whose immediate predecessor event is an ack with the
    same value, after at least one arrival, zero-payload and not FIN.
    """
    np = numpy_module()
    fid = columns.flow_id(flow)
    rid = columns.reverse_id(fid)
    if rid < 0:
        return False
    ids = columns.flow_ids
    arrival = (ids == fid) & (columns.is_data | columns.is_fin)
    ackm = (ids == rid) & columns.has_ack & ~columns.is_syn
    events = np.flatnonzero(arrival | ackm)
    if events.size < 3 or not arrival.any():
        return False
    is_ack_event = ackm[events]
    ack_values = columns.ack[events]
    prev_is_ack = np.concatenate(([False], is_ack_event[:-1]))
    prev_ack = np.concatenate(([np.int64(-1)], ack_values[:-1]))
    arrivals = np.cumsum(~is_ack_event)
    arrival_before = np.concatenate(([False], arrivals[:-1] > 0))
    return bool(np.any(is_ack_event & prev_is_ack & arrival_before
                       & (ack_values == prev_ack)
                       & (columns.payload[events] == 0)
                       & ~columns.is_fin[events]))


def _screen_retransmission_of_unseen(columns, flow) -> bool:
    """Exact vector form of check 8: a first-occurrence start below the
    prior max end is a retransmission whose original is unrecorded."""
    np = numpy_module()
    idx = columns.indices("data", columns.flow_id(flow))
    if len(idx) < 2:
        return False
    base = int(columns.seq[int(idx[0])])
    seq = columns.rel(columns.seq[idx], base)
    end = columns.rel(columns.seq_end[idx], base)
    running_excl = np.concatenate(([np.int64(_FLOOR)],
                                   np.maximum.accumulate(end)[:-1]))
    first_occurrence = np.zeros(len(idx), dtype=bool)
    first_occurrence[np.unique(seq, return_index=True)[1]] = True
    return bool(np.any(first_occurrence & (seq < running_excl)))


def _screen_fast_retransmit(columns, flow) -> bool:
    """Conservative screen for check 4: evidence needs at least one
    retransmitted data segment and some inbound acks."""
    np = numpy_module()
    fid = columns.flow_id(flow)
    rid = columns.reverse_id(fid)
    if rid < 0:
        return False
    ids = columns.flow_ids
    if not (((ids == rid) & columns.has_ack & ~columns.is_syn).any()):
        return False
    idx = columns.indices("data", fid)
    if len(idx) < 2:
        return False
    base = int(columns.seq[int(idx[0])])
    seq = columns.rel(columns.seq[idx], base)
    end = columns.rel(columns.seq_end[idx], base)
    running = np.maximum.accumulate(end)
    return bool(np.any(seq[1:] < running[:-1]))


def check_window_violation(trace: Trace, flow,
                           behavior: TCPBehavior,
                           sender_analysis=None) -> list[DropEvidence]:
    """Check 3: data beyond the computed congestion window (§3.1.1).

    The most powerful check: it requires understanding exactly how the
    traced implementation manages its congestion window, which the
    sender analyzer provides.  A violation here, on a trace whose
    implementation is otherwise known-good, indicates the filter
    dropped the ack(s) that would have opened the window.
    """
    if sender_analysis is not None:
        analysis = sender_analysis
    else:
        from repro.core.sender.analyzer import TraceUnusable, analyze_sender
        try:
            analysis = analyze_sender(trace, behavior)
        except (TraceUnusable, ValueError):
            return []
    return [DropEvidence("window_violation", v.record.timestamp,
                         v.note, v.record)
            for v in analysis.violations]


def check_fast_retransmit_without_dups(trace: Trace, flow,
                                       behavior: TCPBehavior
                                       ) -> list[DropEvidence]:
    """Check 4: fast retransmissions need their duplicate acks.

    If the traced TCP fast-retransmits (re-sends snd_una without a
    timeout-scale pause) but the trace shows fewer dup acks than the
    implementation's threshold, the filter missed acks.
    """
    if not behavior.fast_retransmit:
        return []
    columns = trace.columns()
    if columns.is_vector and not _screen_fast_retransmit(columns, flow):
        return []
    evidence = []
    reverse = flow.reversed()
    highest_sent = None
    last_advance_time = None
    dup_count = 0
    dup_level = None
    for record in trace:
        if record.flow == reverse and record.has_ack and not record.is_syn:
            if dup_level is not None and record.ack == dup_level \
                    and record.payload == 0:
                dup_count += 1
            else:
                dup_level = record.ack
                dup_count = 0
                last_advance_time = record.timestamp
        elif record.flow == flow and record.payload > 0:
            if highest_sent is not None and seq_lt(record.seq, highest_sent):
                quick = (last_advance_time is not None
                         and record.timestamp - last_advance_time < 0.15)
                if (quick and dup_level is not None
                        and record.seq == dup_level
                        and 0 < dup_count < behavior.dup_ack_threshold):
                    evidence.append(DropEvidence(
                        "fast_retransmit_without_dups", record.timestamp,
                        f"fast retransmission of {record.seq} after only "
                        f"{dup_count} recorded dup acks "
                        f"(threshold {behavior.dup_ack_threshold})", record))
            if highest_sent is None or seq_gt(record.seq_end, highest_sent):
                highest_sent = record.seq_end
    return evidence
