"""Measurement-duplicate ("addition") detection and removal (§3.1.2).

The IRIX 5.2/5.3 filters copied outgoing packets to the filter twice:
once when the OS scheduled them (bogus, early timing at the OS's
internal rate) and once when they departed onto the Ethernet
(accurate, rate-limited timing) — Figure 1 of the paper.

A measurement duplicate differs from a genuine TCP retransmission or
network duplication in its signature: header-identical, recorded a few
hundred microseconds to a few milliseconds apart, with *no intervening
reverse-direction traffic* that could have provoked a retransmission.
tcpanaly copes by discarding the later copy; so do we.

:func:`slope_analysis` extracts the two apparent data rates (the
diagnostic evidence of Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.columns import numpy_module
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_diff

#: Copies further apart than this are not measurement duplicates —
#: even the fastest genuine retransmissions (Solaris's broken timer)
#: take ≥ ~200 ms.
DUPLICATE_WINDOW = 0.050


@dataclass(frozen=True)
class DuplicateEvent:
    """A detected measurement duplicate: the pair of records."""

    first: TraceRecord
    second: TraceRecord

    @property
    def spacing(self) -> float:
        return self.second.timestamp - self.first.timestamp


def _header_key(record: TraceRecord) -> tuple:
    return (record.src, record.dst, record.seq, record.ack, record.flags,
            record.payload, record.window, record.mss_option)


def detect_duplicates(trace: Trace, vantage: str | None = None,
                      behavior=None) -> list[DuplicateEvent]:
    """Find measurement-duplicate pairs in recording order.

    Only packets *outbound from the vantage host* are candidates: the
    double-copy defect occurs in the sending machine's own output path
    (§3.1.2).  A repeat is genuine TCP traffic — not a measurement
    artifact — when something could have *provoked* it:

    * a repeated outbound **ack** is a duplicate ack whenever any data
      arrived between the copies (receivers ack what arrives);
    * a repeated outbound **data** packet is a retransmission whenever
      an inbound dup-ack train reached the implementation's trigger
      threshold between the copies — three for fast retransmit, a
      single dup ack for Linux 1.0's flight bursts (§8.5).  Knowing
      the traced implementation (*behavior*) sharpens this; without
      it the standard threshold of three is assumed.

    Timeout-driven repeats need no inbound traffic but sit at RTO
    scale, outside the 50 ms window.
    """
    if not trace.records:
        return []
    from repro.core.vantage import infer_vantage
    if vantage is None:
        vantage = infer_vantage(trace)
    try:
        flow = trace.primary_flow()
    except ValueError:
        return []
    outbound_flow = flow if vantage == "sender" else flow.reversed()
    columns = trace.columns()
    if columns.is_vector and \
            not _has_close_header_repeat(columns,
                                         columns.flow_id(outbound_flow)):
        return []
    if behavior is not None and behavior.dup_ack_triggers_flight_retransmit:
        dup_trigger = 1
    elif behavior is not None:
        dup_trigger = behavior.dup_ack_threshold
    else:
        dup_trigger = 3

    events: list[DuplicateEvent] = []
    records = trace.records
    claimed: set[int] = set()       # indices already matched as a copy
    for i, first in enumerate(records):
        if i in claimed or first.flow != outbound_flow:
            continue
        key = _header_key(first)
        intervening_dups = 0
        last_inbound_ack: int | None = None
        provoked = False
        for j in range(i + 1, len(records)):
            second = records[j]
            if second.timestamp - first.timestamp > DUPLICATE_WINDOW:
                break
            if j in claimed:
                continue
            if _header_key(second) != key:
                if second.flow == outbound_flow:
                    continue
                if first.payload == 0 and (second.payload > 0
                                           or second.is_fin):
                    provoked = True   # data arrival explains an ack repeat
                elif first.payload > 0 and second.has_ack \
                        and second.payload == 0:
                    if second.ack == last_inbound_ack:
                        intervening_dups += 1
                    else:
                        last_inbound_ack = second.ack
                        intervening_dups = 1
                    if intervening_dups >= dup_trigger:
                        provoked = True
                if provoked:
                    break
                continue
            events.append(DuplicateEvent(first, second))
            claimed.add(j)
            break
    return events


def _has_close_header_repeat(columns, fid) -> bool:
    """Superset screen for the quadratic pair matcher: does *any*
    header-identical outbound pair sit within DUPLICATE_WINDOW?

    Sorting the flow's records by header key (timestamp last) puts
    identical headers into runs ordered by time; any qualifying pair
    implies an adjacent sorted pair within the window.  Provocation
    analysis only *removes* matches, so no-repeat means no duplicates.
    """
    np = numpy_module()
    idx = columns.indices("flow", fid)    # src/dst constant within a flow
    if len(idx) < 2:
        return False
    ts = columns.timestamp[idx]
    key_columns = (columns.seq[idx], columns.ack[idx], columns.flags[idx],
                   columns.payload[idx], columns.window[idx],
                   columns.mss_option[idx])
    order = np.lexsort((ts,) + key_columns)
    same = np.ones(len(idx) - 1, dtype=bool)
    for column in key_columns:
        in_order = column[order]
        same &= in_order[1:] == in_order[:-1]
    ts_in_order = ts[order]
    return bool(np.any(same
                       & (ts_in_order[1:] - ts_in_order[:-1]
                          <= DUPLICATE_WINDOW)))


def remove_duplicates(trace: Trace,
                      duplicates: list[DuplicateEvent] | None = None
                      ) -> Trace:
    """Return a trace with each duplicate's *later* copy discarded."""
    if duplicates is None:
        duplicates = detect_duplicates(trace)
    if not duplicates:
        return trace
    # Records are frozen dataclasses; identify later copies by identity.
    later = {id(event.second) for event in duplicates}
    return Trace(records=[r for r in trace.records if id(r) not in later],
                 vantage=trace.vantage, filter_name=trace.filter_name,
                 reported_drops=trace.reported_drops)


@dataclass
class SlopeAnalysis:
    """The two apparent data rates of a duplicated trace (Figure 1)."""

    first_copy_rate: float     # bytes/sec of the early (bogus) copies
    second_copy_rate: float    # bytes/sec of the late (wire-true) copies
    pairs: int


def slope_analysis(trace: Trace,
                   duplicates: list[DuplicateEvent] | None = None
                   ) -> SlopeAnalysis | None:
    """Estimate the data rates of the early and late copy streams.

    Only bursts tell the two slopes apart, so rates are measured
    across consecutive duplicate pairs recorded close together.
    Returns None when there are too few duplicates to measure.
    """
    if duplicates is None:
        duplicates = detect_duplicates(trace)
    data_pairs = [d for d in duplicates if d.first.payload > 0]
    if len(data_pairs) < 3:
        return None
    first_rates = []
    second_rates = []
    for previous, current in zip(data_pairs, data_pairs[1:]):
        gap_first = current.first.timestamp - previous.first.timestamp
        gap_second = current.second.timestamp - previous.second.timestamp
        advance = seq_diff(current.first.seq, previous.first.seq)
        if advance <= 0:
            continue
        if 0 < gap_first < 0.25:
            first_rates.append(advance / gap_first)
        if 0 < gap_second < 0.25:
            second_rates.append(advance / gap_second)
    if not first_rates or not second_rates:
        return None
    first_rates.sort()
    second_rates.sort()
    return SlopeAnalysis(
        first_copy_rate=first_rates[len(first_rates) // 2],
        second_copy_rate=second_rates[len(second_rates) // 2],
        pairs=len(data_pairs))
