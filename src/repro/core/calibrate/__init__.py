"""Packet-filter calibration: detecting measurement errors (§3).

Before any behavioral conclusion can be trusted, the trace itself must
be vetted.  :func:`calibrate_trace` runs the full battery:

* filter **drop** self-consistency checks (§3.1.1) — eight checks, all
  variations of "the TCP sent at an inappropriate time or failed to
  send at an appropriate one";
* measurement **duplicate** detection and removal (§3.1.2);
* **resequencing** detection (§3.1.3) — three situations;
* **timing** checks (§3.1.4) — time travel within one trace, and
  relative skew / step adjustments across a trace pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace

from repro.core.calibrate.drops import DropEvidence, run_drop_checks
from repro.core.calibrate.additions import (
    DuplicateEvent,
    detect_duplicates,
    remove_duplicates,
)
from repro.core.calibrate.resequencing import (
    ResequencingEvent,
    detect_resequencing,
)
from repro.core.calibrate.timing import (
    ClockAdjustment,
    TimeTravelEvent,
    PairedTimingAnalysis,
    analyze_trace_pair,
    detect_time_travel,
)


@dataclass
class CalibrationReport:
    """Everything the calibration battery found wrong with a trace."""

    drop_evidence: list[DropEvidence] = field(default_factory=list)
    duplicates: list[DuplicateEvent] = field(default_factory=list)
    #: Isolated header-identical pairs too few to establish the
    #: duplication phenomenon (which copies *every* outbound packet);
    #: left in the trace and reported separately.
    ambiguous_duplicates: list[DuplicateEvent] = field(default_factory=list)
    resequencing: list[ResequencingEvent] = field(default_factory=list)
    time_travel: list[TimeTravelEvent] = field(default_factory=list)
    pair_analysis: PairedTimingAnalysis | None = None
    reported_drops: int | None = None

    @property
    def clean(self) -> bool:
        """No measurement errors detected."""
        pair_issues = (self.pair_analysis is not None
                       and (self.pair_analysis.adjustments
                            or self.pair_analysis.skew_detected))
        return not (self.drop_evidence or self.duplicates
                    or self.resequencing or self.time_travel or pair_issues)

    def summary(self) -> str:
        parts = [
            f"drop evidence: {len(self.drop_evidence)}",
            f"duplicates: {len(self.duplicates)}",
            f"resequencing: {len(self.resequencing)}",
            f"time travel: {len(self.time_travel)}",
        ]
        if self.reported_drops is not None:
            parts.append(f"filter-reported drops: {self.reported_drops}")
        if self.pair_analysis is not None:
            parts.append(f"relative skew: "
                         f"{self.pair_analysis.relative_skew_ppm:+.1f} ppm"
                         f", adjustments: "
                         f"{len(self.pair_analysis.adjustments)}")
        return "; ".join(parts)


def calibrate_trace(trace: Trace, behavior: TCPBehavior | None = None,
                    peer_trace: Trace | None = None, *,
                    sender_analysis=None) -> CalibrationReport:
    """Run every calibration check applicable to *trace*.

    ``behavior`` enables the behavior-dependent drop and resequencing
    checks (the most powerful ones need to know how the traced TCP
    manages its congestion window — §3.1.1).  ``peer_trace`` enables
    the paired-trace timing analysis (§3.1.4).  ``sender_analysis``
    optionally supplies an already-computed sender replay of
    (*trace*, *behavior*) so those checks reuse it instead of
    replaying again — only honoured if duplicate removal leaves the
    trace untouched, since the replay must match the cleaned trace.
    """
    report = CalibrationReport(reported_drops=trace.reported_drops)
    report.time_travel = detect_time_travel(trace)
    pairs = detect_duplicates(trace, behavior=behavior)
    # The §3.1.2 duplication defect copies *every* outbound packet, so
    # a handful of header-identical pairs (genuine dup acks or
    # back-to-back retransmissions) does not establish it.  Demand a
    # substantial fraction of the trace before declaring additions.
    if len(pairs) >= max(3, len(trace) // 10):
        report.duplicates = pairs
    else:
        report.ambiguous_duplicates = pairs
    # Duplicates confuse every downstream check: work on the cleaned
    # trace from here on, as tcpanaly does (it discards later copies).
    cleaned = remove_duplicates(trace, report.duplicates)
    shared = sender_analysis if cleaned is trace else None
    # The behavior-dependent checks at the sender's vantage (window
    # violation, window-then-ack resequencing) both need the same
    # sender replay of the cleaned trace: compute it once here rather
    # than letting each check replay independently.
    from repro.core.vantage import infer_vantage
    vantage = infer_vantage(cleaned)
    if shared is None and behavior is not None and vantage == "sender" \
            and cleaned.records:
        from repro.core.sender.analyzer import TraceUnusable, analyze_sender
        try:
            shared = analyze_sender(cleaned, behavior)
        except (TraceUnusable, ValueError):
            shared = None
    report.resequencing = detect_resequencing(cleaned, behavior,
                                              vantage=vantage,
                                              sender_analysis=shared)
    report.drop_evidence = run_drop_checks(cleaned, behavior,
                                           vantage=vantage,
                                           sender_analysis=shared)
    if peer_trace is not None:
        report.pair_analysis = analyze_trace_pair(cleaned, peer_trace)
    return report


__all__ = [
    "CalibrationReport",
    "calibrate_trace",
    "DropEvidence",
    "run_drop_checks",
    "DuplicateEvent",
    "detect_duplicates",
    "remove_duplicates",
    "ResequencingEvent",
    "detect_resequencing",
    "ClockAdjustment",
    "TimeTravelEvent",
    "PairedTimingAnalysis",
    "analyze_trace_pair",
    "detect_time_travel",
]
