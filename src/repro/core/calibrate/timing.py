"""Timestamp calibration (§3.1.4).

Within a single trace, the only cheap validity test is that
timestamps never decrease; a decrease — "time travel" — means the
tracing machine's clock was set backwards mid-trace (observed >500
times in the paper, always BSDI 1.1 / NetBSD 1.0).

With a *pair* of traces (sender-side and receiver-side) much more is
possible: matching each packet's departure and arrival records gives
one-way delay (OWD) samples in each direction.  A relative clock
*offset* shifts forward OWDs by +δ and reverse OWDs by −δ; relative
*skew* makes the shift grow linearly; a *step adjustment* makes it
jump.  The half-difference series (OWD_fwd − OWD_rev)/2 therefore
isolates the clock terms from genuine (always-positive, noisy) network
delay, and we estimate skew by a least-squares line and adjustments by
jump detection on that series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.columns import numpy_module
from repro.trace.record import Trace, TraceRecord


@dataclass(frozen=True)
class TimeTravelEvent:
    """A backwards step between consecutive records."""

    index: int
    before: TraceRecord
    after: TraceRecord

    @property
    def magnitude(self) -> float:
        return self.before.timestamp - self.after.timestamp


def detect_time_travel(trace: Trace) -> list[TimeTravelEvent]:
    """Find every timestamp decrease in recording order."""
    records = trace.records
    columns = trace.columns()
    if columns.is_vector:
        np = numpy_module()
        ts = columns.timestamp
        return [TimeTravelEvent(i, records[i - 1], records[i])
                for i in (int(h) for h in
                          np.flatnonzero(ts[1:] < ts[:-1]) + 1)]
    events = []
    for i in range(1, len(records)):
        before, after = records[i - 1], records[i]
        if after.timestamp < before.timestamp:
            events.append(TimeTravelEvent(i, before, after))
    return events


# ---------------------------------------------------------------------------
# Paired-trace analysis.
# ---------------------------------------------------------------------------


def _occurrence_key(record: TraceRecord) -> tuple:
    """Identity of a packet irrespective of capture point."""
    return (record.src, record.dst, record.seq, record.flags,
            record.payload, record.ack)


def pair_records(trace_a: Trace, trace_b: Trace
                 ) -> list[tuple[TraceRecord, TraceRecord]]:
    """Match records across two traces of the same connection.

    Retransmissions repeat header-identical packets, so the nth
    occurrence of a key in one trace matches the nth in the other.
    Records present in only one trace (filter drops!) are unmatched.
    """
    from collections import defaultdict
    occurrences_b: dict[tuple, list[TraceRecord]] = defaultdict(list)
    for record in trace_b:
        occurrences_b[_occurrence_key(record)].append(record)
    pairs = []
    cursor: dict[tuple, int] = defaultdict(int)
    for record in trace_a:
        key = _occurrence_key(record)
        index = cursor[key]
        if index < len(occurrences_b[key]):
            pairs.append((record, occurrences_b[key][index]))
            cursor[key] = index + 1
    return pairs


@dataclass
class ClockAdjustment:
    """A detected step in the relative clock offset."""

    time: float                # approximate time of the step (trace A's clock)
    magnitude: float           # seconds; positive = A's clock jumped forward


@dataclass
class PairedTimingAnalysis:
    """Results of comparing a sender-side and receiver-side trace."""

    samples: int
    relative_offset: float             # mean (OWD_fwd - OWD_rev)/2
    relative_skew_ppm: float           # slope of the same series, in ppm
    skew_detected: bool
    adjustments: list[ClockAdjustment] = field(default_factory=list)
    unmatched_a: int = 0
    unmatched_b: int = 0


#: Relative skew below this (in parts per million) is considered noise.
SKEW_DETECTION_PPM = 20.0
#: Offset-series jumps larger than this are reported as adjustments.
ADJUSTMENT_THRESHOLD = 0.040
#: How many time segments the connection is carved into for the
#: minimum-envelope analysis.
SEGMENTS = 12


def _segment_minima(samples: list[tuple[float, float]], segments: int,
                    t0: float, t1: float) -> dict[int, tuple[float, float]]:
    """Carve (time, value) samples into a fixed time grid and return
    each segment's minimum value with its timestamp, keyed by segment.

    Queueing inflates one-way delays but never deflates them, so the
    per-segment *minimum* tracks the propagation delay plus the clock
    terms — the Paxson-style de-noising that makes skew estimation
    possible on a loaded path.  The caller supplies the grid bounds so
    both directions share segment boundaries (step detection compares
    the directions segment-by-segment).
    """
    span = max(t1 - t0, 1e-9)
    buckets: dict[int, tuple[float, float]] = {}
    for time, value in samples:
        index = min(max(int((time - t0) / span * segments), 0), segments - 1)
        current = buckets.get(index)
        if current is None or value < current[1]:
            buckets[index] = (time, value)
    return buckets


def _fit_line(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares (slope, intercept) through (time, value) points."""
    n = len(points)
    t_mean = sum(t for t, _ in points) / n
    v_mean = sum(v for _, v in points) / n
    denominator = sum((t - t_mean) ** 2 for t, _ in points)
    if denominator == 0:
        return 0.0, v_mean
    slope = sum((t - t_mean) * (v - v_mean) for t, v in points) / denominator
    return slope, v_mean - slope * t_mean


def _fit_residuals(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Least-squares slope plus the RMS residual around the fit."""
    slope, intercept = _fit_line(points)
    residuals = [(v - (slope * t + intercept)) ** 2 for t, v in points]
    rms = (sum(residuals) / len(residuals)) ** 0.5 if residuals else 0.0
    return slope, rms


def analyze_trace_pair(sender_trace: Trace,
                       receiver_trace: Trace) -> PairedTimingAnalysis:
    """Full §3.1.4 paired-trace timing analysis.

    Forward OWDs come from data packets (recorded leaving the sender
    and arriving at the receiver); reverse OWDs from acks.  Genuine
    network delay is always positive and noisy (queueing), while clock
    offset/skew/steps shift forward and reverse OWDs *oppositely* —
    so all estimates are made on per-segment minimum envelopes, and a
    clock artifact is declared only when the two directions move in
    opposite senses by comparable amounts.
    """
    pairs = pair_records(sender_trace, receiver_trace)
    flow = sender_trace.primary_flow()

    forward: list[tuple[float, float]] = []
    reverse: list[tuple[float, float]] = []
    for record_a, record_b in pairs:
        owd = record_b.timestamp - record_a.timestamp
        if record_a.flow == flow:
            forward.append((record_a.timestamp, owd))
        else:
            reverse.append((record_a.timestamp, owd))

    unmatched_a = len(sender_trace) - len(pairs)
    unmatched_b = len(receiver_trace) - len(pairs)
    if len(forward) < SEGMENTS or len(reverse) < SEGMENTS:
        return PairedTimingAnalysis(
            samples=len(forward) + len(reverse), relative_offset=0.0,
            relative_skew_ppm=0.0, skew_detected=False,
            unmatched_a=unmatched_a, unmatched_b=unmatched_b)

    all_times = [t for t, _ in forward] + [t for t, _ in reverse]
    t0, t1 = min(all_times), max(all_times)
    fwd_buckets = _segment_minima(forward, SEGMENTS, t0, t1)
    rev_buckets = _segment_minima(reverse, SEGMENTS, t0, t1)
    fwd_minima = [fwd_buckets[i] for i in sorted(fwd_buckets)]
    rev_minima = [rev_buckets[i] for i in sorted(rev_buckets)]

    # Both series carry the SAME clock term (offset_B - offset_A):
    #   forward (A sends, B receives):  b - a = +transit_fwd + clock
    #   reverse (B sends, A receives):  b - a = -transit_rev + clock
    # Genuine network delay enters each direction independently
    # (queueing only ever *adds*), so the per-direction minimum
    # envelopes each track clock skew plus that direction's residual
    # queueing drift.  Estimate from the quieter direction and demand
    # the other does not contradict it beyond its own noise.
    fwd_slope, fwd_noise = _fit_residuals(fwd_minima)
    rev_slope, rev_noise = _fit_residuals(rev_minima)
    duration = max(fwd_minima[-1][0] - fwd_minima[0][0], 1e-9)
    if fwd_noise <= rev_noise:
        skew, quiet_noise = fwd_slope, fwd_noise
        other_slope, other_noise = rev_slope, rev_noise
    else:
        skew, quiet_noise = rev_slope, rev_noise
        other_slope, other_noise = fwd_slope, fwd_noise
    skew_ppm = skew * 1e6
    allowance = 3.0 * (other_noise + quiet_noise) / duration
    # The noisier direction corroborates when it agrees within its own
    # noise — or is simply too noisy (queue-dominated) to contradict.
    consistent = (abs(other_slope - skew) <= max(allowance, 0.5 * abs(skew))
                  or other_noise / duration > abs(skew))
    # The accumulated drift must be clock-measurable: tiny ppm figures
    # over a short connection are numerical noise, not skew.
    measurable = abs(skew) * duration >= 0.0005

    offset = (sum(v for _, v in fwd_minima) / len(fwd_minima)
              + sum(v for _, v in rev_minima) / len(rev_minima)) / 2.0

    # Step adjustments: a clock step shifts BOTH envelopes by the same
    # amount in the same direction; a route change would shift only
    # one direction.  Compare segment-by-segment on the shared grid,
    # skipping segments where either direction has no sample.
    adjustments = []
    common = sorted(set(fwd_buckets) & set(rev_buckets))
    for earlier, later in zip(common, common[1:]):
        fwd_jump = fwd_buckets[later][1] - fwd_buckets[earlier][1]
        rev_jump = rev_buckets[later][1] - rev_buckets[earlier][1]
        if (abs(fwd_jump) >= ADJUSTMENT_THRESHOLD
                and abs(rev_jump) >= ADJUSTMENT_THRESHOLD
                and fwd_jump * rev_jump > 0
                and abs(fwd_jump - rev_jump)
                <= 0.5 * abs(fwd_jump + rev_jump)):
            adjustments.append(ClockAdjustment(
                time=fwd_buckets[later][0],
                magnitude=(fwd_jump + rev_jump) / 2.0))

    return PairedTimingAnalysis(
        samples=len(forward) + len(reverse), relative_offset=offset,
        relative_skew_ppm=skew_ppm,
        skew_detected=(abs(skew_ppm) >= SKEW_DETECTION_PPM
                       and consistent and measurable and not adjustments),
        adjustments=adjustments,
        unmatched_a=unmatched_a, unmatched_b=unmatched_b)
