"""Filter-resequencing detection (§3.1.3).

Resequencing — the filter recording packets in an order that does not
reflect the network — destroys cause-and-effect analysis, so tcpanaly
must notice it and distrust the trace.  Three situations give it away:

(i)   a data packet sent after a lengthy lull, followed *very shortly*
      by an ack — the real cause, recorded too late;
(ii)  a data packet sent in violation of the congestion or offered
      window, shortly followed by an ack that would have permitted it
      (this one needs the behavior model, and is delegated to the
      sender analyzer's look-ahead);
(iii) an ack for data that has not yet arrived — which then arrives
      very shortly afterward (receiver vantage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp.params import TCPBehavior
from repro.trace.columns import numpy_module
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_ge, seq_gt

#: "Very shortly": resequencing events involve time scales of a few
#: hundred microseconds to a few milliseconds (§3.1.3).
SHORTLY = 0.010
#: "A lengthy lull" before the suspicious data packet.
LULL = 0.100


@dataclass(frozen=True)
class ResequencingEvent:
    """One detected inversion of recorded cause and effect."""

    situation: str             # "lull_then_ack" (i), "window_then_ack" (ii),
    #                            "ack_before_arrival" (iii)
    time: float
    data_record: TraceRecord | None
    ack_record: TraceRecord | None
    detail: str = ""


def detect_resequencing(trace: Trace,
                        behavior: TCPBehavior | None = None,
                        vantage: str | None = None,
                        sender_analysis=None) -> list[ResequencingEvent]:
    """Run the resequencing detectors applicable at this vantage.

    *sender_analysis* supplies an already-computed replay of (*trace*,
    *behavior*) so situation (ii) need not run its own.
    """
    if not trace.records:
        return []
    try:
        flow = trace.primary_flow()
    except ValueError:
        return []
    from repro.core.vantage import infer_vantage
    if vantage is None:
        vantage = infer_vantage(trace)
    if vantage == "sender":
        events = detect_lull_then_ack(trace, flow)
        if behavior is not None:
            events += detect_window_then_ack(trace, behavior,
                                             sender_analysis)
    else:
        events = detect_ack_before_arrival(trace, flow)
    events.sort(key=lambda e: e.time)
    return events


def detect_lull_then_ack(trace: Trace, flow) -> list[ResequencingEvent]:
    """Situation (i): data after a lull, trailed closely by an ack.

    A sender that has been idle sends *because something arrived*;
    if the arrival is recorded just after instead, the filter
    reordered them.
    """
    events = []
    records = trace.records
    reverse = flow.reversed()
    for i in _lulled_data_indices(trace, flow):
        record = records[i]
        # Was there an inbound advancing ack *just before* that
        # explains the send?  If so, no anomaly.
        explained = any(
            earlier.flow == reverse and earlier.has_ack
            and record.timestamp - earlier.timestamp <= LULL
            for earlier in records[max(0, i - 6):i])
        if explained:
            continue
        for later in records[i + 1:i + 6]:
            if later.timestamp - record.timestamp > SHORTLY:
                break
            if (later.flow == reverse and later.has_ack
                    and seq_ge(later.ack, record.seq)):
                events.append(ResequencingEvent(
                    "lull_then_ack", record.timestamp, record, later,
                    f"data at {record.timestamp:.6f} after "
                    f"a lull; liberating ack recorded "
                    f"{(later.timestamp - record.timestamp) * 1e6:.0f} us "
                    f"later"))
                break
    return events


def _lulled_data_indices(trace: Trace, flow) -> list[int]:
    """Record indices of the flow's data packets sent after a > LULL
    gap since the previous data packet — situation (i)'s candidates.
    Lulls are rare, so finding them vectorially skips the per-record
    walk for almost every trace."""
    columns = trace.columns()
    if columns.is_vector:
        np = numpy_module()
        idx = columns.indices("data", columns.flow_id(flow))
        if len(idx) < 2:
            return []
        ts = columns.timestamp[idx]
        return [int(i) for i in idx[np.flatnonzero(np.diff(ts) > LULL) + 1]]
    out = []
    last_send: float | None = None
    for i, record in enumerate(trace.records):
        if record.flow != flow or record.payload == 0:
            continue
        if last_send is not None and record.timestamp - last_send > LULL:
            out.append(i)
        last_send = record.timestamp
    return out


def detect_ack_before_arrival(trace: Trace, flow) -> list[ResequencingEvent]:
    """Situation (iii): an ack for data recorded as arriving later.

    Only meaningful at the receiver's vantage, where the trace shows
    the acked data arriving; the outbound ack must never precede the
    arrival it acknowledges.
    """
    columns = trace.columns()
    if columns.is_vector and not _screen_ack_before_arrival(columns, flow):
        return []
    events = []
    records = trace.records
    reverse = flow.reversed()
    rcv_high: int | None = None
    for i, record in enumerate(records):
        if record.flow == flow and (record.payload > 0 or record.is_syn):
            if rcv_high is None or seq_gt(record.seq_end, rcv_high):
                rcv_high = record.seq_end
        elif (record.flow == reverse and record.has_ack
              and not record.is_syn):
            if rcv_high is None or not seq_gt(record.ack, rcv_high):
                continue
            # The ack covers unseen data: does it arrive very shortly?
            for later in records[i + 1:i + 6]:
                if later.timestamp - record.timestamp > SHORTLY:
                    break
                if (later.flow == flow and later.payload > 0
                        and seq_ge(later.seq_end, record.ack)):
                    events.append(ResequencingEvent(
                        "ack_before_arrival", record.timestamp, later,
                        record,
                        f"ack {record.ack} precedes the arrival it "
                        f"acknowledges by "
                        f"{(later.timestamp - record.timestamp) * 1e6:.0f} "
                        f"us"))
                    rcv_high = record.ack
                    break
    return events


def _screen_ack_before_arrival(columns, flow) -> bool:
    """Superset screen for situation (iii): candidates are acks above
    the running max of arrival ends.  The loop's resync only *raises*
    ``rcv_high``, so the arrival-only running max is a lower bound and
    every real event is a candidate."""
    np = numpy_module()
    fid = columns.flow_id(flow)
    rid = columns.reverse_id(fid)
    ids = columns.flow_ids
    arrival = (ids == fid) & (columns.is_data | columns.is_syn)
    if rid < 0 or not arrival.any():
        return False
    ackm = (ids == rid) & columns.has_ack & ~columns.is_syn
    if not ackm.any():
        return False
    base = int(columns.seq[int(np.flatnonzero(arrival)[0])])
    floor = np.int64(-(2**62))
    contrib = np.full(columns.n, floor)
    contrib[arrival] = columns.rel(columns.seq_end[arrival], base)
    running = np.maximum.accumulate(contrib)
    running_excl = np.concatenate(([floor], running[:-1]))
    arrived_before = np.concatenate(([False],
                                     (np.cumsum(arrival) > 0)[:-1]))
    return bool(np.any(ackm & arrived_before
                       & (columns.rel(columns.ack, base) > running_excl)))


def detect_window_then_ack(trace: Trace,
                           behavior: TCPBehavior,
                           sender_analysis=None) -> list[ResequencingEvent]:
    """Situation (ii): window-violating data explained by a
    just-after ack — found by the sender analyzer's look-ahead."""
    if sender_analysis is not None:
        analysis = sender_analysis
    else:
        from repro.core.sender.analyzer import TraceUnusable, analyze_sender
        try:
            analysis = analyze_sender(trace, behavior)
        except (TraceUnusable, ValueError):
            return []
    return [
        ResequencingEvent("window_then_ack", clue.record.timestamp,
                          clue.record, None, clue.note)
        for clue in analysis.resequencing_clues
    ]
