"""The classified analysis-error taxonomy.

The paper's corpus ran to ~40,000 wild traces precisely because one
pathological trace never sank the run (Table 1, §4).  Everything the
pipeline can fail on is folded into one of five stable kinds, so a
quarantined trace carries a machine-readable reason instead of a bare
stringified exception:

``decode``
    The input was not an analyzable trace: bad pcap magic, truncated
    framing, malformed TCP, an empty capture.  Deterministic — the
    same bytes fail the same way, so these payloads are cacheable.
``io``
    The input could not be read at all: missing file, permission
    denied, a directory where a capture was expected.  Possibly
    transient, never cached.
``model``
    The trace decoded but the analysis model blew up on it — a
    ``KeyError``, ``RecursionError``, arithmetic surprise, or any
    other defect the wild trace tickled.  Deterministic for a given
    catalog, so cacheable, and the payload names the stage that died.
``timeout``
    The analysis exceeded its per-trace wall-clock budget and the
    supervisor killed it.
``crash``
    The worker process died outright (segfault, OOM-kill, injected
    ``os._exit``) and the retry budget ran out.
``cancelled``
    The work was withdrawn before analysis — the serve daemon pulled
    queued flows of a circuit-breaker-quarantined source back out of
    the pool.  Always transient: never journaled, never sunk, so a
    restart (or a recovered source) re-analyzes from scratch.
"""

from __future__ import annotations

import struct

#: Every kind a quarantined payload's ``error_kind`` may carry.
ERROR_KINDS = ("decode", "io", "model", "timeout", "crash", "cancelled")


class AnalysisError(Exception):
    """A classified per-trace analysis failure.

    ``kind`` is one of :data:`ERROR_KINDS`; ``stage`` optionally names
    the analysis stage that raised (see :func:`annotate_stage`).
    """

    def __init__(self, kind: str, message: str, stage: str | None = None):
        if kind not in ERROR_KINDS:
            raise ValueError(f"unknown error kind: {kind!r}")
        super().__init__(message)
        self.kind = kind
        self.stage = stage

    @property
    def message(self) -> str:
        return self.args[0]

    def to_fields(self) -> dict:
        """The JSONL-payload fields for this failure."""
        fields = {"error": self.message, "error_kind": self.kind}
        if self.stage is not None:
            fields["error_stage"] = self.stage
        return fields


def annotate_stage(error: BaseException, stage: str) -> None:
    """Tag *error* with the analysis stage it escaped from.

    The first (innermost) annotation wins; re-raising through outer
    stages must not relabel the failure.
    """
    if getattr(error, "analysis_stage", None) is None:
        error.analysis_stage = stage


def classify_exception(error: BaseException) -> AnalysisError:
    """Fold any exception into the taxonomy.

    ``ValueError`` (including ``PacketDecodeError``, ``TraceUnusable``,
    and ``struct.error``) means the bytes were not an analyzable
    trace; ``OSError`` means they could not be read; everything else
    is a defect in the analysis model itself.  ``timeout`` and
    ``crash`` never arrive as exceptions — the supervisor assigns them
    from outside the worker.
    """
    if isinstance(error, AnalysisError):
        return error
    stage = getattr(error, "analysis_stage", None)
    if isinstance(error, (ValueError, struct.error)):
        return AnalysisError("decode", str(error), stage=stage)
    if isinstance(error, OSError):
        return AnalysisError("io", str(error), stage=stage)
    return AnalysisError("model", f"{type(error).__name__}: {error}",
                         stage=stage)
