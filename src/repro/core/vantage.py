"""Vantage-point determination.

Several calibration checks are only valid at one end of the connection
(§3.1.1): a sequence gap proves filter drops at the *sender* but is an
ordinary network drop at the receiver; an unprovoked dup ack proves
drops at the *receiver* but is meaningless at the sender.  The trace's
metadata usually says where the filter sat; when it does not, the
vantage is inferable from response timing: at the sender's vantage,
data packets chase arriving acks within the kernel's sub-millisecond
response delay, while at the receiver's, acks chase arriving data.
"""

from __future__ import annotations

from repro.trace.record import Trace

#: A response gap below this is "kernel-speed": the responder is local.
LOCAL_RESPONSE = 0.002


def infer_vantage(trace: Trace) -> str:
    """Return ``"sender"`` or ``"receiver"`` for *trace*.

    Uses the trace's own ``vantage`` metadata when present; otherwise
    measures which endpoint responds at kernel speed.
    """
    if trace.vantage in ("sender", "receiver"):
        return trace.vantage
    try:
        flow = trace.primary_flow()
    except ValueError:
        return "sender"
    reverse = flow.reversed()

    columns = trace.columns()
    if columns.is_vector:
        from repro.trace.columns import numpy_module
        np = numpy_module()
        ids = columns.flow_ids
        fid = columns.flow_id(flow)
        inbound_ack = (ids == columns.reverse_id(fid)) & columns.has_ack
        outbound_data = (ids == fid) & columns.is_data
        gap = np.diff(columns.timestamp)
        local = (gap >= 0) & (gap <= LOCAL_RESPONSE)
        ack_to_data = int(np.count_nonzero(
            local & inbound_ack[:-1] & outbound_data[1:]))
        data_to_ack = int(np.count_nonzero(
            local & outbound_data[:-1] & inbound_ack[1:]))
        return "sender" if ack_to_data >= data_to_ack else "receiver"

    ack_to_data = 0
    data_to_ack = 0
    records = trace.records
    for previous, current in zip(records, records[1:]):
        gap = current.timestamp - previous.timestamp
        if gap > LOCAL_RESPONSE or gap < 0:
            continue
        if (previous.flow == reverse and previous.has_ack
                and current.flow == flow and current.payload > 0):
            ack_to_data += 1
        elif (previous.flow == flow and previous.payload > 0
              and current.flow == reverse and current.has_ack):
            data_to_ack += 1
    return "sender" if ack_to_data >= data_to_ack else "receiver"
