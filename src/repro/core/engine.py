"""The identification engine: shared-pass candidate fitting (§5, §6).

:func:`repro.core.fit.identify_implementation` is the paper's loop at
its most literal — every catalog entry gets a full, independent
analysis — and it is the tool's hottest path.  This module produces
the *same ranking* with far less work, by exploiting structure the
exhaustive loop ignores:

* **Shared pass one.**  Fact extraction (§6.2 window inference input,
  MSS negotiation, the data/ack timelines) is candidate-independent;
  the engine computes it once per trace and hands the same
  :class:`~repro.core.sender.analyzer.SenderPassOne` /
  :class:`~repro.core.receiver.analyzer.ReceiverPassOne` to every
  candidate's pass-two replay.

* **Replay equivalence classes.**  Two candidates whose behaviors
  differ only in fields the sender replay never reads (acking policy,
  connection-establishment timers, labels) replay identically, so the
  engine replays each class once and relabels the analysis for the
  other members.  The receiver replay reads just two policy fields,
  collapsing the catalog to a handful of replays (per-candidate
  *scoring* still runs for every member — it is cheap and reads the
  full behavior).

* **Static prefilters.**  A candidate whose fixed signature
  contradicts the facts (it never offers an MSS option but the traced
  SYN carries one; the trace shows more connection SYNs than its
  retry limit allows) is disqualified without replaying at all.
  These rules assert *definitional* contradictions the replay itself
  cannot see, so a pruned candidate ranks as incorrect by fiat.

* **Branch-and-bound early abort.**  Violations score 10 points each
  and only ever accumulate (outside quench trials, whose rollback can
  retract them), so a replay whose running violation count alone
  pushes the score past :data:`~repro.core.fit.SCORE_SATURATION` —
  where the rank key saturates and ties break on name — and past the
  category-"incorrect" floor can stop: finishing it cannot change the
  ranking or any category.  Candidates are ordered best-first (a
  cheap ramp-shape signature) so a good fit completes early and the
  hopeless majority aborts within a few dozen violations.

The equivalence suite (tests/core/test_engine.py) holds the engine to
byte-identical rankings and categories against the exhaustive oracle
across the scenario corpus.
"""

from __future__ import annotations

import dataclasses

from repro.tcp.catalog import CATALOG
from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace

from repro.core.fit import (
    SCORE_SATURATION,
    CandidateFit,
    FitReport,
    ReceiverFit,
    categorize,
    rank_key,
    score_receiver_policy,
)
from repro.core.receiver.analyzer import (
    ReceiverPassOne,
    analyze_receiver,
    extract_receiver_pass_one,
)
from repro.core.sender.analyzer import (
    ConnectionFacts,
    SenderPassOne,
    TraceUnusable,
    analyze_sender,
    extract_pass_one,
)

#: TCPBehavior fields the sender replay never reads: identity labels,
#: receiver acking policy, connection-establishment and persist
#: timers, and fields consumed only by scoring or prefilters.  Two
#: behaviors equal on every *other* field replay identically.
_SENDER_IRRELEVANT = frozenset({
    "name", "version", "lineage",
    "ack_policy", "ack_every_segments", "delayed_ack_timeout",
    "ack_on_consumption", "immediate_ack_on_hole_fill",
    "response_delay",
    "initial_syn_timeout", "syn_backoff_factor", "max_syn_retries",
    "persist_interval", "persist_backoff", "max_persist_interval",
    "max_data_retries", "sends_rst_on_abort",
    "offers_mss_option",
})

#: The only TCPBehavior fields the receiver *replay* reads
#: (:func:`repro.core.receiver.analyzer._arrival`); scoring reads
#: more, but scoring runs per candidate anyway.
_RECEIVER_RELEVANT = ("immediate_ack_on_hole_fill", "ack_on_consumption")


def sender_signature(behavior: TCPBehavior) -> tuple:
    """Hashable key under which sender replays are interchangeable."""
    return tuple(getattr(behavior, f.name)
                 for f in dataclasses.fields(behavior)
                 if f.name not in _SENDER_IRRELEVANT)


def receiver_signature(behavior: TCPBehavior) -> tuple:
    """Hashable key under which receiver replays are interchangeable."""
    return tuple(getattr(behavior, f) for f in _RECEIVER_RELEVANT)


def prefilter_reason(facts: ConnectionFacts,
                     behavior: TCPBehavior) -> str:
    """Why *behavior* is statically impossible for *facts* ("" if not).

    Only definitional contradictions belong here — facts the replay
    does not check, where the behavior admits no trace that looks
    like this one.
    """
    if facts.offered_mss_option and not behavior.offers_mss_option:
        return ("trace SYN carries an MSS option; candidate never "
                "offers one")
    if facts.syn_count > behavior.max_syn_retries + 1:
        return (f"trace shows {facts.syn_count} connection SYNs; "
                f"candidate retries at most {behavior.max_syn_retries} "
                f"times")
    return ""


def prefit_penalty(facts: ConnectionFacts, behavior: TCPBehavior) -> int:
    """Best-first ordering heuristic: 0 = promising, 1 = doubtful.

    A stack whose initial ssthresh is a single segment ramps linearly
    from the start, so its early flight stays small; an exponential
    opener blows past a few segments within the first few sends.
    Ordering only — never affects the ranking, just how soon a good
    fit completes and arms the early-abort bound.
    """
    slow_opener = behavior.initial_ssthresh_segments == 1
    looks_slow = (facts.early_peak_flight
                  <= 4 * max(facts.negotiated_mss, 1))
    return 0 if slow_opener == looks_slow else 1


class IdentificationEngine:
    """Shared-pass, pruning, early-aborting candidate identification.

    Stateless between traces apart from the candidate grouping, so a
    single instance threads safely through a whole batch or stream
    run.  The switches exist for the equivalence suite and ablation
    benchmarks; production callers use the defaults.
    """

    def __init__(self, candidates: dict[str, TCPBehavior] | None = None, *,
                 prefilter: bool = True, early_abort: bool = True,
                 share_replays: bool = True):
        self.candidates = dict(candidates or CATALOG)
        self.prefilter = prefilter
        self.early_abort = early_abort
        self.share_replays = share_replays
        names = sorted(self.candidates)
        if share_replays:
            sender_groups: dict[tuple, list[str]] = {}
            receiver_groups: dict[tuple, list[str]] = {}
            for name in names:
                behavior = self.candidates[name]
                sender_groups.setdefault(
                    sender_signature(behavior), []).append(name)
                receiver_groups.setdefault(
                    receiver_signature(behavior), []).append(name)
            self._sender_groups = list(sender_groups.values())
            self._receiver_groups = list(receiver_groups.values())
        else:
            self._sender_groups = [[name] for name in names]
            self._receiver_groups = [[name] for name in names]

    # -- sender side -------------------------------------------------------

    def identify_sender(self, trace: Trace | None = None, *,
                        pass_one: SenderPassOne | None = None) -> FitReport:
        """Rank every candidate against the trace (engine path)."""
        if pass_one is None:
            try:
                pass_one = extract_pass_one(trace)
            except (TraceUnusable, ValueError):
                return self._all_unusable()
        facts = pass_one.facts

        fits: list[CandidateFit] = []
        runnable: list[list[str]] = []
        for group in self._sender_groups:
            # Prefilter per member: the rules read exactly the fields
            # the replay signature excludes, so one replay class can
            # contain both pruned and surviving candidates.
            survivors = []
            for name in group:
                reason = ""
                if self.prefilter:
                    reason = prefilter_reason(facts, self.candidates[name])
                if reason:
                    fits.append(CandidateFit(name, "incorrect",
                                             pruned_reason=reason))
                else:
                    survivors.append(name)
            if survivors:
                runnable.append(survivors)
        runnable.sort(key=lambda group: (
            prefit_penalty(facts, self.candidates[group[0]]), group[0]))

        best_completed: float | None = None
        for group in runnable:
            behavior = self.candidates[group[0]]
            bound: float | None = None
            if self.early_abort:
                bound = (SCORE_SATURATION if best_completed is None
                         else max(best_completed, SCORE_SATURATION))
            analysis = analyze_sender(None, behavior, group[0],
                                      pass_one=pass_one, abort_score=bound)
            if analysis.replay_aborted:
                lower_bound = analysis.violation_count * 10.0
                for name in group:
                    labelled = self._relabel(analysis, name, group[0])
                    fits.append(CandidateFit(name, "incorrect", labelled,
                                             lower_bound, aborted=True))
                continue
            score = (analysis.violation_count * 10.0
                     + analysis.mean_response_delay)
            category = categorize(analysis)
            for name in group:
                labelled = self._relabel(analysis, name, group[0])
                fits.append(CandidateFit(name, category, labelled, score))
            if best_completed is None or score < best_completed:
                best_completed = score
        fits.sort(key=rank_key)
        return FitReport(fits=fits)

    def _relabel(self, analysis, name: str, replayed_as: str):
        """The group representative's analysis, relabelled for *name*.

        A shallow field-level copy: the classification lists are
        shared (read-only downstream), only the identity differs.
        """
        if name == replayed_as:
            return analysis
        return dataclasses.replace(analysis, implementation=name,
                                   behavior=self.candidates[name])

    def _all_unusable(self) -> FitReport:
        fits = [CandidateFit(name, "unusable")
                for name in sorted(self.candidates)]
        return FitReport(fits=fits)

    # -- receiver side -----------------------------------------------------

    def identify_receiver(self, trace: Trace | None = None, *,
                          pass_one: ReceiverPassOne | None = None,
                          headers_only: bool = False) -> list[ReceiverFit]:
        """Rank candidates by receiver acking policy (engine path)."""
        if pass_one is None:
            try:
                pass_one = extract_receiver_pass_one(trace, headers_only)
            except ValueError:
                return [ReceiverFit(name, "unusable")
                        for name in sorted(self.candidates)]
        fits: list[ReceiverFit] = []
        for group in self._receiver_groups:
            analysis = analyze_receiver(None, self.candidates[group[0]],
                                        group[0], pass_one=pass_one)
            for name in group:
                behavior = self.candidates[name]
                labelled = self._relabel(analysis, name, group[0])
                fits.append(score_receiver_policy(labelled, behavior))
        fits.sort(key=lambda f: (f.score, f.implementation))
        return fits
