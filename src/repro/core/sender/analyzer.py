"""Sender analysis: data liberations, response delays, violations (§6).

The central algorithm.  For a trace captured at (or near) the sender,
and a candidate implementation, we replay the candidate's window state
(:class:`~repro.core.sender.windows.SenderModel`) against the trace
and explain every observed data transmission:

* an *in-window send* (new data or go-back-N resend) matched against
  the window ledger, yielding a liberation time and a response delay;
* an *exceptional retransmission* — fast retransmit, timeout, a
  Linux-style whole-flight burst, or the Solaris
  retransmit-after-the-ack quirk;
* a *filter gap* — a send the real sender could never skip to,
  implying the filter dropped records; or
* a *window violation* — inexplicable under the candidate, the
  signature of either measurement error or a wrong candidate (§6.1).

Vantage-point ambiguity (§3.2) is handled by **lazy ack consumption**:
recorded acks are fed to the model only as needed to explain each data
packet, so an ack the filter recorded before the TCP acted on an
earlier one does not confuse cause and effect.  A bounded *look-ahead*
over acks recorded just after an inexplicable packet detects filter
resequencing (§3.1.3).  The paper's one-pass generic-analysis design
failed for exactly these reasons (§4); this module is the two-pass,
implementation-specific design it settled on: pass one extracts
connection facts (including the §6.2 sender-window inference), pass
two replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packets import FlowKey
from repro.tcp.params import QuenchResponse, TCPBehavior
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_diff, seq_ge, seq_gt, seq_le

from repro.core.sender.windows import SenderModel

#: How far past an inexplicable data packet to look for the ack that
#: would explain it (filter resequencing events span a few msec).
RESEQUENCING_LOOKAHEAD = 0.025
#: How many look-ahead acks to try before giving up.
RESEQUENCING_MAX_ACKS = 4
#: Fraction of the estimated RTO at which a snd_una retransmission is
#: accepted as a plausible timeout.
TIMEOUT_TOLERANCE = 0.5
#: A response delay beyond this long (and an otherwise-unexplained
#: sending lull) triggers source-quench inference for capable stacks.
QUENCH_DELAY_THRESHOLD = 0.1
#: Window within which the Solaris retransmit-after-ack quirk fires.
QUIRK_WINDOW = 0.05


@dataclass(frozen=True, slots=True)
class Classification:
    """The analyzer's explanation of one observed data packet."""

    record: TraceRecord
    kind: str                        # new/goback/fast_retransmit/timeout/
    #                                  flight/quirk/filter_gap/violation
    response_delay: float | None = None
    note: str = ""
    #: Bytes in flight (relative to the model's snd_una) after this
    #: send — used by the §6.2 sender-window inference.
    flight: int = 0


#: How many leading data packets the early-ramp statistic covers.
EARLY_RAMP_PACKETS = 10


@dataclass(slots=True)
class ConnectionFacts:
    """Pass-one facts about the traced connection."""

    flow: FlowKey
    iss: int
    irs: int
    offered_mss: int
    negotiated_mss: int
    peer_offered_mss_option: bool
    synack_time: float
    initial_offered_window: int
    max_in_flight: int
    total_data: int
    data_count: int
    fin_seen: bool
    #: Whether the traced sender's own SYN carried an MSS option —
    #: a static signature the identification engine prefilters on.
    offered_mss_option: bool = True
    #: Number of connection-opening SYNs the sender transmitted.
    syn_count: int = 1
    #: Peak bytes in flight over the first ``EARLY_RAMP_PACKETS`` data
    #: packets: separates slow-starting stacks (initial ssthresh of
    #: one segment) from exponential openers, cheaply.
    early_peak_flight: int = 0


@dataclass(slots=True)
class SenderPassOne:
    """Everything candidate-independent about a sender-side trace.

    Pass one of the paper's two-pass design (§6), made explicit: the
    connection facts plus the data/ack event timelines every
    candidate's pass-two replay consumes.  Computed once per trace by
    :func:`extract_pass_one` and shared — read-only — across all
    candidate replays, instead of being re-derived per candidate.
    """

    facts: ConnectionFacts
    #: Primary-flow data packets, in trace order.
    data: list[TraceRecord]
    #: Reverse-direction acks at/after the SYN-ack, in trace order.
    acks: list[TraceRecord]


@dataclass
class SenderAnalysis:
    """Everything the sender analysis learned from one trace."""

    implementation: str
    behavior: TCPBehavior
    facts: ConnectionFacts
    classifications: list[Classification] = field(default_factory=list)
    violations: list[Classification] = field(default_factory=list)
    resequencing_clues: list[Classification] = field(default_factory=list)
    filter_gaps: list[Classification] = field(default_factory=list)
    inferred_quenches: list[float] = field(default_factory=list)
    inferred_sender_window: int | None = None
    notes: list[str] = field(default_factory=list)
    #: True when branch-and-bound identification cut this replay short;
    #: violation/delay tallies are then lower bounds, not final values.
    replay_aborted: bool = False

    @property
    def response_delays(self) -> list[float]:
        return [c.response_delay for c in self.classifications
                if c.response_delay is not None and c.response_delay >= 0]

    @property
    def min_response_delay(self) -> float:
        delays = self.response_delays
        return min(delays) if delays else 0.0

    @property
    def mean_response_delay(self) -> float:
        delays = self.response_delays
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def max_response_delay(self) -> float:
        delays = self.response_delays
        return max(delays) if delays else 0.0

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.classifications:
            counts[c.kind] = counts.get(c.kind, 0) + 1
        return counts

    def first_violation(self) -> Classification | None:
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in
                          sorted(self.counts_by_kind().items()))
        return (f"{self.implementation}: {len(self.classifications)} data "
                f"packets ({kinds}); {self.violation_count} violations; "
                f"response delay min/mean/max = "
                f"{self.min_response_delay * 1e3:.2f}/"
                f"{self.mean_response_delay * 1e3:.2f}/"
                f"{self.max_response_delay * 1e3:.2f} ms")


class TraceUnusable(ValueError):
    """The trace lacks what sender analysis needs (handshake, data)."""


def extract_pass_one(trace: Trace) -> SenderPassOne:
    """Pass one: facts plus the data/ack timelines, in a single scan.

    Candidate-independent, so identification computes this once and
    replays every catalog entry against the same result.  With the
    numpy trace backend the scan runs as column kernels
    (:func:`_extract_pass_one_vector`); the per-record loop below is
    the pure-Python fallback and the equivalence oracle.
    """
    columns = trace.columns()
    if columns.is_vector:
        return _extract_pass_one_vector(trace, columns)
    flow = trace.primary_flow()
    reverse = flow.reversed()
    syn = next((r for r in trace if r.flow == flow and r.is_syn
                and not r.has_ack), None)
    synack = next((r for r in trace if r.flow == reverse and r.is_syn
                   and r.has_ack), None)
    if syn is None or synack is None:
        raise TraceUnusable("trace does not contain the SYN handshake")

    offered_mss = syn.mss_option if syn.mss_option is not None else 536
    peer_offered = synack.mss_option is not None
    negotiated = min(offered_mss,
                     synack.mss_option if peer_offered else 536)
    synack_time = synack.timestamp

    highest_sent = (syn.seq + 1) % 2**32
    highest_ack = highest_sent
    max_in_flight = 0
    early_peak_flight = 0
    total_data = 0
    data_count = 0
    syn_count = 0
    fin_seen = False
    data: list[TraceRecord] = []
    acks: list[TraceRecord] = []
    for record in trace:
        if record.flow == flow:
            if record.payload > 0:
                data.append(record)
                data_count += 1
                if seq_gt(record.seq_end, highest_sent):
                    total_data += seq_diff(record.seq_end, highest_sent)
                    highest_sent = record.seq_end
                in_flight = seq_diff(highest_sent, highest_ack)
                if in_flight > max_in_flight:
                    max_in_flight = in_flight
                if (data_count <= EARLY_RAMP_PACKETS
                        and in_flight > early_peak_flight):
                    early_peak_flight = in_flight
            if record.is_syn and not record.has_ack:
                syn_count += 1
            if record.is_fin:
                fin_seen = True
        elif record.flow == reverse and record.has_ack:
            if not record.is_syn and record.timestamp >= synack_time:
                acks.append(record)
            if seq_gt(record.ack, highest_ack):
                highest_ack = record.ack
    facts = ConnectionFacts(
        flow=flow, iss=syn.seq, irs=synack.seq, offered_mss=offered_mss,
        negotiated_mss=negotiated, peer_offered_mss_option=peer_offered,
        synack_time=synack_time,
        initial_offered_window=synack.window,
        max_in_flight=max_in_flight, total_data=total_data,
        data_count=data_count, fin_seen=fin_seen,
        offered_mss_option=syn.mss_option is not None,
        syn_count=max(syn_count, 1),
        early_peak_flight=early_peak_flight)
    return SenderPassOne(facts=facts, data=data, acks=acks)


def _extract_pass_one_vector(trace: Trace, columns) -> SenderPassOne:
    """The column-kernel twin of the :func:`extract_pass_one` loop.

    Sequence arithmetic runs on int64 values unwrapped around the ISS
    (``columns.rel``), where running maxima reproduce the modular
    ``seq_gt`` chain exactly for any trace spanning < 2**31 bytes of
    sequence space — the same window the modular helpers assume.
    """
    from repro.trace.columns import numpy_module
    np = numpy_module()
    primary = columns.primary_flow_id()
    in_primary = columns.flow_ids == primary
    syn_i = columns.first_index(in_primary & columns.is_syn
                                & ~columns.has_ack)
    reverse_fid = columns.reverse_id(primary)
    synack_i = -1
    if reverse_fid >= 0:
        reverse_ack = ((columns.flow_ids == reverse_fid)
                       & columns.has_ack)
        synack_i = columns.first_index(reverse_ack & columns.is_syn)
    if syn_i < 0 or synack_i < 0:
        raise TraceUnusable("trace does not contain the SYN handshake")
    syn = columns.records[syn_i]
    synack = columns.records[synack_i]

    offered_mss = syn.mss_option if syn.mss_option is not None else 536
    peer_offered = synack.mss_option is not None
    negotiated = min(offered_mss,
                     synack.mss_option if peer_offered else 536)
    synack_time = synack.timestamp

    base = syn.seq
    data_mask = in_primary & columns.is_data
    data_idx = np.flatnonzero(data_mask)
    max_in_flight = 0
    early_peak_flight = 0
    total_data = 0
    if data_idx.size:
        rel_end = columns.rel(columns.seq_end[data_idx], base)
        # Running highest_sent over data packets, floored at iss+1.
        highest_sent = np.maximum(np.maximum.accumulate(rel_end), 1)
        total_data = int(highest_sent[-1] - 1)
        # Running highest_ack *before* each record: reverse-direction
        # ack values contribute at their own index, so an exclusive
        # prefix maximum (floored at iss+1) gives the value the loop
        # holds when it reaches any given row.
        contributions = np.full(columns.n, np.int64(-2**62))
        ack_rows = np.flatnonzero(reverse_ack)
        contributions[ack_rows] = columns.rel(columns.ack[ack_rows], base)
        highest_ack_before = np.maximum.accumulate(
            np.concatenate((np.ones(1, dtype=np.int64),
                            contributions[:-1])))
        in_flight = highest_sent - highest_ack_before[data_idx]
        max_in_flight = max(0, int(in_flight.max()))
        early_peak_flight = max(0, int(in_flight[:EARLY_RAMP_PACKETS].max()))
    syn_count = int(np.count_nonzero(in_primary & columns.is_syn
                                     & ~columns.has_ack))
    fin_seen = bool(np.any(in_primary & columns.is_fin))
    ack_idx = np.flatnonzero(reverse_ack & ~columns.is_syn
                             & (columns.timestamp >= synack_time))
    facts = ConnectionFacts(
        flow=columns.flows[primary], iss=syn.seq, irs=synack.seq,
        offered_mss=offered_mss, negotiated_mss=negotiated,
        peer_offered_mss_option=peer_offered, synack_time=synack_time,
        initial_offered_window=synack.window,
        max_in_flight=max_in_flight, total_data=total_data,
        data_count=int(data_idx.size), fin_seen=fin_seen,
        offered_mss_option=syn.mss_option is not None,
        syn_count=max(syn_count, 1),
        early_peak_flight=early_peak_flight)
    return SenderPassOne(facts=facts,
                         data=columns.records_at(data_idx),
                         acks=columns.records_at(ack_idx))


def extract_facts(trace: Trace) -> ConnectionFacts:
    """Pass one: connection parameters and flight statistics."""
    return extract_pass_one(trace).facts


def analyze_sender(trace: Trace | None, behavior: TCPBehavior,
                   implementation: str | None = None, *,
                   pass_one: SenderPassOne | None = None,
                   abort_score: float | None = None) -> SenderAnalysis:
    """Analyze *trace*'s sender behavior against *behavior* (§6).

    ``pass_one`` supplies precomputed shared facts (*trace* may then be
    ``None``); ``abort_score`` enables branch-and-bound early abort —
    the replay stops, marking ``replay_aborted``, once the running
    violation count alone proves the fit score must exceed it.
    """
    if pass_one is None:
        if trace is None:
            raise TypeError("analyze_sender needs a trace or a pass_one")
        pass_one = extract_pass_one(trace)
    analysis = SenderAnalysis(
        implementation=implementation or behavior.label(),
        behavior=behavior, facts=pass_one.facts)
    _replay(pass_one, behavior, analysis, abort_score=abort_score)
    if not analysis.replay_aborted:
        _infer_sender_window(behavior, pass_one.facts, analysis)
    return analysis


# ---------------------------------------------------------------------------
# Pass two: the replay.
# ---------------------------------------------------------------------------


class _Replay:
    """Working state for one replay pass."""

    def __init__(self, pass_one: SenderPassOne, behavior: TCPBehavior,
                 analysis: SenderAnalysis):
        facts = pass_one.facts
        self.behavior = behavior
        self.facts = facts
        self.analysis = analysis
        self.model = SenderModel(
            behavior, facts.negotiated_mss, facts.iss, facts.offered_mss,
            facts.peer_offered_mss_option, facts.synack_time,
            facts.initial_offered_window)
        # Shared, read-only timelines from pass one.
        self.acks = pass_one.acks
        self.data = pass_one.data
        self.next_ack = 0
        self.flight_resend_next: int | None = None
        self.last_send_time = facts.synack_time

    # -- ack feeding -------------------------------------------------------

    def feed_ack(self) -> None:
        record = self.acks[self.next_ack]
        self.next_ack += 1
        self.model.process_ack(record)

    def acks_available_by(self, time: float) -> bool:
        return (self.next_ack < len(self.acks)
                and self.acks[self.next_ack].timestamp <= time)

    # -- explanation -------------------------------------------------------

    def try_explain(self, record: TraceRecord) -> Classification | None:
        model = self.model
        seq, end, time = record.seq, record.seq_end, record.timestamp

        if seq_gt(seq, model.snd_nxt):
            # The sender cannot skip sequence space.  Leave unexplained
            # for now: an unconsumed (or resequenced) ack may advance
            # snd_nxt to here; only once the ack supply is exhausted
            # does the replay conclude the filter dropped records.
            return None
        if (record.payload == 1 and model.offered_window == 0
                and seq == model.snd_nxt):
            # A zero-window probe from the persist timer: one byte sent
            # despite (because of) the closed window.
            return Classification(record, "window_probe")
        if seq == model.snd_nxt:
            if seq_le(end, model.allowed_high()):
                liberated = model.ledger.permissible_since(end)
                kind = ("new" if seq_ge(seq, model.highest_sent)
                        else "goback")
                delay = (time - liberated) if liberated is not None else None
                return Classification(record, kind, response_delay=delay,
                                      flight=seq_diff(end, model.snd_una))
            return None  # beyond the window as modelled so far

        # seq < snd_nxt: an out-of-band retransmission.
        if self.flight_resend_next is not None and seq == self.flight_resend_next:
            return Classification(record, "flight")
        if seq != model.snd_una:
            # A retransmission of something other than the oldest
            # outstanding data: only flight-style senders do this.
            if self.behavior.retransmit_whole_flight:
                return None
            return None
        if (self.behavior.fast_retransmit and model.expected_fast_rexmit
                and time - model.expected_fast_rexmit_time <= QUIRK_WINDOW):
            return Classification(record, "fast_retransmit")
        if (self.behavior.dup_ack_triggers_flight_retransmit
                and model.dupacks >= 1):
            return Classification(record, "flight_start",
                                  note="dup-ack-triggered flight burst")
        if (self.behavior.rexmit_packet_after_ack
                and (model.rexmit_epoch or model.quirk_expected)
                and time - model.last_advance_time <= QUIRK_WINDOW):
            return Classification(record, "quirk",
                                  note="retransmit-after-ack quirk")
        elapsed = time - model.timer_base
        if elapsed >= TIMEOUT_TOLERANCE * model.estimated_rto():
            kind = ("flight_start" if self.behavior.retransmit_whole_flight
                    else "timeout")
            return Classification(record, kind,
                                  note=f"after {elapsed * 1e3:.0f} ms, "
                                  f"RTO est {model.estimated_rto() * 1e3:.0f} ms")
        return None

    def apply(self, classification: Classification) -> None:
        model = self.model
        record = classification.record
        kind = classification.kind
        if kind in ("new", "goback"):
            model.observe_send(record, is_retransmission=(kind == "goback"))
            self.flight_resend_next = None
        elif kind == "fast_retransmit":
            model.expected_fast_rexmit = False
            model.observe_send(record, is_retransmission=True)
        elif kind == "timeout":
            model.apply_timeout(record.timestamp)
            model.observe_send(record, is_retransmission=True)
        elif kind == "flight_start":
            if record.timestamp - model.timer_base >= (
                    TIMEOUT_TOLERANCE * model.estimated_rto()):
                model.apply_timeout(record.timestamp)
            model.observe_send(record, is_retransmission=True)
            self.flight_resend_next = record.seq_end
        elif kind == "flight":
            model.mark_retransmitted(record.seq)
            self.flight_resend_next = record.seq_end
            if seq_ge(record.seq_end, model.snd_nxt):
                self.flight_resend_next = None
        elif kind == "quirk":
            model.mark_retransmitted(record.seq)
            model.quirk_expected = False
        elif kind == "window_probe":
            pass   # the probe byte is re-sent as normal data later
        elif kind == "filter_gap":
            self.analysis.filter_gaps.append(classification)
            model.force_observe(record)
        else:  # violation
            model.force_observe(record)
        self.last_send_time = record.timestamp


#: How many subsequent data packets must replay cleanly before a
#: tentative quench inference is committed — the paper's "whole series
#: is consistent with slow start having begun" verification (§6.2).
QUENCH_TRIAL_PACKETS = 12


class _QuenchTrial:
    """A tentative quench hypothesis awaiting verification."""

    def __init__(self, state: _Replay, start_index: int):
        self.start_index = start_index
        self.packets_left = QUENCH_TRIAL_PACKETS
        self.model = state.model.clone()
        self.next_ack = state.next_ack
        self.flight_resend_next = state.flight_resend_next
        self.last_send_time = state.last_send_time
        self.classifications = len(state.analysis.classifications)
        self.violations = len(state.analysis.violations)
        self.clues = len(state.analysis.resequencing_clues)
        self.gaps = len(state.analysis.filter_gaps)
        self.quenches = len(state.analysis.inferred_quenches)

    def rollback(self, state: _Replay) -> int:
        """Undo everything since the trial began; return the index to
        resume from."""
        analysis = state.analysis
        state.model = self.model
        state.next_ack = self.next_ack
        state.flight_resend_next = self.flight_resend_next
        state.last_send_time = self.last_send_time
        del analysis.classifications[self.classifications:]
        del analysis.violations[self.violations:]
        del analysis.resequencing_clues[self.clues:]
        del analysis.filter_gaps[self.gaps:]
        del analysis.inferred_quenches[self.quenches:]
        return self.start_index


def _replay(pass_one: SenderPassOne, behavior: TCPBehavior,
            analysis: SenderAnalysis,
            abort_score: float | None = None) -> None:
    state = _Replay(pass_one, behavior, analysis)
    # Early-abort bound (branch-and-bound over candidates): once the
    # violation count alone — worth 10 score points apiece — provably
    # pushes this candidate's fit score past ``abort_score`` AND past
    # the category-"incorrect" floor, finishing the replay cannot
    # change the identification outcome.  Checked only outside quench
    # trials, because a trial rollback can retract violations.
    incorrect_floor = max(1, len(state.data) // 50)

    index = 0
    trial: _QuenchTrial | None = None
    no_quench_at: set[int] = set()   # indices where the hypothesis failed
    while index < len(state.data):
        record = state.data[index]
        model = state.model
        time = record.timestamp
        classification = None
        # Feed acks lazily: only as needed, never past the packet's time.
        while True:
            classification = state.try_explain(record)
            if classification is not None:
                break
            if state.acks_available_by(time):
                state.feed_ack()
                continue
            break

        wants_quench = (
            classification is not None and classification.kind == "new"
            and classification.response_delay is not None
            and classification.response_delay > QUENCH_DELAY_THRESHOLD)
        if (wants_quench or classification is None) \
                and trial is None and index not in no_quench_at:
            # The packet is permitted but long overdue (or inexplicable):
            # hypothesize an unseen source quench (§6.2), subject to the
            # next packets replaying consistently.
            candidate_trial = _QuenchTrial(state, index)
            quenched = _quench_inference(state, record)
            if quenched is not None:
                classification = quenched
                trial = candidate_trial
        if classification is None:
            classification = _lookahead(state, record)
        if classification is None and seq_gt(record.seq, model.snd_nxt):
            classification = Classification(
                record, "filter_gap",
                note=f"gap of {seq_diff(record.seq, model.snd_nxt)} bytes "
                f"before this packet: data records missing")
        if classification is None:
            if trial is not None:
                # The post-quench series is NOT consistent: the quench
                # hypothesis fails.  Rewind and re-explain without it.
                no_quench_at.add(trial.start_index)
                index = trial.rollback(state)
                trial = None
                continue
            classification = Classification(
                record, "violation",
                note=f"model allowed up to {model.allowed_high()}, "
                f"packet ends {record.seq_end}; state {model.snapshot()}")
            analysis.violations.append(classification)

        state.apply(classification)
        analysis.classifications.append(classification)
        if trial is not None and index > trial.start_index:
            trial.packets_left -= 1
            if trial.packets_left <= 0:
                trial = None      # verified: the quench stands
        index += 1
        if (abort_score is not None and trial is None
                and len(analysis.violations) > incorrect_floor
                and len(analysis.violations) * 10.0 > abort_score):
            analysis.replay_aborted = True
            analysis.notes.append(
                f"replay aborted after {index} of {len(state.data)} data "
                f"packets: {len(analysis.violations)} violations already "
                f"exceed the best completed fit")
            return

    # Drain remaining acks so end-of-connection state is complete.
    while state.next_ack < len(state.acks):
        state.feed_ack()


def _lookahead(state: _Replay, record: TraceRecord) -> Classification | None:
    """Resequencing detection (§3.1.3): can an ack recorded just
    *after* this packet explain it?"""
    fed = 0
    while (state.next_ack < len(state.acks) and fed < RESEQUENCING_MAX_ACKS
           and state.acks[state.next_ack].timestamp
           <= record.timestamp + RESEQUENCING_LOOKAHEAD):
        state.feed_ack()
        fed += 1
        classification = state.try_explain(record)
        if classification is not None:
            clue = Classification(
                record, classification.kind,
                response_delay=classification.response_delay,
                note="explained only by an ack recorded after it: "
                "packet filter resequencing")
            state.analysis.resequencing_clues.append(clue)
            return clue
    return None


def _quench_inference(state: _Replay,
                      record: TraceRecord) -> Classification | None:
    """Source-quench inference (§6.2): a long unexplained sending lull,
    after which the send pattern is consistent with the stack's
    quench response, indicates an unseen ICMP source quench."""
    behavior = state.behavior
    if behavior.quench_response not in (
            QuenchResponse.SLOW_START,
            QuenchResponse.SLOW_START_HALVE_SSTHRESH):
        return None  # not inferable for non-slow-start responders (§6.2)
    model = state.model
    # A quench collapses the window to one segment, so the sender goes
    # *quiet* for of order a round trip.  A merely buffer-limited
    # sender (§6.2 sender window) keeps transmitting in step with the
    # ack clock; without a genuine lull, do not infer a quench.
    srtt = getattr(model.estimator, "srtt", None) or 0.1
    if record.timestamp - state.last_send_time < max(0.05, 0.5 * srtt):
        return None
    # The situation: every ack up to now is consumed, the model's window
    # would have permitted this send long ago, and the delay is large.
    if seq_gt(record.seq_end, model.allowed_high()):
        return None
    liberated = model.ledger.permissible_since(record.seq_end)
    if liberated is None:
        return None
    delay = record.timestamp - liberated
    if delay < QUENCH_DELAY_THRESHOLD:
        return None
    if record.seq != model.snd_nxt:
        return None
    # Consistent with a quench between the liberating ack and this
    # packet: apply the stack's quench response at the liberation time
    # so subsequent replay tracks the collapsed window.
    model.apply_quench(liberated)
    state.analysis.inferred_quenches.append(liberated)
    if seq_le(record.seq_end, model.allowed_high()):
        return Classification(record, "new", response_delay=None,
                              note="consistent with unseen source quench")
    # Even one segment would not fit: retract nothing, but report the
    # packet as in-window anyway (the quench window starts at snd_una).
    return Classification(record, "new", response_delay=None,
                          note="source quench inferred; window rebuilding")


def _infer_sender_window(behavior: TCPBehavior, facts: ConnectionFacts,
                         analysis: SenderAnalysis) -> None:
    """§6.2: if the connection never had more than W bytes in flight
    while the congestion and offered windows would have permitted at
    least a full segment more, infer a sender window of W."""
    large_delays = [c for c in analysis.classifications
                    if c.response_delay is not None
                    and c.response_delay > 0.1]
    if not large_delays:
        return
    window = facts.max_in_flight
    if window <= 0:
        return
    # The window binds only if the trace shows delays consistent with
    # waiting for acknowledgements at exactly the in-flight ceiling.
    at_ceiling = sum(1 for c in large_delays
                     if c.flight >= window - facts.negotiated_mss)
    if at_ceiling >= max(2, len(large_delays) // 2):
        analysis.inferred_sender_window = window
        analysis.notes.append(
            f"inferred sender window of {window} bytes "
            f"({at_ceiling} delayed sends at the in-flight ceiling)")
