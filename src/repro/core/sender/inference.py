"""Inference of hidden sender parameters (§6.2).

§6.2 names three pieces of state a trace never shows directly: the
sender window, unseen source quenches (both handled inside the replay,
:mod:`repro.core.sender.analyzer`), and a *non-default initial
ssthresh* — "if a TCP uses information present in its route cache to
guide its choice in how to initialize a connection's
congestion-related parameters".  None of the paper's production TCPs
did so, but "an experimental TCP that tcpanaly also knows about does"
(details deferred to [Pa97b]); the catalog's ``experimental-rc`` entry
reconstructs it.

The inference here recovers the initial ssthresh from the window
trajectory: group the transfer into ack-clocked rounds, watch the
per-round flight size, and find where exponential (slow start) growth
turns linear (congestion avoidance).  A transition *before any loss
event* can only come from the initial ssthresh; its flight size is the
estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.record import Trace
from repro.units import seq_diff, seq_ge, seq_gt

from repro.core.sender.analyzer import ConnectionFacts, extract_facts


@dataclass(frozen=True)
class SsthreshEstimate:
    """Result of the initial-ssthresh inference."""

    transition_flight: int      # bytes in flight when growth turned linear
    round_index: int            # which ack round the transition began
    before_any_loss: bool       # only then does it reflect the *initial* value

    @property
    def non_default(self) -> bool:
        """A pre-loss transition means ssthresh was initialized below
        the customary effectively-unlimited default."""
        return self.before_any_loss


def flight_rounds(trace: Trace,
                  facts: ConnectionFacts | None = None) -> list[int]:
    """Per-round flight sizes (bytes), rounds delimited by the ack clock.

    A "round" spans from one advancing ack to the point the next
    round's first ack arrives — the trace-visible proxy for one RTT of
    window growth.
    """
    facts = facts or extract_facts(trace)
    flow = facts.flow
    reverse = flow.reversed()
    rounds: list[int] = []
    highest_sent = (facts.iss + 1) % 2**32
    round_start_una = highest_sent
    current_una = highest_sent
    for record in trace:
        if record.flow == flow and record.payload > 0:
            if seq_gt(record.seq_end, highest_sent):
                highest_sent = record.seq_end
        elif record.flow == reverse and record.has_ack and not record.is_syn:
            if seq_gt(record.ack, current_una):
                if seq_ge(record.ack, round_start_una) \
                        and record.ack != round_start_una:
                    # The data outstanding when this round's acks began
                    # returning is the round's flight size.
                    rounds.append(seq_diff(highest_sent, current_una))
                    round_start_una = highest_sent
                current_una = record.ack
    return [r for r in rounds if r > 0]


def first_retransmission_round(trace: Trace,
                               facts: ConnectionFacts | None = None
                               ) -> int | None:
    """Index of the round containing the first retransmission, if any."""
    facts = facts or extract_facts(trace)
    flow = facts.flow
    reverse = flow.reversed()
    highest_sent = (facts.iss + 1) % 2**32
    current_round = 0
    current_una = highest_sent
    round_start_una = highest_sent
    for record in trace:
        if record.flow == flow and record.payload > 0:
            if seq_gt(highest_sent, record.seq):
                return current_round
            if seq_gt(record.seq_end, highest_sent):
                highest_sent = record.seq_end
        elif record.flow == reverse and record.has_ack and not record.is_syn:
            if seq_gt(record.ack, current_una):
                if record.ack != round_start_una:
                    current_round += 1
                    round_start_una = highest_sent
                current_una = record.ack
    return None


def infer_initial_ssthresh(trace: Trace, mss: int | None = None
                           ) -> SsthreshEstimate | None:
    """Find the slow-start → congestion-avoidance transition (§6.2).

    Returns None when the transfer never leaves slow start (the
    default, effectively-unlimited initial ssthresh) or is too short
    to judge.
    """
    facts = extract_facts(trace)
    mss = mss or facts.negotiated_mss
    rounds = flight_rounds(trace, facts)
    if len(rounds) < 6:
        return None
    loss_round = first_retransmission_round(trace, facts)

    # Slow start grows the flight multiplicatively — with delayed acks
    # only ~1.5x per round, so byte increments alone cannot tell the
    # phases apart.  Look for the first round where growth drops to
    # ~one segment AND STAYS there, after a round of clearly
    # multiplicative growth.
    confirm = 3
    for index in range(2, len(rounds) - confirm):
        if rounds[index - 2] <= 0 or rounds[index - 1] <= 0:
            continue
        exponential_before = (rounds[index - 1]
                              >= 1.3 * rounds[index - 2])
        if not exponential_before:
            continue
        window = rounds[index:index + confirm]
        growths = [b - a for a, b in
                   zip([rounds[index - 1]] + window, window)]
        sustained_linear = all(0 <= g <= 1.25 * mss for g in growths)
        if sustained_linear:
            before_loss = loss_round is None or index < loss_round
            return SsthreshEstimate(
                transition_flight=rounds[index - 1],
                round_index=index,
                before_any_loss=before_loss)
    return None
