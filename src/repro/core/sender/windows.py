"""The analyzer's mirror of a candidate sender's window state.

:class:`SenderModel` replays a candidate implementation's congestion
state from *observed trace events* — acks as recorded by the filter,
plus the analyzer's classifications of retransmissions (timeout, fast
retransmit, ...).  It shares the window-arithmetic primitives of
:mod:`repro.tcp.params` with the simulated stacks, so each documented
idiosyncrasy is honored identically on both sides — which is exactly
the property tcpanaly needed: "understanding exactly how the
particular TCP implementation manages its congestion window" (§3.1.1).

:class:`WindowLedger` tracks *when each sequence number first became
permissible to send* — the substrate for data liberations (§6.1):
matching an observed data packet against the ledger yields its
liberating time, and thus the TCP's response delay; a packet beyond
everything the ledger permits is a window violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tcp import params as P
from repro.tcp.params import TCPBehavior
from repro.tcp.sender import MAX_WINDOW
from repro.tcp.timers import make_estimator
from repro.trace.record import TraceRecord
from repro.units import seq_diff, seq_ge, seq_gt, seq_le, seq_lt


@dataclass(frozen=True, slots=True)
class Liberation:
    """A window advance: at ``time``, sending up to ``high`` became
    permissible."""

    time: float
    high: int


class WindowLedger:
    """Time-indexed record of how far the sending window has opened.

    Entries are (time, high) with strictly increasing ``high``.  A
    window *shrink* (timeout, fast retransmit cut) truncates entries
    above the new limit: sequence numbers above it must wait for a
    future re-advance to become permissible again.
    """

    def __init__(self, initial_time: float, initial_high: int):
        self._entries: list[Liberation] = [Liberation(initial_time,
                                                      initial_high)]

    def clone(self) -> "WindowLedger":
        """An independent copy sharing the (immutable) entries.

        Entry objects are frozen and the ledger only ever replaces or
        appends them, so a shallow list copy gives full isolation at a
        fraction of a deep copy's cost — this runs once per quench
        trial, squarely on the identification hot path.
        """
        dup = WindowLedger.__new__(WindowLedger)
        dup._entries = self._entries[:]
        return dup

    @property
    def current_high(self) -> int:
        return self._entries[-1].high

    def advance(self, time: float, high: int) -> None:
        """The window now permits sending up to *high*."""
        if seq_gt(high, self.current_high):
            self._entries.append(Liberation(time, high))

    def shrink(self, high: int) -> None:
        """The window collapsed: only sequence numbers up to *high*
        remain permissible.

        Entries above *high* are removed, but the new boundary itself
        stays permissible — since the moment the (now removed) advance
        first crossed it.
        """
        crossed_at: float | None = None
        while len(self._entries) > 1 and seq_gt(self._entries[-1].high, high):
            crossed_at = self._entries.pop().time
        if seq_gt(self._entries[0].high, high):
            self._entries[0] = Liberation(self._entries[0].time, high)
        elif crossed_at is not None and seq_lt(self.current_high, high):
            self._entries.append(Liberation(crossed_at, high))

    def permissible_since(self, seq_end: int) -> float | None:
        """When sending a packet ending at *seq_end* first became
        permissible, or None if it is not permitted at all.

        Entries are strictly increasing in sequence order, so the
        first entry whose ``high`` covers *seq_end* is found by binary
        search on the distance from the oldest entry — the ledger
        grows with the connection, and a linear scan here turns long
        replays quadratic.
        """
        entries = self._entries
        base = entries[0].high
        target = seq_diff(seq_end, base)
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if seq_diff(entries[mid].high, base) >= target:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(entries):
            return None
        return entries[lo].time


class SenderModel:
    """Candidate-implementation state machine driven by trace events."""

    def __init__(self, behavior: TCPBehavior, mss: int, iss: int,
                 offered_mss: int, peer_offered_mss_option: bool,
                 start_time: float, initial_offered_window: int,
                 sender_window: int | None = None):
        self.behavior = behavior
        self.mss = mss
        self.cwnd_mss = P.effective_mss(behavior, mss)
        self.iss = iss
        self.snd_una = (iss + 1) % 2**32
        self.highest_sent = self.snd_una   # seq_end of furthest data seen
        #: Where the next in-window send is expected to start; rolls
        #: back to snd_una on timeout / Tahoe collapse (go-back-N).
        self.snd_nxt = self.snd_una
        self.cwnd = P.initial_cwnd(behavior, mss, offered_mss,
                                   peer_offered_mss_option)
        self.ssthresh = P.initial_ssthresh(behavior, mss,
                                           peer_offered_mss_option)
        self.offered_window = initial_offered_window
        self.sender_window = sender_window
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover_point = self.snd_una
        #: Set when dup acks reach the threshold: the analyzer should
        #: see a fast retransmission of snd_una *promptly* (within the
        #: kernel's response delay of the third dup) — a stale
        #: expectation must not absorb some later retransmission.
        self.expected_fast_rexmit = False
        self.expected_fast_rexmit_time = float("-inf")
        #: Set when an advancing ack arrives during a retransmission
        #: episode on a rexmit_packet_after_ack stack (Solaris, §8.6):
        #: the sender fires its quirk *before* noticing the episode is
        #: over, so the analyzer should accept one quirk send even when
        #: this very ack cleared the last retransmitted range.
        self.quirk_expected = False
        self.estimator = make_estimator(behavior)
        #: When the retransmission timer was (in the model's belief)
        #: last restarted — the reference point for timeout plausibility.
        self.timer_base = start_time
        self.rexmit_epoch = False
        self._rexmitted_starts: set[int] = set()
        #: First-transmission times by segment start, for RTT mirroring.
        self._first_sent: dict[int, float] = {}
        self._timing_seq: int | None = None
        self._timing_start = 0.0
        self.ledger = WindowLedger(start_time, self._window_limit())
        self.last_ack_time = start_time
        self.last_advance_time = start_time

    def clone(self) -> "SenderModel":
        """A fully independent snapshot of the model state.

        Scalars are copied wholesale; the four mutable containers get
        their own shallow copies (their elements — frozen records,
        frozen ledger entries, ints, floats — are never mutated in
        place).  Quench trials snapshot the model before every
        hypothesis, so this must stay cheap: a ``copy.deepcopy`` here
        once dominated the entire identification run.
        """
        dup = SenderModel.__new__(SenderModel)
        dup.__dict__.update(self.__dict__)
        dup._rexmitted_starts = set(self._rexmitted_starts)
        dup._first_sent = dict(self._first_sent)
        dup.ledger = self.ledger.clone()
        dup.estimator = self.estimator.clone()
        return dup

    # -- window geometry --------------------------------------------------

    def _window_limit(self) -> int:
        window = min(self.cwnd, self.offered_window)
        if self.sender_window is not None:
            window = min(window, self.sender_window)
        return (self.snd_una + window) % 2**32

    def _sync_ledger(self, time: float) -> None:
        limit = self._window_limit()
        if seq_lt(limit, self.ledger.current_high):
            self.ledger.shrink(limit)
        else:
            self.ledger.advance(time, limit)

    def allowed_high(self) -> int:
        return self.ledger.current_high

    def usable_window(self) -> int:
        return max(seq_diff(self._window_limit(), self.highest_sent), 0)

    def estimated_rto(self) -> float:
        return self.estimator.rto()

    # -- trace-event handlers ----------------------------------------------

    def process_ack(self, record: TraceRecord) -> str:
        """Feed one observed ack to the model.

        Returns ``"advance"``, ``"dup"``, or ``"other"`` describing how
        the model interpreted it.
        """
        time = record.timestamp
        self.last_ack_time = time
        ack = record.ack
        window_changed = record.window != self.offered_window
        self.offered_window = record.window

        if seq_gt(ack, self.snd_una) and seq_le(ack, self.highest_sent):
            self._advance(ack, time)
            self._sync_ledger(time)
            return "advance"
        if (ack == self.snd_una and record.payload == 0 and not window_changed
                and seq_lt(self.snd_una, self.highest_sent)):
            self._duplicate(time)
            self._sync_ledger(time)
            return "dup"
        self._sync_ledger(time)
        return "other"

    def _advance(self, ack: int, time: float) -> None:
        behavior = self.behavior
        acked_rexmit = any(seq_lt(s, ack) for s in self._rexmitted_starts)
        self._rexmitted_starts = {s for s in self._rexmitted_starts
                                  if seq_ge(s, ack)}
        if self._timing_seq is not None and seq_ge(ack, self._timing_seq):
            self.estimator.sample(time - self._timing_start,
                                  for_retransmitted=False)
            self._timing_seq = None
        if acked_rexmit:
            self.estimator.sample(0.0, for_retransmitted=True)

        exiting = False
        if self.in_fast_recovery:
            exiting = True
            self.in_fast_recovery = False
            self._deflate(ack)
        self.dupacks = 0
        self.expected_fast_rexmit = False
        self.snd_una = ack
        if seq_lt(self.snd_nxt, ack):
            self.snd_nxt = ack
        self.estimator.reset_backoff()
        if not exiting:
            self.cwnd = P.increase_cwnd(behavior, self.cwnd, self.ssthresh,
                                        self.cwnd_mss, MAX_WINDOW)
        # The Solaris quirk is evaluated by the real sender before it
        # notices the retransmission episode ended with this ack.
        self.quirk_expected = (behavior.rexmit_packet_after_ack
                               and self.rexmit_epoch
                               and seq_lt(ack, self.highest_sent))
        if not self._rexmitted_starts:
            self.rexmit_epoch = False
        self.timer_base = time
        self.last_advance_time = time

    def _deflate(self, ack: int) -> None:
        behavior = self.behavior
        if behavior.header_prediction_bug and ack == self.highest_sent:
            return
        if behavior.fencepost_bug:
            if self.cwnd > self.ssthresh + self.cwnd_mss:
                self.cwnd = self.ssthresh
            return
        if self.cwnd > self.ssthresh:
            self.cwnd = self.ssthresh

    def _duplicate(self, time: float) -> None:
        behavior = self.behavior
        self.dupacks += 1
        if behavior.dup_ack_triggers_flight_retransmit:
            return
        if behavior.dupack_updates_cwnd and not self.in_fast_recovery:
            self.cwnd = P.increase_cwnd(behavior, self.cwnd, self.ssthresh,
                                        self.cwnd_mss, MAX_WINDOW)
        if not behavior.fast_retransmit:
            return
        if self.dupacks == behavior.dup_ack_threshold:
            self.expected_fast_rexmit = True
            self.expected_fast_rexmit_time = time
            self.ssthresh = P.cut_ssthresh(behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            use_recovery = (behavior.fast_recovery
                            and not behavior.fast_recovery_disabled_by_bug)
            if use_recovery:
                self.in_fast_recovery = True
                self.recover_point = self.highest_sent
                self.cwnd = (self.ssthresh
                             + behavior.dup_ack_threshold * self.cwnd_mss)
            else:
                # Tahoe: collapse and go back to the loss point.
                self.cwnd = self.cwnd_mss
                self.snd_nxt = self.snd_una
            self.mark_retransmitted(self.snd_una)
            self.timer_base = time
        elif (self.dupacks > behavior.dup_ack_threshold
              and self.in_fast_recovery):
            self.cwnd += self.cwnd_mss

    # -- classification side-effects ----------------------------------------

    def observe_send(self, record: TraceRecord,
                     is_retransmission: bool) -> None:
        """Account for an observed data transmission."""
        time = record.timestamp
        if is_retransmission:
            self.mark_retransmitted(record.seq)
            if (self._timing_seq is not None
                    and seq_lt(record.seq, self._timing_seq)):
                self._timing_seq = None
        else:
            if record.seq not in self._first_sent:
                self._first_sent[record.seq] = time
            if self._timing_seq is None:
                self._timing_seq = record.seq_end
                self._timing_start = time
            if seq_gt(record.seq_end, self.highest_sent):
                self.highest_sent = record.seq_end
        if record.seq == self.snd_nxt and seq_gt(record.seq_end,
                                                 self.snd_nxt):
            self.snd_nxt = record.seq_end

    def mark_retransmitted(self, seq: int) -> None:
        self._rexmitted_starts.add(seq)
        self.rexmit_epoch = True

    def apply_timeout(self, time: float) -> None:
        """The analyzer concluded the TCP's retransmission timer fired."""
        behavior = self.behavior
        if not behavior.retransmit_whole_flight:
            self.ssthresh = P.cut_ssthresh(behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            self.cwnd = self.cwnd_mss
            self.in_fast_recovery = False
            if behavior.clear_dupacks_on_timeout:
                self.dupacks = 0
                self.expected_fast_rexmit = False
            self.snd_nxt = self.snd_una
        self.estimator.back_off()
        self.timer_base = time
        self._timing_seq = None
        self._sync_ledger(time)

    def apply_quench(self, time: float) -> None:
        """The analyzer inferred an unseen ICMP source quench (§6.2)."""
        behavior = self.behavior
        if behavior.quench_response is P.QuenchResponse.DECREMENT_CWND:
            self.cwnd = max(self.cwnd - self.cwnd_mss, self.cwnd_mss)
        elif behavior.quench_response is P.QuenchResponse.SLOW_START_HALVE_SSTHRESH:
            self.ssthresh = P.cut_ssthresh(behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            self.cwnd = self.cwnd_mss
        elif behavior.quench_response is P.QuenchResponse.SLOW_START:
            self.cwnd = self.cwnd_mss
        self._sync_ledger(time)

    def force_observe(self, record: TraceRecord) -> None:
        """Resynchronize after an unexplained packet: accept it as sent
        so one anomaly does not cascade into spurious violations."""
        if seq_gt(record.seq_end, self.highest_sent):
            self.highest_sent = record.seq_end
        if seq_gt(record.seq_end, self.snd_nxt):
            self.snd_nxt = record.seq_end
        self.ledger.advance(record.timestamp,
                            max(self.ledger.current_high, record.seq_end,
                                key=lambda s: seq_diff(s, self.snd_una)))

    def first_sent_time(self, seq: int) -> float | None:
        return self._first_sent.get(seq)

    def snapshot(self) -> dict:
        """A summary of current state (for reports and tests)."""
        return {
            "snd_una": self.snd_una,
            "highest_sent": self.highest_sent,
            "cwnd": self.cwnd,
            "ssthresh": self.ssthresh,
            "dupacks": self.dupacks,
            "in_fast_recovery": self.in_fast_recovery,
            "allowed_high": self.allowed_high(),
        }
