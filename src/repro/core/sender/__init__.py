"""Sender-behavior analysis (§6 of the paper)."""

from repro.core.sender.analyzer import analyze_sender, SenderAnalysis
from repro.core.sender.windows import SenderModel, WindowLedger

__all__ = ["analyze_sender", "SenderAnalysis", "SenderModel", "WindowLedger"]
