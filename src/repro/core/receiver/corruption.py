"""Corrupted-arrival identification (§7).

Receiving kernels verify TCP checksums and silently discard failures —
*after* the packet filter has recorded the packet.  Getting
cause-and-effect right therefore requires knowing which recorded
arrivals the TCP never actually saw.

Two regimes, as in the paper:

* **Full-content traces** — verify the checksum directly
  (:func:`verified_discards`); our trace records carry the outcome in
  ``record.corrupted`` (and pcap round-trips recompute it from real
  checksums, see :mod:`repro.trace.wire`).
* **Header-only traces** (the common tcpdump configuration) — infer a
  discard (:func:`inferred_discards`): data the trace shows arriving,
  which the TCP never acknowledged before the *same data arrived
  again*, was evidently thrown away on arrival.
"""

from __future__ import annotations

from repro.packets import FlowKey
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_gt


def verified_discards(trace: Trace, flow: FlowKey) -> list[TraceRecord]:
    """Arrivals whose recorded checksum failed (full-content traces)."""
    return [record for record in trace
            if record.flow == flow and record.corrupted]


def inferred_discards(trace: Trace, flow: FlowKey) -> list[TraceRecord]:
    """Arrivals inferred discarded, for header-only traces (§7).

    An arrival was discarded if the receiver's acks never advanced
    past its start before a retransmission of the same data arrived:
    a TCP that had accepted the data would have acknowledged it (at
    least when the retransmission provoked a mandatory ack).
    """
    discards: list[TraceRecord] = []
    reverse = flow.reversed()
    records = trace.records
    for i, record in enumerate(records):
        if record.flow != flow or record.payload == 0:
            continue
        retransmitted = False
        acked_past = False
        for later in records[i + 1:]:
            if (later.flow == reverse and later.has_ack
                    and seq_gt(later.ack, record.seq)):
                acked_past = True
                break
            if (later.flow == flow and later.seq == record.seq
                    and later.payload > 0):
                retransmitted = True
                break
        if retransmitted and not acked_past:
            discards.append(record)
    return discards
