"""Receiver analysis: acking policy, gratuitous acks, corruption (§7, §9).

Given a trace captured at (or near) the data *receiver*, replay the
arrivals against a model of the receiving TCP, track ack obligations,
and explain every outbound ack:

* its class — **delayed** (acks < 2 full-sized segments), **normal**
  (exactly 2), or **stretch** (> 2), per §9.1;
* its generation delay — ack time minus the oldest obligation it
  discharges (§9.3's "response delays");
* or **gratuitous** — discharging nothing and changing nothing, the
  signature of analyzer confusion or measurement error (§7).

Corrupted arrivals are handled two ways, as in the paper: when the
filter captured whole packets, checksums identify them directly
(``record.corrupted``); for header-only traces the analyzer *infers*
a discard when data the trace shows arriving is never acknowledged
before the same data arrives again (§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packets import FlowKey
from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace, TraceRecord
from repro.units import seq_diff, seq_gt, seq_le

from repro.core.receiver.obligations import (
    MAX_ACK_DELAY,
    AckObligation,
    ObligationTracker,
)

#: Grace period for mandatory (immediate) acks: covers kernel response
#: delay, vantage-point slop, and interval-timer policies whose
#: "immediate" path still rides a ~50 ms timer.
MANDATORY_ACK_DEADLINE = 0.075


@dataclass(frozen=True, slots=True)
class AckExplanation:
    """The analyzer's account of one outbound ack."""

    record: TraceRecord
    kind: str                  # delayed / normal / stretch / dup /
    #                            window_update / fin_ack / gratuitous
    acked_bytes: int = 0
    generation_delay: float | None = None
    note: str = ""
    #: Reasons of the obligations this ack discharged (in_sequence,
    #: out_of_sequence, hole_fill, old_data, probe, fin).
    discharged_reasons: tuple[str, ...] = ()


@dataclass
class ReceiverAnalysis:
    """Everything the receiver analysis learned from one trace."""

    implementation: str
    behavior: TCPBehavior
    explanations: list[AckExplanation] = field(default_factory=list)
    gratuitous: list[AckExplanation] = field(default_factory=list)
    missed_obligations: list[AckObligation] = field(default_factory=list)
    verified_corrupt: list[TraceRecord] = field(default_factory=list)
    inferred_corrupt: list[TraceRecord] = field(default_factory=list)
    delay_ceiling_violations: list[AckExplanation] = field(
        default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: The data sender's full segment size (from its SYN MSS option).
    full_size: int = 536

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.explanations:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def delays_for(self, kind: str) -> list[float]:
        return [e.generation_delay for e in self.explanations
                if e.kind == kind and e.generation_delay is not None]

    @property
    def ack_count(self) -> int:
        return len(self.explanations)

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in
                          sorted(self.counts_by_kind().items()))
        return (f"{self.implementation} receiver: {self.ack_count} acks "
                f"({kinds}); {len(self.gratuitous)} gratuitous; "
                f"{len(self.verified_corrupt)} verified + "
                f"{len(self.inferred_corrupt)} inferred corrupt arrivals")


@dataclass(slots=True)
class ReceiverPassOne:
    """Candidate-independent facts about a receiver-side trace.

    The receiver replay depends on the candidate only through its
    acking-policy fields; everything here — flow, sender segment size,
    discarded arrivals, the arrival/ack event timeline — is computed
    once per trace by :func:`extract_receiver_pass_one` and shared
    across all candidate replays.
    """

    flow: FlowKey
    full_size: int
    syn_seq: int
    events: list[TraceRecord]
    discarded: frozenset[int]
    verified_corrupt: list[TraceRecord]
    inferred_corrupt: list[TraceRecord]
    headers_only: bool


def extract_receiver_pass_one(trace: Trace,
                              headers_only: bool = False) -> ReceiverPassOne:
    """Pass one of receiver analysis: facts and the event timeline.

    With the numpy trace backend the discard/event scans run as
    column kernels; the per-record path below is the pure-Python
    fallback and the equivalence oracle.
    """
    from repro.core.receiver import corruption
    columns = trace.columns()
    if columns.is_vector:
        return _extract_receiver_pass_one_vector(trace, columns,
                                                 headers_only)
    flow = trace.primary_flow()           # the data direction (inbound here)
    reverse = flow.reversed()
    syn = next((r for r in trace if r.flow == flow and r.is_syn
                and not r.has_ack), None)
    if syn is None:
        raise ValueError("trace does not contain the connection SYN")
    full_size = syn.mss_option if syn.mss_option is not None else 536
    verified_corrupt: list[TraceRecord] = []
    inferred_corrupt: list[TraceRecord] = []
    if headers_only:
        inferred_corrupt = corruption.inferred_discards(trace, flow)
        discarded = frozenset(r.packet_id for r in inferred_corrupt)
    else:
        verified_corrupt = corruption.verified_discards(trace, flow)
        discarded = frozenset(r.packet_id for r in verified_corrupt)
    events = [r for r in trace
              if (r.flow == flow and (r.payload > 0 or r.is_fin))
              or (r.flow == reverse and r.has_ack and not r.is_syn)]
    return ReceiverPassOne(
        flow=flow, full_size=full_size, syn_seq=syn.seq, events=events,
        discarded=discarded, verified_corrupt=verified_corrupt,
        inferred_corrupt=inferred_corrupt, headers_only=headers_only)


def _extract_receiver_pass_one_vector(trace: Trace, columns,
                                      headers_only: bool) -> ReceiverPassOne:
    """Column-kernel twin of the :func:`extract_receiver_pass_one` scan."""
    from repro.core.receiver import corruption
    from repro.trace.columns import numpy_module
    np = numpy_module()
    primary = columns.primary_flow_id()
    flow = columns.flows[primary]
    in_flow = columns.flow_ids == primary
    syn_i = columns.first_index(in_flow & columns.is_syn
                                & ~columns.has_ack)
    if syn_i < 0:
        raise ValueError("trace does not contain the connection SYN")
    syn = columns.records[syn_i]
    full_size = syn.mss_option if syn.mss_option is not None else 536
    verified_corrupt: list[TraceRecord] = []
    inferred_corrupt: list[TraceRecord] = []
    if headers_only:
        # Discard inference walks forward from each arrival until the
        # next covering ack or retransmission — inherently sequential
        # and rare (header-only captures only); the loop stays.
        inferred_corrupt = corruption.inferred_discards(trace, flow)
        discarded = frozenset(r.packet_id for r in inferred_corrupt)
    else:
        verified_corrupt = columns.records_at(
            np.flatnonzero(in_flow & columns.corrupted))
        discarded = frozenset(r.packet_id for r in verified_corrupt)
    reverse_fid = columns.reverse_id(primary)
    event_mask = in_flow & (columns.is_data | columns.is_fin)
    if reverse_fid >= 0:
        event_mask = event_mask | ((columns.flow_ids == reverse_fid)
                                   & columns.has_ack & ~columns.is_syn)
    events = columns.records_at(np.flatnonzero(event_mask))
    return ReceiverPassOne(
        flow=flow, full_size=full_size, syn_seq=syn.seq, events=events,
        discarded=discarded, verified_corrupt=verified_corrupt,
        inferred_corrupt=inferred_corrupt, headers_only=headers_only)


def analyze_receiver(trace: Trace | None, behavior: TCPBehavior,
                     implementation: str | None = None,
                     headers_only: bool = False, *,
                     pass_one: ReceiverPassOne | None = None
                     ) -> ReceiverAnalysis:
    """Analyze *trace*'s receiver behavior against *behavior*.

    ``pass_one`` supplies precomputed shared facts (*trace* may then
    be ``None``; its ``headers_only`` choice wins).
    """
    if pass_one is None:
        if trace is None:
            raise TypeError("analyze_receiver needs a trace or a pass_one")
        pass_one = extract_receiver_pass_one(trace, headers_only)
    analysis = ReceiverAnalysis(
        implementation=implementation or behavior.label(),
        behavior=behavior)
    flow = pass_one.flow
    full_size = pass_one.full_size
    analysis.full_size = full_size
    analysis.verified_corrupt = list(pass_one.verified_corrupt)
    analysis.inferred_corrupt = list(pass_one.inferred_corrupt)
    discarded = pass_one.discarded

    rcv_nxt = (pass_one.syn_seq + 1) % 2**32
    last_ack_value = rcv_nxt
    last_window: int | None = None
    ooo: list[tuple[int, int]] = []
    tracker = ObligationTracker()
    fin_rcv_seq: int | None = None

    events = pass_one.events
    last_arrival_time = float("-inf")
    for record in events:
        tracker.expire(record.timestamp, MANDATORY_ACK_DEADLINE)
        if record.flow == flow:
            if record.packet_id in discarded:
                continue  # the kernel dropped it before TCP saw it
            last_arrival_time = record.timestamp
            if record.payload == 1 and last_window == 0:
                # A zero-window probe: rejected, but acked (mandatory).
                tracker.incur(AckObligation(
                    record.timestamp, mandatory=True, reason="probe",
                    covering_ack=rcv_nxt))
                continue
            rcv_nxt, ooo, fin_rcv_seq = _arrival(
                record, rcv_nxt, ooo, tracker, full_size,
                last_ack_value, fin_rcv_seq,
                behavior.immediate_ack_on_hole_fill,
                behavior.ack_on_consumption)
        else:
            last_ack_value, last_window = _outbound_ack(
                record, rcv_nxt, last_ack_value, last_window, tracker,
                full_size, fin_rcv_seq, analysis, last_arrival_time)

    tracker.expire(float("inf"), MANDATORY_ACK_DEADLINE)
    analysis.missed_obligations = tracker.missed
    return analysis


def _arrival(record: TraceRecord, rcv_nxt: int,
             ooo: list[tuple[int, int]], tracker: ObligationTracker,
             full_size: int, last_ack_value: int,
             fin_rcv_seq: int | None,
             mandatory_hole_fill: bool = True,
             ack_on_consumption: bool = False):
    """Update the receiver replica for one arriving data packet and
    incur the corresponding obligation."""
    seg_start = record.seq
    seg_len = record.payload + (1 if record.is_fin else 0)
    seg_end = (seg_start + seg_len) % 2**32
    time = record.timestamp
    if record.is_fin:
        fin_rcv_seq = seg_end

    if seq_le(seg_end, rcv_nxt):
        tracker.incur(AckObligation(time, mandatory=True, reason="old_data",
                                    covering_ack=rcv_nxt))
        return rcv_nxt, ooo, fin_rcv_seq

    if seq_gt(seg_start, rcv_nxt):
        if (seg_start, seg_end) not in ooo:
            ooo.append((seg_start, seg_end))
            ooo.sort(key=lambda iv: seq_diff(iv[0], rcv_nxt))
        tracker.incur(AckObligation(time, mandatory=True,
                                    reason="out_of_sequence",
                                    covering_ack=rcv_nxt))
        return rcv_nxt, ooo, fin_rcv_seq

    new_bytes = seq_diff(seg_end, rcv_nxt)
    rcv_nxt = seg_end
    filled_hole = False
    while ooo and seq_le(ooo[0][0], rcv_nxt):
        start, end = ooo.pop(0)
        if seq_gt(end, rcv_nxt):
            new_bytes += seq_diff(end, rcv_nxt)
            rcv_nxt = end
        filled_hole = True

    if record.is_fin or (fin_rcv_seq is not None
                         and rcv_nxt == fin_rcv_seq):
        tracker.incur(AckObligation(time, mandatory=True, reason="fin",
                                    covering_ack=rcv_nxt,
                                    new_bytes=new_bytes))
    elif filled_hole:
        # Whether a hole fill demands an immediate ack is itself an
        # implementation behavior (the Solaris 2.3 bug treats it as
        # optional, §8.6); the candidate's flag decides.
        tracker.incur(AckObligation(time, mandatory=mandatory_hole_fill,
                                    reason="hole_fill",
                                    covering_ack=rcv_nxt,
                                    new_bytes=new_bytes))
    else:
        unacked = seq_diff(rcv_nxt, last_ack_value)
        # Consumption-acking stacks (§9.1) generate the two-segment ack
        # only when the application reads — invisible from the trace —
        # so the obligation stays optional (the 500 ms ceiling still
        # applies).
        mandatory = unacked >= 2 * full_size and not ack_on_consumption
        tracker.incur(AckObligation(time, mandatory=mandatory,
                                    reason="in_sequence",
                                    covering_ack=rcv_nxt,
                                    new_bytes=new_bytes))
    return rcv_nxt, ooo, fin_rcv_seq


def _outbound_ack(record: TraceRecord, rcv_nxt: int, last_ack_value: int,
                  last_window: int | None, tracker: ObligationTracker,
                  full_size: int, fin_rcv_seq: int | None,
                  analysis: ReceiverAnalysis,
                  last_arrival_time: float = float("-inf")):
    """Explain one observed outbound ack."""
    time = record.timestamp
    acked = seq_diff(record.ack, last_ack_value)
    window_changed = last_window is not None and record.window != last_window
    oldest = tracker.oldest_pending_time()
    discharged = tracker.discharge(time)
    delay = (time - oldest) if oldest is not None else None
    reasons = tuple(o.reason for o in discharged)

    if acked <= 0:
        if discharged and any(o.reason in ("out_of_sequence", "old_data",
                                           "probe")
                              for o in discharged):
            explanation = AckExplanation(record, "dup", acked_bytes=0,
                                         generation_delay=delay,
                                         discharged_reasons=reasons)
        elif window_changed:
            explanation = AckExplanation(record, "window_update",
                                         generation_delay=delay,
                                         discharged_reasons=reasons)
        elif fin_rcv_seq is not None and record.ack == fin_rcv_seq:
            explanation = AckExplanation(record, "fin_ack",
                                         generation_delay=delay,
                                         discharged_reasons=reasons)
        elif time - last_arrival_time <= 0.010:
            # Vantage-point slop (§3.2): the filter recorded another
            # arrival just before this ack left, so the TCP may have
            # emitted this ack for an obligation the previous ack
            # appeared (to us) to have discharged already.
            explanation = AckExplanation(
                record, "dup", acked_bytes=0,
                note="response to an arrival within vantage slop")
        else:
            explanation = AckExplanation(
                record, "gratuitous",
                note="no obligation, no window change")
            analysis.gratuitous.append(explanation)
    elif fin_rcv_seq is not None and record.ack == fin_rcv_seq:
        explanation = AckExplanation(record, "fin_ack", acked_bytes=acked,
                                     generation_delay=delay,
                                     discharged_reasons=reasons)
    elif acked < 2 * full_size:
        explanation = AckExplanation(record, "delayed", acked_bytes=acked,
                                     generation_delay=delay,
                                     discharged_reasons=reasons)
    elif acked < 3 * full_size:
        explanation = AckExplanation(record, "normal", acked_bytes=acked,
                                     generation_delay=delay,
                                     discharged_reasons=reasons)
    else:
        explanation = AckExplanation(record, "stretch", acked_bytes=acked,
                                     generation_delay=delay,
                                     discharged_reasons=reasons)

    analysis.explanations.append(explanation)
    if delay is not None and delay > MAX_ACK_DELAY:
        analysis.delay_ceiling_violations.append(explanation)
    return (record.ack if seq_gt(record.ack, last_ack_value)
            else last_ack_value), record.window
