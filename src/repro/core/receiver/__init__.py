"""Receiver-behavior analysis (§7, §9 of the paper)."""

from repro.core.receiver.analyzer import analyze_receiver, ReceiverAnalysis
from repro.core.receiver.obligations import AckObligation, ObligationTracker

__all__ = ["analyze_receiver", "ReceiverAnalysis", "AckObligation",
           "ObligationTracker"]
