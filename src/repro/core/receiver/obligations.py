"""Ack obligations: what a receiver owes in response to arriving data.

The paper's receiver analysis (§7) mirrors the sender's data
liberations with *pending ack obligations*: every data arrival incurs
an obligation to acknowledge, either **optional** (in-sequence data —
the TCP may delay, but no more than 500 ms, and must ack at least
every second full-sized segment) or **mandatory** (out-of-sequence
data, old data, a filled hole, a FIN).  An observed ack that
discharges no obligation and changes nothing is *gratuitous* — the
receiver-side analogue of a window violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: RFC 1122's hard ceiling on delayed acks (§4.2.3.2).
MAX_ACK_DELAY = 0.500


@dataclass(slots=True)
class AckObligation:
    """One pending duty to acknowledge."""

    time: float                 # when the obligation was incurred
    mandatory: bool
    reason: str                 # in_sequence / out_of_sequence / old_data /
    #                             hole_fill / fin
    covering_ack: int           # the rcv_nxt an ack must carry to discharge
    new_bytes: int = 0

    def discharged_by(self, ack_value: int, rcv_nxt: int) -> bool:
        """An ack carrying the receiver's current rcv_nxt discharges
        everything pending (acks are cumulative)."""
        return ack_value == rcv_nxt or ack_value == self.covering_ack


@dataclass
class ObligationTracker:
    """The pending-obligation list plus discharge bookkeeping."""

    pending: list[AckObligation] = field(default_factory=list)
    #: Obligations that went undischarged past their deadline.
    missed: list[AckObligation] = field(default_factory=list)

    def incur(self, obligation: AckObligation) -> None:
        self.pending.append(obligation)

    def oldest_pending_time(self) -> float | None:
        return self.pending[0].time if self.pending else None

    def has_mandatory(self) -> bool:
        return any(o.mandatory for o in self.pending)

    def discharge(self, ack_time: float) -> list[AckObligation]:
        """An ack was sent at *ack_time*: everything pending is
        discharged (cumulative acks).  Returns what was discharged."""
        discharged = self.pending
        self.pending = []
        return discharged

    def expire(self, now: float, mandatory_deadline: float) -> None:
        """Move obligations past their deadline to ``missed``.

        Mandatory obligations expire after *mandatory_deadline*
        seconds; optional ones after the RFC's 500 ms."""
        still_pending = []
        for obligation in self.pending:
            deadline = (mandatory_deadline if obligation.mandatory
                        else MAX_ACK_DELAY)
            if now - obligation.time > deadline:
                self.missed.append(obligation)
            else:
                still_pending.append(obligation)
        self.pending = still_pending
