"""tcpanaly: the trace analyzer (the paper's contribution).

Public surface:

* :func:`repro.core.sender.analyzer.analyze_sender` — sender-behavior
  analysis of one trace against one candidate implementation (§6).
* :func:`repro.core.receiver.analyzer.analyze_receiver` — receiver
  (acking-policy) analysis (§7, §9).
* :func:`repro.core.fit.identify_implementation` — run every catalog
  implementation against a trace and sort into close / imperfect /
  clearly-incorrect fits (§5, §6.1).
* :mod:`repro.core.calibrate` — packet-filter measurement-error
  detection (§3): drops, additions, resequencing, timing.
"""

from repro.core.sender.analyzer import analyze_sender, SenderAnalysis
from repro.core.receiver.analyzer import analyze_receiver, ReceiverAnalysis
from repro.core.fit import (
    FitReport,
    ReceiverFit,
    identify_implementation,
    identify_receiver,
)
from repro.core.calibrate import calibrate_trace, CalibrationReport

__all__ = [
    "analyze_sender",
    "SenderAnalysis",
    "analyze_receiver",
    "ReceiverAnalysis",
    "identify_implementation",
    "identify_receiver",
    "FitReport",
    "ReceiverFit",
    "calibrate_trace",
    "CalibrationReport",
]
