"""Implementation identification: fit sorting (§5, §6.1).

tcpanaly can run every implementation it knows against a trace and
sort the candidates into **close**, **imperfect**, and
**clearly-incorrect** fits.  The discriminators are exactly the
paper's: window violations (a correct model should see none) and
response-delay statistics (a correct model's liberations line up with
actual sends, so delays stay small; a wrong model's liberations are
wrong, inflating delays or producing violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tcp.catalog import CATALOG
from repro.tcp.params import TCPBehavior
from repro.trace.record import Trace

from repro.core.sender.analyzer import (
    SenderAnalysis,
    TraceUnusable,
    analyze_sender,
)

#: Mean response delay below which a violation-free analysis is a
#: close fit.  Kernel response delays are sub-millisecond; tens of
#: milliseconds of *systematic* delay mean the model misattributes
#: liberations.
CLOSE_DELAY = 0.030
#: Beyond this mean response delay the model clearly misunderstands
#: the TCP even if nothing violated outright.
INCORRECT_DELAY = 0.250
#: Fit scores at or above this value rank as ties (broken by name):
#: a candidate ten violations deep is hopeless, and *how* hopeless
#: carries no information.  Saturating the rank key is what lets the
#: identification engine abort a replay once a candidate's violation
#: lower bound crosses this line while still producing the exact
#: ranking of the exhaustive path.
SCORE_SATURATION = 100.0


@dataclass
class CandidateFit:
    """One candidate implementation's fit against a trace."""

    implementation: str
    category: str              # close / imperfect / incorrect / unusable
    analysis: SenderAnalysis | None = None
    score: float = float("inf")
    #: True when the engine's branch-and-bound cut the replay short;
    #: ``score`` is then a lower bound (already past saturation).
    aborted: bool = False
    #: Non-empty when a static prefilter disqualified the candidate
    #: without replaying it at all.
    pruned_reason: str = ""

    @property
    def violations(self) -> int:
        return self.analysis.violation_count if self.analysis else -1

    def to_dict(self) -> dict:
        """JSON-safe summary (``inf`` scores become ``None``)."""
        summary: dict = {
            "implementation": self.implementation,
            "category": self.category,
        }
        if self.analysis is not None:
            summary["score"] = self.score
            summary["violations"] = self.analysis.violation_count
            summary["mean_response_delay"] = \
                self.analysis.mean_response_delay
        else:
            summary["score"] = None
        if self.aborted:
            summary["aborted"] = True
            summary["score_lower_bound"] = self.score
        if self.pruned_reason:
            summary["pruned_reason"] = self.pruned_reason
        return summary


def rank_key(fit: CandidateFit) -> tuple:
    """Sort key shared by the exhaustive and engine paths.

    Unusable last; scores saturate at :data:`SCORE_SATURATION`; ties
    (including everything past saturation) break on implementation
    name, so evaluation order never shows through in the ranking.
    """
    return (fit.analysis is None and not fit.pruned_reason,
            min(fit.score, SCORE_SATURATION), fit.implementation)


@dataclass
class FitReport:
    """All candidates sorted by fit quality."""

    fits: list[CandidateFit] = field(default_factory=list)

    @property
    def close(self) -> list[CandidateFit]:
        return [f for f in self.fits if f.category == "close"]

    @property
    def imperfect(self) -> list[CandidateFit]:
        return [f for f in self.fits if f.category == "imperfect"]

    @property
    def incorrect(self) -> list[CandidateFit]:
        return [f for f in self.fits if f.category == "incorrect"]

    @property
    def best(self) -> CandidateFit | None:
        return self.fits[0] if self.fits else None

    def to_dict(self) -> dict:
        best = self.best
        return {
            "best": best.implementation if best is not None else None,
            "best_category": best.category if best is not None else None,
            "fits": [fit.to_dict() for fit in self.fits],
        }

    def summary(self) -> str:
        lines = []
        for fit in self.fits:
            if fit.analysis is None:
                lines.append(f"  {fit.implementation:16s} unusable")
                continue
            lines.append(
                f"  {fit.implementation:16s} {fit.category:10s} "
                f"violations={fit.analysis.violation_count:3d} "
                f"mean_delay={fit.analysis.mean_response_delay * 1e3:7.2f}ms")
        return "\n".join(lines)


def categorize(analysis: SenderAnalysis) -> str:
    """Map a completed sender analysis to its fit category."""
    violations = analysis.violation_count
    mean_delay = analysis.mean_response_delay
    # Unexplained lulls and forced resyncs degrade the fit the same
    # way violations do; resequencing clues do not (they indict the
    # filter, not the model).
    if violations == 0 and mean_delay <= CLOSE_DELAY:
        return "close"
    if violations == 0 and mean_delay <= INCORRECT_DELAY:
        return "imperfect"
    if violations <= max(1, len(analysis.classifications) // 50) \
            and mean_delay <= INCORRECT_DELAY:
        return "imperfect"
    return "incorrect"


def fit_candidate(trace: Trace | None, behavior: TCPBehavior,
                  implementation: str, *,
                  pass_one=None) -> CandidateFit:
    """Analyze one candidate and categorize its fit."""
    try:
        analysis = analyze_sender(trace, behavior, implementation,
                                  pass_one=pass_one)
    except (TraceUnusable, ValueError):
        return CandidateFit(implementation, "unusable")
    # Score for ranking: violations dominate, then mean delay.
    score = analysis.violation_count * 10.0 + analysis.mean_response_delay
    return CandidateFit(implementation, categorize(analysis), analysis, score)


def identify_implementation(trace: Trace,
                            candidates: dict[str, TCPBehavior] | None = None
                            ) -> FitReport:
    """Run every candidate against *trace* and rank the fits.

    This is the exhaustive path: one full pass-one + replay per
    candidate, no pruning.  :class:`repro.core.engine.IdentificationEngine`
    produces the same ranking faster; this stays as the oracle the
    engine's equivalence suite compares against.
    """
    candidates = candidates or CATALOG
    fits = [fit_candidate(trace, behavior, implementation)
            for implementation, behavior in sorted(candidates.items())]
    fits.sort(key=rank_key)
    return FitReport(fits=fits)


# ---------------------------------------------------------------------------
# Receiver-side identification (§7, §9).
#
# Acking policy separates implementations that sender analysis cannot:
# the paper's one observed difference between Solaris 2.3 and 2.4 is a
# receiver acking bug (§8.6).  Each candidate is scored by how well the
# observed ack timing and aggregation match its policy.
# ---------------------------------------------------------------------------

#: Slack added to a policy's nominal ack deadline before an observed
#: delay counts against a candidate (kernel delay + vantage slop).
POLICY_DELAY_SLACK = 0.012


@dataclass
class ReceiverFit:
    """One candidate's receiver-policy fit against a trace."""

    implementation: str
    category: str              # close / imperfect / incorrect / unusable
    score: float = float("inf")
    inconsistencies: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe summary (``inf`` scores become ``None``)."""
        return {
            "implementation": self.implementation,
            "category": self.category,
            "score": self.score if self.score != float("inf") else None,
            "inconsistencies": list(self.inconsistencies),
        }


def _expected_delay_ceiling(behavior: TCPBehavior) -> float:
    from repro.tcp.params import AckPolicy
    if behavior.ack_policy is AckPolicy.EVERY_PACKET:
        return 0.003
    return behavior.delayed_ack_timeout + POLICY_DELAY_SLACK


def score_receiver_policy(analysis, behavior: TCPBehavior) -> ReceiverFit:
    """Score how well *behavior*'s acking policy explains *analysis*."""
    from repro.tcp.params import AckPolicy
    inconsistencies: list[str] = []

    data_ack_kinds = ("delayed", "normal", "stretch")
    data_acks = [e for e in analysis.explanations
                 if e.kind in data_ack_kinds]
    if not data_acks:
        return ReceiverFit(analysis.implementation, "unusable")

    # 1. Delayed-ack delays must fit under the policy's timer.
    ceiling = _expected_delay_ceiling(behavior)
    late = [e for e in analysis.explanations
            if e.kind == "delayed" and e.generation_delay is not None
            and e.generation_delay > ceiling]
    if late:
        inconsistencies.append(
            f"{len(late)} delayed acks exceed the policy's "
            f"{ceiling * 1e3:.0f} ms ceiling")

    # 2. An every-packet acker never aggregates (no normal/stretch).
    aggregated = sum(1 for e in data_acks if e.kind in ("normal", "stretch"))
    if behavior.ack_policy is AckPolicy.EVERY_PACKET and aggregated:
        inconsistencies.append(
            f"{aggregated} aggregated acks from an every-packet policy")

    # 3. Aggregation threshold: stretch acks mean the receiver waits
    #    beyond two segments; their share must match ack_every_segments.
    stretch = sum(1 for e in data_acks if e.kind == "stretch")
    stretch_share = stretch / len(data_acks)
    if behavior.ack_every_segments <= 2 \
            and behavior.ack_policy is not AckPolicy.EVERY_PACKET \
            and stretch_share > 0.10:
        inconsistencies.append(
            f"{stretch} stretch acks from an every-2-segments policy")
    if behavior.ack_every_segments > 2 and stretch_share < 0.10 \
            and len(data_acks) > 20:
        inconsistencies.append(
            "no stretch acks despite an every-3-segments policy")

    # 4. Interval-timer policies stamp delayed acks AT the timer; a
    #    heartbeat spreads them uniformly below it.
    delays = [e.generation_delay for e in analysis.explanations
              if e.kind == "delayed" and e.generation_delay is not None
              and "in_sequence" in e.discharged_reasons]
    if len(delays) >= 3 and behavior.ack_policy is AckPolicy.INTERVAL_50MS:
        off_timer = [d for d in delays
                     if not (behavior.delayed_ack_timeout - 0.005
                             <= d <= ceiling)]
        if len(off_timer) > len(delays) // 3:
            inconsistencies.append(
                f"{len(off_timer)}/{len(delays)} delayed acks away from "
                f"the {behavior.delayed_ack_timeout * 1e3:.0f} ms timer")

    # 5. A timer policy cannot ack lone segments at kernel speed: its
    #    delayed acks wait for the timer.  Sub-5-ms delayed acks in
    #    volume mean an every-packet acker.
    if delays and behavior.ack_policy is not AckPolicy.EVERY_PACKET:
        instant = [d for d in delays if d < 0.005]
        if len(instant) > max(1, len(delays) // 3):
            inconsistencies.append(
                f"{len(instant)}/{len(delays)} delayed acks generated "
                f"instantly despite a timer policy")

    # 6. A free-running heartbeat spreads delayed-ack delays across
    #    [0, timeout); a tight cluster means an interval timer.
    if (len(delays) >= 5
            and behavior.ack_policy is AckPolicy.HEARTBEAT_200MS):
        spread = max(delays) - min(delays)
        if spread < 0.015 and min(delays) > 0.005:
            inconsistencies.append(
                f"delayed-ack delays cluster within "
                f"{spread * 1e3:.1f} ms — not a free-running heartbeat")

    # 7. Hole-fill acking: immediate vs delayed (Solaris 2.3 vs 2.4).
    #    Only small fills discriminate: a fill advancing by two or
    #    more full segments is acked immediately under *both* policies
    #    (the ack-every-two-segments rule fires regardless).
    hole_acks = [e for e in analysis.explanations
                 if "hole_fill" in e.discharged_reasons
                 and e.generation_delay is not None
                 and 0 < e.acked_bytes < 2 * analysis.full_size]
    if hole_acks:
        slow = [e for e in hole_acks if e.generation_delay > 0.010]
        if behavior.immediate_ack_on_hole_fill and len(slow) == len(hole_acks):
            inconsistencies.append(
                "hole-fill acks delayed despite an immediate-ack policy")
        if not behavior.immediate_ack_on_hole_fill and not slow \
                and len(hole_acks) >= 2:
            inconsistencies.append(
                "hole-fill acks immediate despite a delayed-ack policy")

    score = float(len(inconsistencies))
    if score == 0:
        category = "close"
    elif score <= 1:
        category = "imperfect"
    else:
        category = "incorrect"
    return ReceiverFit(analysis.implementation, category, score,
                       inconsistencies)


def identify_receiver(trace: Trace,
                      candidates: dict[str, TCPBehavior] | None = None,
                      ) -> list[ReceiverFit]:
    """Rank candidate implementations by receiver acking policy (§9)."""
    from repro.core.receiver.analyzer import analyze_receiver
    candidates = candidates or CATALOG
    fits = []
    for implementation, behavior in sorted(candidates.items()):
        try:
            analysis = analyze_receiver(trace, behavior, implementation)
        except ValueError:
            fits.append(ReceiverFit(implementation, "unusable"))
            continue
        fits.append(score_receiver_policy(analysis, behavior))
    fits.sort(key=lambda f: (f.score, f.implementation))
    return fits
