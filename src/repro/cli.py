"""The ``tcpanaly`` command-line front end.

Subcommands:

``analyze TRACE.pcap [--implementation LABEL] [--peer PEER.pcap]``
    Run calibration plus sender/receiver behavior analysis on a trace.

``identify TRACE.pcap [--receiver] [--exhaustive]``
    Run every known implementation against the trace and rank the
    fits.  Uses the shared-pass identification engine (prefilters,
    replay sharing, early abort); ``--exhaustive`` forces the plain
    one-full-analysis-per-candidate path the engine is equivalent to.

``simulate IMPLEMENTATION [--scenario NAME] [--size BYTES] [--out X]``
    Run a simulated bulk transfer with the named stack and write the
    sender- and receiver-side traces as pcap files.

``calibrate TRACE.pcap [--peer PEER.pcap] [-i LABEL]``
    Run only the §3 measurement-error battery on a trace.

``corpus OUTDIR [--per-implementation N] [--analyze]``
    Generate a trace corpus (pcap pairs per implementation), the
    synthetic analogue of the paper's Table 1 data set; with
    ``--analyze``, feed it straight into the batch pipeline.

``batch CORPUS_DIR [--jobs N] [--cache DIR] [--jsonl OUT] [--stream]
[--timeout S] [--retries N] [--journal PATH] [--resume]``
    Batch-analyze every pcap in a corpus directory across supervised
    worker processes, with an optional on-disk result cache, per-trace
    JSONL output, and a Table-1-style aggregate report.  Pathological
    traces are quarantined (classified ``error_kind`` payloads) rather
    than aborting the run: worker crashes are retried then quarantined,
    per-trace timeouts kill quasi-hung analyses, and a checkpoint
    journal makes an interrupted run resumable with ``--resume``.
    With ``--stream``, each capture goes through the streaming ingest
    + flow-demux path and multi-connection captures fan out into
    per-connection results.

``demux TRACE.pcap [--identify] [--jsonl OUT]``
    Stream a (possibly multi-connection, possibly damaged) capture
    through the flow demultiplexer and print one tcpanaly report per
    connection, plus ingest statistics.

``serve [CAPTURE...] --out DIR [--spool DIR] [--jobs N] [--http PORT]
[--timeout S] [--retries N] [--high-water N] [--low-water N]
[--exit-when-idle] [--quiet S] [--min-free-bytes N] [--max-rss N]
[--max-live-flows N] [--breaker-failures N] [--breaker-backoff S]
[--breaker-trips N] [--on-rotate POLICY] [--fsync]``
    Run the always-on analysis daemon: tail growing captures (and a
    watched spool directory) through live flow demux, analyze retired
    flows on supervised workers sharded by connection, and publish
    results incrementally — per-source JSONL under ``DIR/results/``,
    a checkpoint journal at ``DIR/journal.jsonl``, and (with
    ``--http``) ``/healthz``, ``/readyz``, and ``/stats`` on a local
    HTTP endpoint (``--http 0`` picks an ephemeral port, announced in
    ``DIR/http.port``).  Backpressure pauses tailing while the
    analysis queue is above the high-water mark.  SIGTERM/SIGINT
    drain gracefully: submitted flows finish and are journaled, open
    flows are left for the restart, which resumes from the journal
    without reanalyzing or duplicating anything.  Per-source circuit
    breakers isolate crash-looping captures (exponential backoff,
    half-open probes, permanent quarantine after ``--breaker-trips``),
    and resource watchdogs (``--min-free-bytes``, ``--max-rss``,
    ``--max-live-flows``) drive a graceful-degradation ladder
    (healthy → degraded → shedding → draining) surfaced on
    ``/healthz`` and a Prometheus-text ``/metrics`` endpoint.

``fuzz [--seed S] [--count N] [--reproducers DIR] [--verbose]``
    Run the adversarial scenario fuzzer: N seeded scenarios composing
    path pathologies, filter defects, and middlebox damage, each
    pushed through the full pipeline (encode → ingest → demux →
    identification).  Every scenario must identify correctly, refuse
    honestly, or quarantine with a classified error — an escaped
    exception or a silent misidentification fails the run (exit 1),
    and a minimized reproducer pcap is written per failure.

``stats TRACE.pcap``
    Per-connection summary statistics (tcptrace-style); handles
    multi-connection captures.

``list``
    List the known implementations and scenarios.

``plot TRACE.pcap``
    Print an ASCII time-sequence plot of the trace.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.core.fit import identify_implementation
from repro.core.report import analyze_trace
from repro.harness.scenarios import SCENARIOS, traced_transfer
from repro.serve.governor import (
    DEFAULT_BREAKER_BACKOFF,
    DEFAULT_BREAKER_FAILURES,
    DEFAULT_BREAKER_TRIPS,
)
from repro.tcp.catalog import CATALOG, get_behavior
from repro.trace.pcap import read_pcap, write_pcap
from repro.units import kbyte


def _command_analyze(args: argparse.Namespace) -> int:
    trace = read_pcap(args.trace)
    behavior = get_behavior(args.implementation) if args.implementation \
        else None
    peer = read_pcap(args.peer) if args.peer else None
    report = analyze_trace(trace, behavior, peer_trace=peer,
                           identify=args.identify,
                           headers_only=args.headers_only)
    print(report.render())
    return 0


def _command_identify(args: argparse.Namespace) -> int:
    from repro.core.engine import IdentificationEngine
    trace = read_pcap(args.trace)
    engine = None if args.exhaustive else IdentificationEngine()
    if args.receiver:
        if engine is not None:
            fits = engine.identify_receiver(trace)
        else:
            from repro.core.fit import identify_receiver
            fits = identify_receiver(trace)
        for fit in fits:
            notes = ("; ".join(fit.inconsistencies)
                     if fit.inconsistencies else "")
            print(f"  {fit.implementation:16s} {fit.category:10s} {notes}")
        close = [f.implementation for f in fits if f.category == "close"]
        print(f"\nacking-policy close fits: {', '.join(close) or 'none'}")
        return 0
    report = (engine.identify_sender(trace) if engine is not None
              else identify_implementation(trace))
    print(report.summary())
    best = report.best
    if best is not None and best.category == "close":
        print(f"\nbest fit: {best.implementation}")
    else:
        print("\nno close fit found: either a measurement problem or an "
              "implementation unknown to tcpanaly")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    behavior = get_behavior(args.implementation)
    transfer = traced_transfer(behavior, args.scenario,
                               data_size=args.size, seed=args.seed)
    sender_path = f"{args.out}-sender.pcap"
    receiver_path = f"{args.out}-receiver.pcap"
    write_pcap(transfer.sender_trace, sender_path)
    write_pcap(transfer.receiver_trace, receiver_path)
    result = transfer.result
    print(f"{args.implementation} on {args.scenario}: "
          f"{'completed' if result.completed else 'INCOMPLETE'} in "
          f"{result.duration:.3f}s, "
          f"{result.sender.stats_data_packets} data packets, "
          f"{result.sender.stats_retransmissions} retransmissions, "
          f"throughput {result.throughput / 1024:.1f} KB/s")
    print(f"wrote {sender_path} and {receiver_path}")
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    from repro.core.calibrate import calibrate_trace
    trace = read_pcap(args.trace)
    behavior = get_behavior(args.implementation) if args.implementation \
        else None
    peer = read_pcap(args.peer) if args.peer else None
    report = calibrate_trace(trace, behavior, peer_trace=peer)
    print(report.summary())
    if report.clean:
        print("verdict: no measurement errors detected")
        return 0
    print("verdict: measurement errors present — findings follow")
    for evidence in report.drop_evidence[:20]:
        print(f"  drop evidence [{evidence.check}] t={evidence.time:.6f}: "
              f"{evidence.detail}")
    for event in report.resequencing[:20]:
        print(f"  resequencing [{event.situation}] t={event.time:.6f}: "
              f"{event.detail}")
    for event in report.time_travel[:20]:
        print(f"  time travel at record {event.index}: clock stepped back "
              f"{event.magnitude * 1e3:.1f} ms")
    if report.duplicates:
        print(f"  {len(report.duplicates)} measurement duplicates "
              f"(IRIX-style double copies)")
    return 1


def _command_demux(args: argparse.Namespace) -> int:
    import json

    from repro.stream import IngestStats, analyze_stream

    stats = IngestStats()
    flows = 0
    quarantined = 0
    jsonl_lines: list[str] = []
    for flow_report in analyze_stream(
            args.trace, identify=args.identify, stats=stats,
            tolerant=True,
            idle_timeout=args.idle_timeout, max_flows=args.max_flows,
            syn_only=not args.no_syn_only):
        flows += 1
        flow = flow_report.flow
        print(f"=== {flow_report.name}: {flow.describe()} ===")
        if flow_report.error is not None:
            quarantined += 1
            print(f"analysis failed [{flow_report.error.kind}]: "
                  f"{flow_report.error.message}")
        else:
            print(flow_report.report.render())
        print()
        if args.jsonl:
            payload = {"trace": f"{args.trace}#{flow_report.name}"}
            payload.update(flow_report.to_dict())
            jsonl_lines.append(json.dumps(payload, sort_keys=True))
    print(f"{flows} connection(s) demultiplexed from {args.trace}")
    if quarantined:
        print(f"{quarantined} connection(s) quarantined "
              f"(analysis failed; see error_kind)")
    print(stats.summary())
    if args.jsonl:
        with open(args.jsonl, "w") as handle:
            for line in jsonl_lines:
                handle.write(line + "\n")
        print(f"wrote {flows} result(s) to {args.jsonl}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal
    from pathlib import Path

    from repro.serve import ServeConfig, ServeDaemon

    captures = [Path(capture) for capture in args.captures]
    if not captures and args.spool is None:
        raise ValueError("serve needs at least one capture file "
                         "or --spool DIR")
    timeout = args.timeout
    if timeout is not None and timeout <= 0:
        timeout = None
    config = ServeConfig(
        out_dir=Path(args.out),
        captures=captures,
        spool=Path(args.spool) if args.spool else None,
        workers=args.jobs,
        timeout=timeout,
        retries=args.retries,
        http_port=args.http,
        high_water=args.high_water,
        low_water=args.low_water,
        poll_interval=args.poll,
        exit_when_idle=args.exit_when_idle,
        quiet_seconds=args.quiet,
        min_free_bytes=args.min_free_bytes,
        max_rss_bytes=args.max_rss,
        max_live_flows=args.max_live_flows,
        breaker_failures=args.breaker_failures,
        breaker_backoff=args.breaker_backoff,
        breaker_trips=args.breaker_trips,
        on_rotate=args.on_rotate,
        fsync=args.fsync)
    daemon = ServeDaemon(config)

    def drain(signum, frame) -> None:
        # Flip a flag and return: the daemon loop notices, stops
        # tailing, finishes submitted flows, and exits 0.  Repeated
        # signals are idempotent — the drain is already underway.
        daemon.request_stop()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    sources = [str(capture) for capture in captures]
    if args.spool:
        sources.append(f"spool:{args.spool}")
    print(f"tcpanaly serve: {', '.join(sources)} -> {args.out} "
          f"({args.jobs} worker(s))", flush=True)
    code = daemon.run()
    counters = daemon.metrics.to_dict()["counters"]
    health = daemon.metrics.to_dict()["health"]
    print(f"tcpanaly serve: drained — "
          f"{counters['flows_completed']} flow(s) analyzed, "
          f"{counters['sink_lines']} sink line(s), "
          f"{counters['journal_skips']} resumed from journal, "
          f"exit health {health['state']}",
          flush=True)
    return code


def _batch_run(items, args, journal=None) -> int:
    """Shared tail of ``batch`` and ``corpus --analyze``."""
    from repro.pipeline import (
        ResultCache,
        aggregate_report,
        run_batch,
        write_jsonl,
    )
    cache = ResultCache(args.cache) if args.cache else None
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        timeout = None   # --timeout 0: no budget, plain in-process path
    try:
        batch = run_batch(items, jobs=args.jobs, cache=cache,
                          stream=getattr(args, "stream", False),
                          timeout=timeout,
                          retries=getattr(args, "retries", 2),
                          journal=journal)
    finally:
        if journal is not None:
            journal.close()
    if args.jsonl:
        write_jsonl(batch.results, args.jsonl)
        print(f"wrote {len(batch.results)} result(s) to {args.jsonl}")
    print(aggregate_report(batch))
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.pipeline import BatchJournal, corpus_items
    items = corpus_items(args.corpus_dir)
    journal = None
    if not args.no_journal:
        path = args.journal or Path(args.corpus_dir) \
            / ".tcpanaly-journal.jsonl"
        journal = BatchJournal(path, stream=args.stream,
                               resume=args.resume)
        if args.resume and len(journal):
            print(f"resuming from {path}: {len(journal)} item(s) "
                  f"already completed")
    return _batch_run(items, args, journal=journal)


def _command_corpus(args: argparse.Namespace) -> int:
    from repro.harness.corpus import write_corpus
    implementations = None
    if args.implementations:
        implementations = args.implementations.split(",")
        unknown = [label for label in implementations
                   if label not in CATALOG]
        if unknown:
            raise ValueError(
                f"unknown implementation(s): {', '.join(unknown)} "
                f"(see `tcpanaly list`)")
    written = write_corpus(args.outdir, implementations=implementations,
                           traces_per_implementation=args.per_implementation,
                           data_size=args.size)
    print(f"wrote {len(written)} trace pairs to {args.outdir}")
    if not args.analyze:
        return 0
    from repro.pipeline import memory_items
    return _batch_run(memory_items(written), args)


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_sweep

    if args.count < 1:
        raise ValueError(f"--count must be at least 1, got {args.count}")

    def progress(outcome) -> None:
        if args.verbose or not outcome.ok:
            marker = "ok  " if outcome.ok else "FAIL"
            print(f"{marker} {outcome.plan.describe()}")
            print(f"     -> {outcome.outcome}: {outcome.detail}")

    report = run_sweep(base_seed=args.seed, count=args.count,
                       reproducer_dir=args.reproducers,
                       minimize=not args.no_minimize,
                       progress=progress)
    print(report.summary())
    if not report.passed and args.reproducers:
        print(f"minimized reproducers written to {args.reproducers}")
    return 0 if report.passed else 1


def _command_stats(args: argparse.Namespace) -> int:
    from repro.analysis.connstats import connection_stats, split_connections
    trace = read_pcap(args.trace)
    connections = split_connections(trace)
    print(f"{len(connections)} connection(s) in {args.trace}")
    for connection in connections.values():
        print()
        print(connection_stats(connection).render())
    return 0


def _command_list(args: argparse.Namespace) -> int:
    print("implementations:")
    for label, behavior in sorted(CATALOG.items()):
        print(f"  {label:16s} lineage={behavior.lineage.value}")
    print("\nscenarios:")
    for name, scenario in SCENARIOS.items():
        print(f"  {name:18s} {scenario.description}")
    return 0


def _command_plot(args: argparse.Namespace) -> int:
    trace = read_pcap(args.trace)
    print(render_ascii_plot(sequence_plot(trace, title=args.trace)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tcpanaly",
        description="Automated packet trace analysis of TCP implementations")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze one trace")
    analyze.add_argument("trace")
    analyze.add_argument("--implementation", "-i", default=None,
                         help="candidate implementation label")
    analyze.add_argument("--peer", default=None,
                         help="peer-side trace for timing calibration")
    analyze.add_argument("--identify", action="store_true",
                         help="also rank all known implementations")
    analyze.add_argument("--headers-only", action="store_true",
                         help="treat the trace as header-only (infer "
                         "corruption instead of verifying checksums)")
    analyze.set_defaults(handler=_command_analyze)

    identify = sub.add_parser("identify",
                              help="rank all known implementations")
    identify.add_argument("trace")
    identify.add_argument("--exhaustive", action="store_true",
                          help="disable the identification engine's "
                          "pruning/sharing; run one full analysis per "
                          "candidate")
    identify.add_argument("--receiver", action="store_true",
                          help="identify by receiver acking policy "
                          "instead of sender congestion behavior")
    identify.set_defaults(handler=_command_identify)

    simulate = sub.add_parser("simulate",
                              help="simulate a transfer, write pcaps")
    simulate.add_argument("implementation")
    simulate.add_argument("--scenario", default="wan",
                          choices=sorted(SCENARIOS))
    simulate.add_argument("--size", type=int, default=kbyte(100))
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--out", default="transfer")
    simulate.set_defaults(handler=_command_simulate)

    calibrate = sub.add_parser("calibrate",
                               help="measurement-error checks only")
    calibrate.add_argument("trace")
    calibrate.add_argument("--implementation", "-i", default=None)
    calibrate.add_argument("--peer", default=None)
    calibrate.set_defaults(handler=_command_calibrate)

    corpus = sub.add_parser("corpus", help="generate a trace corpus")
    corpus.add_argument("outdir")
    corpus.add_argument("--per-implementation", type=int, default=2)
    corpus.add_argument("--size", type=int, default=kbyte(100))
    corpus.add_argument("--implementations", default=None,
                        help="comma-separated labels (default: the "
                        "Table 1 core study set)")
    corpus.add_argument("--analyze", action="store_true",
                        help="feed the generated corpus straight into "
                        "the batch pipeline")
    corpus.add_argument("--jobs", type=int, default=1,
                        help="worker processes for --analyze")
    corpus.add_argument("--cache", default=None,
                        help="result-cache directory for --analyze")
    corpus.add_argument("--jsonl", default=None,
                        help="per-trace JSONL output for --analyze")
    corpus.set_defaults(handler=_command_corpus)

    batch = sub.add_parser("batch",
                           help="batch-analyze every pcap in a corpus "
                           "directory")
    batch.add_argument("corpus_dir")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = sequential, "
                       "deterministic execution order)")
    batch.add_argument("--cache", default=None,
                       help="on-disk result cache directory (keyed by "
                       "trace content hash + catalog version)")
    batch.add_argument("--jsonl", default=None,
                       help="write per-trace results as JSON Lines")
    batch.add_argument("--stream", action="store_true",
                       help="use the streaming ingest + flow-demux path; "
                       "multi-connection captures fan out into "
                       "per-connection results")
    batch.add_argument("--timeout", type=float, default=300.0,
                       help="per-trace wall-clock timeout in seconds; a "
                       "trace still running past it is killed and "
                       "quarantined as error_kind \"timeout\" (0 "
                       "disables the budget and the worker supervisor)")
    batch.add_argument("--retries", type=int, default=2,
                       help="how many times a trace whose worker crashed "
                       "is requeued before being quarantined as "
                       "error_kind \"crash\"")
    batch.add_argument("--journal", default=None,
                       help="checkpoint journal path (default: "
                       "CORPUS_DIR/.tcpanaly-journal.jsonl); completed "
                       "items are recorded durably as they finish")
    batch.add_argument("--no-journal", action="store_true",
                       help="disable the checkpoint journal")
    batch.add_argument("--resume", action="store_true",
                       help="replay items already completed in the "
                       "journal and analyze only the remainder; the "
                       "final output is byte-identical to an "
                       "uninterrupted run")
    batch.set_defaults(handler=_command_batch)

    demux = sub.add_parser("demux",
                           help="stream a capture into per-connection "
                           "reports")
    demux.add_argument("trace")
    demux.add_argument("--identify", action="store_true",
                       help="also rank known implementations per flow")
    demux.add_argument("--idle-timeout", type=float, default=64.0,
                       help="seconds of silence before a flow is retired")
    demux.add_argument("--max-flows", type=int, default=4096,
                       help="live-flow cap (LRU eviction beyond it)")
    demux.add_argument("--no-syn-only", action="store_true",
                       help="admit mid-capture flows that never showed "
                       "a SYN")
    demux.add_argument("--jsonl", default=None,
                       help="write per-flow results as JSON Lines")
    demux.set_defaults(handler=_command_demux)

    serve = sub.add_parser("serve",
                           help="always-on analysis daemon: tail growing "
                           "captures, analyze flows live")
    serve.add_argument("captures", nargs="*",
                       help="pcap files to tail (they may still be "
                       "growing, or not exist yet)")
    serve.add_argument("--spool", default=None,
                       help="directory watched for drop-in *.pcap "
                       "captures")
    serve.add_argument("--out", required=True,
                       help="output directory: results/*.jsonl per "
                       "source, journal.jsonl, http.port")
    serve.add_argument("--jobs", type=int, default=2,
                       help="analysis worker processes")
    serve.add_argument("--http", type=int, default=None, metavar="PORT",
                       help="serve /healthz, /readyz, /stats on this "
                       "local port (0 = ephemeral, see http.port)")
    serve.add_argument("--timeout", type=float, default=300.0,
                       help="per-flow wall-clock analysis timeout; 0 "
                       "disables the budget")
    serve.add_argument("--retries", type=int, default=2,
                       help="crash-requeue budget per flow before "
                       "quarantine")
    serve.add_argument("--high-water", type=int, default=64,
                       help="queued flows at which tailing pauses "
                       "(backpressure)")
    serve.add_argument("--low-water", type=int, default=8,
                       help="queued flows at which tailing resumes")
    serve.add_argument("--poll", type=float, default=0.2,
                       help="daemon loop tick in seconds")
    serve.add_argument("--exit-when-idle", action="store_true",
                       help="exit 0 once every source is quiet (treat "
                       "captures as complete; batch-comparison mode)")
    serve.add_argument("--quiet", type=float, default=2.0,
                       help="seconds of quiescence that count as idle "
                       "for --exit-when-idle")
    serve.add_argument("--min-free-bytes", type=int, default=0,
                       help="disk watchdog: degrade when free space "
                       "under --out falls below this (0 = off)")
    serve.add_argument("--max-rss", type=int, default=0,
                       help="memory watchdog: shed live flows when "
                       "process RSS exceeds this many bytes (0 = off)")
    serve.add_argument("--max-live-flows", type=int, default=0,
                       help="live-flow budget across all sources; "
                       "oldest flows early-retire beyond it (0 = off)")
    serve.add_argument("--breaker-failures", type=int,
                       default=DEFAULT_BREAKER_FAILURES,
                       help="consecutive worker-fatal results that "
                       "trip a source's circuit breaker")
    serve.add_argument("--breaker-backoff", type=float,
                       default=DEFAULT_BREAKER_BACKOFF,
                       help="first-trip breaker backoff in seconds "
                       "(doubles per trip)")
    serve.add_argument("--breaker-trips", type=int,
                       default=DEFAULT_BREAKER_TRIPS,
                       help="breaker trips before a source is "
                       "quarantined permanently")
    serve.add_argument("--on-rotate", choices=("quarantine", "restart"),
                       default="quarantine",
                       help="policy for a capture rotated/truncated "
                       "in place")
    serve.add_argument("--fsync", action="store_true",
                       help="fsync the result sink after every line")
    serve.set_defaults(handler=_command_serve)

    fuzz = sub.add_parser("fuzz",
                          help="adversarial scenario fuzzing: the "
                          "standing correctness gate")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed; scenario i uses seed + i, so a "
                      "reported failing seed reproduces alone")
    fuzz.add_argument("--count", type=int, default=50,
                      help="number of scenarios to generate and run")
    fuzz.add_argument("--reproducers", default=None,
                      help="directory for minimized failure reproducers "
                      "(pcap + plan JSON per failing seed)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="save failing captures whole instead of "
                      "delta-minimizing them first")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print one line per scenario, not just "
                      "failures")
    fuzz.set_defaults(handler=_command_fuzz)

    stats = sub.add_parser("stats", help="per-connection statistics")
    stats.add_argument("trace")
    stats.set_defaults(handler=_command_stats)

    lister = sub.add_parser("list", help="list implementations & scenarios")
    lister.set_defaults(handler=_command_list)

    plot = sub.add_parser("plot", help="ASCII time-sequence plot")
    plot.add_argument("trace")
    plot.set_defaults(handler=_command_plot)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Ctrl-C is a deliberate stop, not a crash: one line, no
        # traceback, and the conventional 128+SIGINT exit code.  A
        # journaled batch can pick up exactly where it stopped.
        hint = " — resume with --resume" if args.command == "batch" else ""
        print(f"tcpanaly: interrupted{hint}", file=sys.stderr)
        return 130
    except (OSError, ValueError) as error:
        # A missing file, an unreadable path, or a non-pcap input is a
        # usage problem, not a crash: one line on stderr, exit 2.
        print(f"tcpanaly: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
