"""The parameterized TCP receiver.

Implements the passive end of a bulk transfer: SYN-ack handshake,
in-order reassembly with an out-of-order queue, and — the part the
paper studies (§7, §9) — the acknowledgement policy:

* BSD-derived stacks run a free-running 200 ms *heartbeat* timer; data
  that arrives between beats waits for the next beat unless two full
  segments accumulate, producing delayed-ack latencies uniform on
  [0, 200) ms (§9.1).
* Linux 1.0 acks every packet immediately (~1 ms).
* Solaris arms a one-shot 50 ms timer when data arrives; §9.1 shows
  this makes every in-sequence ack a delayed ack on slow links.

Out-of-sequence data always provokes an immediate duplicate ack (a
*mandatory* ack obligation in tcpanaly's terms).
"""

from __future__ import annotations

from repro.netsim.engine import Engine, Timer
from repro.netsim.node import Host
from repro.packets import ACK, SYN, Endpoint, FlowKey, Segment, SourceQuench
from repro.tcp.params import AckPolicy, TCPBehavior
from repro.units import seq_add, seq_diff, seq_ge, seq_gt, seq_le


class TCPReceiver:
    """Passive-opening TCP endpoint sinking a unidirectional bulk send."""

    def __init__(self, engine: Engine, host: Host, behavior: TCPBehavior,
                 local: Endpoint, remote: Endpoint, mss: int = 1460,
                 buffer_size: int = 65535, irs: int = 0,
                 consume_rate: float | None = None,
                 heartbeat_phase: float = 0.0):
        self.engine = engine
        self.host = host
        self.behavior = behavior
        self.local = local
        self.remote = remote
        self.offered_mss = mss
        self.buffer_size = buffer_size
        self.iss = irs
        #: Application consumption rate in bytes/sec; None = immediate.
        self.consume_rate = consume_rate
        #: Offset of the first heartbeat tick.  The real BSD heartbeat
        #: free-runs from boot, so its phase relative to any one
        #: connection is arbitrary — which is what spreads delayed-ack
        #: delays uniformly over [0, 200) ms (§9.1).
        self.heartbeat_phase = heartbeat_phase % behavior.delayed_ack_timeout

        self.state = "LISTEN"
        self.rcv_nxt = 0
        self.peer_mss = mss
        self.buffered = 0             # delivered to socket, not yet consumed
        #: Out-of-order queue: list of (start_seq, end_seq) intervals.
        self.ooo: list[tuple[int, int]] = []
        self.fin_seen = False
        self.finished = False

        self._unacked_bytes = 0       # in-sequence data not yet acked
        self._consumed_since_ack = 0  # consumed by the app, not yet acked
        self._last_ack_sent = 0
        #: Highest sequence ever advertised as acceptable; a window
        #: advertisement is a promise that is never reneged on.
        self._advertised_high = 0
        self._delack_pending = False
        self._delack_timer: Timer | None = None
        self._heartbeat_started = False
        self._consume_timer: Timer | None = None

        self.stats_acks_sent = 0
        self.stats_data_received = 0
        self.stats_duplicate_data = 0
        self.stats_probes_rejected = 0

        self.flow = FlowKey(local, remote)

    def listen(self) -> None:
        """Register for the expected inbound flow."""
        self.host.register(self.flow, self)

    # -- segment arrival -----------------------------------------------------

    def receive(self, segment: Segment) -> None:
        if self.state == "LISTEN":
            if segment.is_syn and not segment.has_ack:
                self._handle_syn(segment)
            return
        if segment.is_syn and not segment.has_ack:
            # A retransmitted SYN: our SYN-ack was lost.  Re-send it.
            if seq_add(segment.seq, 1) == self.rcv_nxt:
                self.engine.schedule(self.behavior.response_delay,
                                     self._send_synack)
            return
        self.engine.schedule(self.behavior.response_delay,
                             lambda s=segment: self._process(s))

    def receive_quench(self, quench: SourceQuench) -> None:
        pass  # receivers of a bulk transfer send no data to quench

    def _handle_syn(self, segment: Segment) -> None:
        self.peer_mss = (segment.mss_option if segment.mss_option is not None
                         else 536)
        self.rcv_nxt = seq_add(segment.seq, 1)
        self._last_ack_sent = self.rcv_nxt
        self.state = "SYN_RCVD"
        self.engine.schedule(self.behavior.response_delay, self._send_synack)

    def _send_synack(self) -> None:
        synack = Segment(
            src=self.local, dst=self.remote, seq=self.iss, ack=self.rcv_nxt,
            flags=SYN | ACK, window=self._window(),
            mss_option=self.offered_mss if self.behavior.offers_mss_option
            else None)
        self._advertised_high = seq_add(self.rcv_nxt, self._window())
        self.host.send(synack)
        self.state = "ESTABLISHED"
        if self.behavior.ack_policy is AckPolicy.HEARTBEAT_200MS:
            self._start_heartbeat()

    # -- data processing -----------------------------------------------------

    def _window(self) -> int:
        return max(self.buffer_size - self.buffered, 0)

    def _process(self, segment: Segment) -> None:
        if self.finished:
            return
        if segment.payload == 0 and not segment.is_fin:
            return  # a bare ack from the sender (e.g. handshake third packet)

        seg_start = segment.seq
        seg_len = segment.payload + (1 if segment.is_fin else 0)
        seg_end = seq_add(seg_start, seg_len)

        if (seg_len > 0
                and seq_ge(seg_start, self._advertised_high)):
            # Outside the offered window — a zero-window probe, or data
            # sent past the advertisement.  Discard, but ack so the
            # sender learns the current window.
            self.stats_probes_rejected += 1
            self._send_ack()
            return

        if seq_le(seg_end, self.rcv_nxt):
            # Entirely old data: a retransmission of something already
            # received.  Mandatory immediate ack (it is a dup ack from
            # the sender's perspective).
            self.stats_duplicate_data += 1
            self._send_ack()
            return

        if seq_gt(seg_start, self.rcv_nxt):
            # Above a sequence hole: queue it and send an immediate dup
            # ack — a mandatory obligation (§7).
            self._insert_ooo(seg_start, seg_end, segment.is_fin)
            self._send_ack()
            return

        # In sequence (possibly overlapping rcv_nxt): accept new bytes.
        new_bytes = seq_diff(seg_end, self.rcv_nxt)
        advanced_over_hole = False
        self.rcv_nxt = seg_end
        if segment.is_fin:
            self.fin_seen = True
            new_bytes -= 1  # the FIN consumes sequence space, not buffer
        self.stats_data_received += new_bytes
        self._accept_bytes(new_bytes)
        # Pull any now-contiguous out-of-order data.
        while self.ooo and seq_le(self.ooo[0][0], self.rcv_nxt):
            start, end = self.ooo.pop(0)
            if seq_gt(end, self.rcv_nxt):
                gained = seq_diff(end, self.rcv_nxt)
                if self._ooo_fin_end is not None and end == self._ooo_fin_end:
                    self.fin_seen = True
                    gained -= 1
                self.rcv_nxt = end
                self.stats_data_received += gained
                self._accept_bytes(gained)
            advanced_over_hole = True

        if self.fin_seen and self.rcv_nxt != self._last_ack_sent:
            # Connection teardown: ack the FIN immediately.
            self._send_ack()
            self.finished = True
            return
        if advanced_over_hole and self.behavior.immediate_ack_on_hole_fill:
            # Filling a hole is acked immediately: the sender is
            # retransmitting and needs prompt feedback.  Solaris 2.3's
            # minor acking bug (§8.6) skips this and falls through to
            # the ordinary delayed-ack machinery.
            self._send_ack()
            return
        self._ack_in_sequence_data()

    _ooo_fin_end: int | None = None

    def _insert_ooo(self, start: int, end: int, is_fin: bool) -> None:
        if is_fin:
            self._ooo_fin_end = end
        for existing_start, existing_end in self.ooo:
            if existing_start == start and existing_end == end:
                return
        self.ooo.append((start, end))
        self.ooo.sort(key=lambda iv: seq_diff(iv[0], self.rcv_nxt))

    def _accept_bytes(self, n: int) -> None:
        if n <= 0:
            return
        if self.consume_rate is None:
            return  # application consumes instantly; window never shrinks
        self.buffered += n
        if self._consume_timer is None:
            self._schedule_consume()

    def _schedule_consume(self) -> None:
        chunk = min(self.buffered, self.peer_mss)
        if chunk <= 0:
            self._consume_timer = None
            return
        delay = chunk / self.consume_rate
        self._consume_timer = self.engine.schedule(
            delay, lambda: self._consume(chunk))

    def _consume(self, chunk: int) -> None:
        self._consume_timer = None
        opened_from = self._window()
        self.buffered -= chunk
        self._consumed_since_ack += chunk
        # A consumption that re-opens a previously tighter window causes
        # a window-update ack (BSD behaviour when the window opens by
        # two segments or half the buffer).  Consumption-acking stacks
        # also generate the every-two-segments ack here (§9.1).
        threshold_ack = (self.behavior.ack_on_consumption
                         and self._consumed_since_ack
                         >= self.behavior.ack_every_segments * self.peer_mss)
        if (threshold_ack
                or self._window() - opened_from >= 2 * self.peer_mss
                or (opened_from == 0 and self._window() > 0)):
            self._send_ack()
        self._schedule_consume()

    # -- ack policies ----------------------------------------------------------

    def _ack_in_sequence_data(self) -> None:
        policy = self.behavior.ack_policy
        self._unacked_bytes = seq_diff(self.rcv_nxt, self._last_ack_sent)
        if policy is AckPolicy.EVERY_PACKET:
            self._send_ack()
            return
        if (self.behavior.ack_on_consumption
                and self.consume_rate is not None):
            # BSD acks the two-segment threshold when the application
            # has CONSUMED that much (§9.1); with a rate-limited reader
            # the ack waits for the read, so only arm the delayed-ack
            # machinery here — _consume() sends the threshold ack.
            self._delack_pending = True
            if policy is AckPolicy.INTERVAL_50MS and \
                    self._delack_timer is None:
                self._delack_timer = self.engine.schedule(
                    self.behavior.delayed_ack_timeout, self._delack_fire)
            return
        if self._unacked_bytes >= (self.behavior.ack_every_segments
                                   * self.peer_mss):
            self._send_ack()
            return
        self._delack_pending = True
        if policy is AckPolicy.INTERVAL_50MS and self._delack_timer is None:
            self._delack_timer = self.engine.schedule(
                self.behavior.delayed_ack_timeout, self._delack_fire)
        # HEARTBEAT_200MS: the free-running heartbeat will pick it up.

    def _start_heartbeat(self) -> None:
        if self._heartbeat_started:
            return
        self._heartbeat_started = True
        if self.heartbeat_phase > 0:
            self.engine.schedule(self.heartbeat_phase, self._heartbeat_tick)
        else:
            self._heartbeat_tick()

    def _heartbeat_tick(self) -> None:
        if self.finished:
            return
        if self._delack_pending:
            self._send_ack()
        self.engine.schedule(self.behavior.delayed_ack_timeout,
                             self._heartbeat_tick)

    def _delack_fire(self) -> None:
        self._delack_timer = None
        if self._delack_pending:
            self._send_ack()

    def _send_ack(self) -> None:
        ack = Segment(src=self.local, dst=self.remote, seq=self.iss + 1,
                      ack=self.rcv_nxt, flags=ACK, window=self._window())
        edge = seq_add(self.rcv_nxt, self._window())
        if seq_gt(edge, self._advertised_high):
            self._advertised_high = edge
        self.host.send(ack)
        self.stats_acks_sent += 1
        self._last_ack_sent = self.rcv_nxt
        self._unacked_bytes = 0
        self._consumed_since_ack = 0
        self._delack_pending = False
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None
