"""The TCP behavior catalog: every idiosyncrasy as a parameter.

The paper found (§4) that a generic-TCP analyzer was impossible — the
analyzer needs "intimate knowledge of the idiosyncrasies of the
different TCP implementations".  This module is that knowledge,
expressed as a dataclass whose fields are consumed both by the
simulated stacks (:mod:`repro.tcp.sender`, :mod:`repro.tcp.receiver`)
and by the analyzer's window models
(:mod:`repro.core.sender.windows`), so that each documented behavior
lives in exactly one place.

The congestion-window arithmetic helpers at the bottom are the shared
primitive operations (Eqn 1 / Eqn 2 increase, ssthresh cut with
rounding and minimum) that both sides use verbatim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: "Huge" initial values for cwnd/ssthresh: effectively unlimited, and
#: also the value the Net/3 uninitialized-cwnd bug leaves in place.
HUGE_WINDOW = 2**30


class Lineage(enum.Enum):
    """Where an implementation's TCP code came from (Table 1)."""

    TAHOE = "Tahoe"
    RENO = "Reno"
    INDEPENDENT = "Indep."


class IncreaseRule(enum.Enum):
    """Congestion-avoidance increase per ack.

    EQN1:  cwnd += MSS*MSS/cwnd                      (Tahoe, §8.1)
    EQN2:  cwnd += MSS*MSS/cwnd + MSS/8              (Reno, §8.2)

    The MSS/8 term gives Reno's super-linear increase, later viewed as
    too aggressive (credited to S. Floyd in [BP95]).
    """

    EQN1 = 1
    EQN2 = 2


class SsthreshRounding(enum.Enum):
    """How ssthresh is rounded when cut on retransmission (§8.3)."""

    NONE = "none"              # keep the exact halved value
    DOWN_TO_MSS = "down"       # round down to a segment multiple
    UP_TO_MSS = "up"           # round up to a segment multiple


class RTOStyle(enum.Enum):
    """Retransmission-timeout estimator families (§8.5, §8.6)."""

    JACOBSON = "jacobson"      # srtt + 4*rttvar, Karn's algorithm
    SOLARIS = "solaris"        # low initial RTO; collapses after rexmit ack
    LINUX10 = "linux10"        # no variance term; fires much too early
    TRUMPET = "trumpet"        # fixed aggressive timer, weak backoff


class AckPolicy(enum.Enum):
    """Receiver acknowledgement strategies (§9.1)."""

    HEARTBEAT_200MS = "heartbeat"    # BSD: 200 ms heartbeat delayed acks
    EVERY_PACKET = "every"           # Linux 1.0: immediate ack per packet
    INTERVAL_50MS = "interval"       # Solaris: 50 ms per-packet timer


class QuenchResponse(enum.Enum):
    """Response to an ICMP source quench (§6.2)."""

    SLOW_START = "slow_start"                    # BSD-derived
    SLOW_START_HALVE_SSTHRESH = "slow_start_halve"  # Solaris
    DECREMENT_CWND = "decrement"                 # Linux 1.0: cwnd -= MSS
    IGNORE = "ignore"


@dataclass(frozen=True)
class TCPBehavior:
    """Complete behavioral description of one TCP implementation.

    Defaults describe the paper's *generic Reno* (§8.2); the catalog
    expresses each implementation as deltas from this base, mirroring
    how tcpanaly's C++ classes derive from a base implementation (§5).
    """

    name: str = "reno"
    version: str = ""
    lineage: Lineage = Lineage.RENO

    # --- congestion window management (§6, §8) ---
    increase_rule: IncreaseRule = IncreaseRule.EQN2
    #: Congestion avoidance applies when cwnd >= ssthresh (True) or only
    #: when cwnd > ssthresh (False) — the §8.3 test variation.
    ca_on_equal: bool = True
    #: Lower bound, in segments, applied when ssthresh is cut.
    ssthresh_min_segments: int = 2
    ssthresh_rounding: SsthreshRounding = SsthreshRounding.DOWN_TO_MSS
    #: Initial ssthresh in segments; None = effectively unlimited.
    #: Linux 1.0 and Solaris use 1 (§8.5, §8.6), crippling early growth.
    initial_ssthresh_segments: int | None = None
    initial_cwnd_segments: int = 1

    # --- retransmission strategy ---
    fast_retransmit: bool = True
    dup_ack_threshold: int = 3
    fast_recovery: bool = True
    #: Solaris: fast-recovery code exists but a logic bug keeps it from
    #: being exercised (§8.6).
    fast_recovery_disabled_by_bug: bool = False
    #: Linux 1.0: retransmissions re-send *every* unacked packet in one
    #: burst, and a single dup ack can trigger this (§8.5).
    retransmit_whole_flight: bool = False
    dup_ack_triggers_flight_retransmit: bool = False

    # --- Reno-derivative bug flags (§8.3, §8.4, [BP95]) ---
    header_prediction_bug: bool = False
    fencepost_bug: bool = False
    #: Treat the MSS used in cwnd arithmetic as including option bytes.
    mss_confusion: bool = False
    #: Initialize cwnd from the MSS the sender itself offered rather
    #: than the negotiated value.
    cwnd_init_from_offered_mss: bool = False
    #: Net/3: SYN-ack without an MSS option leaves cwnd/ssthresh huge.
    uninitialized_cwnd_bug: bool = False
    clear_dupacks_on_timeout: bool = True
    dupack_updates_cwnd: bool = False

    # --- timers (§8.6) ---
    rto_style: RTOStyle = RTOStyle.JACOBSON
    initial_rto: float = 3.0
    min_rto: float = 1.0
    max_rto: float = 64.0
    #: Solaris bug: an ack for a retransmitted packet restores the RTO
    #: to its (too small) base instead of the adapted value.
    rto_collapse_on_rexmit_ack: bool = False
    #: Retransmission backoff multiplier (2.0 = proper doubling).
    backoff_factor: float = 2.0

    # --- connection establishment ---
    #: First SYN retry timeout; [St96] found some remote TCPs "did not
    #: correctly back off their connection-establishment retry timer"
    #: and sent "storms of up to 30 SYNs/sec".
    initial_syn_timeout: float = 3.0
    syn_backoff_factor: float = 2.0
    max_syn_retries: int = 6

    # --- zero-window probing and connection abandonment ---
    #: Initial persist-timer interval for zero-window probes; [CL94]
    #: found these vary across implementations.
    persist_interval: float = 5.0
    persist_backoff: float = 2.0
    max_persist_interval: float = 60.0
    #: Give up after this many consecutive retransmissions of the same
    #: data...
    max_data_retries: int = 12
    #: ...and, if so, whether the connection is properly terminated
    #: with a RST.  [DJM97] found some TCPs fail to send one.
    sends_rst_on_abort: bool = True

    # --- quirks ---
    #: Solaris: on a partial ack during a retransmission episode, it
    #: retransmits the packet *just after* the ack rather than sending
    #: newly liberated data (§8.6).
    rexmit_packet_after_ack: bool = False
    quench_response: QuenchResponse = QuenchResponse.SLOW_START

    # --- receiver behavior (§7, §9) ---
    ack_policy: AckPolicy = AckPolicy.HEARTBEAT_200MS
    #: Ack at least every N full-sized segments (RFC 1122 says 2).
    ack_every_segments: int = 2
    delayed_ack_timeout: float = 0.200
    #: BSD-derived stacks generate the every-two-segments ack when the
    #: *application* has consumed that much data, not when it arrived
    #: (§9.1) — with a prompt reader the difference vanishes, but a
    #: slow reader turns scheduling into ack-timing noise (§9.3).
    ack_on_consumption: bool = False
    #: Ack immediately when a retransmission fills a sequence hole.
    #: Solaris 2.3's minor acking-policy bug (fixed in 2.4, §8.6) treats
    #: the hole-filling ack as optional and delays it instead.
    immediate_ack_on_hole_fill: bool = True
    #: Offer an MSS option in SYN / SYN-ack packets.  A receiver that
    #: does not is the trigger for the Net/3 bug (§8.4).
    offers_mss_option: bool = True
    #: Kernel processing delay applied between receiving a packet and
    #: transmitting any response it provokes.
    response_delay: float = 0.0003

    def label(self) -> str:
        """Catalog label like ``"solaris-2.4"``."""
        return f"{self.name}-{self.version}" if self.version else self.name


# ---------------------------------------------------------------------------
# Shared congestion-arithmetic primitives.
#
# BSD kept cwnd and ssthresh in bytes with integer arithmetic; we do the
# same (floats truncated), since [BP95] showed the integer details have
# observable consequences for the window trajectory.
# ---------------------------------------------------------------------------


def effective_mss(behavior: TCPBehavior, negotiated_mss: int,
                  offered_mss: int | None = None) -> int:
    """MSS value used in congestion-window *arithmetic*.

    The ``mss_confusion`` bug counts TCP option bytes (4 for the MSS
    option) inside the MSS used for window bookkeeping; the
    ``cwnd_init_from_offered_mss`` bug is handled separately at
    initialization time.
    """
    mss = negotiated_mss
    if behavior.mss_confusion:
        mss += 4
    return mss


def initial_cwnd(behavior: TCPBehavior, negotiated_mss: int,
                 offered_mss: int, peer_offered_mss_option: bool) -> int:
    """Initial congestion window, honoring the Net/3 and init-MSS bugs."""
    if behavior.uninitialized_cwnd_bug and not peer_offered_mss_option:
        return HUGE_WINDOW
    base = offered_mss if behavior.cwnd_init_from_offered_mss else negotiated_mss
    if behavior.mss_confusion:
        base += 4
    return behavior.initial_cwnd_segments * base


def initial_ssthresh(behavior: TCPBehavior, negotiated_mss: int,
                     peer_offered_mss_option: bool) -> int:
    """Initial ssthresh, honoring the Net/3 bug and 1-MSS init."""
    if behavior.uninitialized_cwnd_bug and not peer_offered_mss_option:
        return HUGE_WINDOW
    if behavior.initial_ssthresh_segments is None:
        return HUGE_WINDOW
    return behavior.initial_ssthresh_segments * negotiated_mss


def in_congestion_avoidance(behavior: TCPBehavior, cwnd: int,
                            ssthresh: int) -> bool:
    """Apply the implementation's slow-start-vs-CA test (§8.3)."""
    if behavior.ca_on_equal:
        return cwnd >= ssthresh
    return cwnd > ssthresh


def increase_cwnd(behavior: TCPBehavior, cwnd: int, ssthresh: int,
                  mss: int, max_window: int) -> int:
    """New cwnd after an ack for new data (slow start or CA)."""
    if in_congestion_avoidance(behavior, cwnd, ssthresh):
        increment = (mss * mss) // cwnd
        if behavior.increase_rule is IncreaseRule.EQN2:
            increment += mss // 8
    else:
        increment = mss
    return min(cwnd + increment, max_window)


def cut_ssthresh(behavior: TCPBehavior, cwnd: int, offered_window: int,
                 mss: int) -> int:
    """ssthresh after a loss signal: half the flight-limiting window,
    rounded and floored per the implementation (§8.3)."""
    half = min(cwnd, offered_window) // 2
    if behavior.ssthresh_rounding is SsthreshRounding.DOWN_TO_MSS:
        half = (half // mss) * mss
    elif behavior.ssthresh_rounding is SsthreshRounding.UP_TO_MSS:
        half = ((half + mss - 1) // mss) * mss
    floor = behavior.ssthresh_min_segments * mss
    return max(half, floor)
