"""Retransmission-timeout estimators.

Four families, matching the catalog (§8.5, §8.6):

* :class:`JacobsonEstimator` — the standard srtt/rttvar estimator with
  Karn's algorithm, in the scaled integer arithmetic BSD uses (srtt
  kept as 8*avg, rttvar as 4*mdev, clock ticks of 500 ms), because
  [BP95] showed the integer details have observable effects.
* :class:`SolarisEstimator` — starts at ~300 ms; adapts sluggishly and,
  due to the §8.6 bug, collapses back to its base value whenever an
  ack for a retransmitted packet arrives, so it "never has much
  opportunity to adapt".
* :class:`Linux10Estimator` — mean-based, no variance term, so it fires
  much too early on paths with RTT variation, driving the broken
  retransmission behavior of §8.5.
* :class:`TrumpetEstimator` — a fixed aggressive timer with weak
  backoff, standing in for the §10 finding that Trumpet/Winsock
  "exhibits severe deficiencies".
"""

from __future__ import annotations

from repro.tcp.params import RTOStyle, TCPBehavior


class RTOEstimator:
    """Interface: feed RTT samples, ask for the current timeout."""

    def __init__(self, behavior: TCPBehavior):
        self.behavior = behavior
        self.backoff_shift = 0

    def sample(self, rtt: float, for_retransmitted: bool = False) -> None:
        """Incorporate a measured round-trip time.

        ``for_retransmitted`` marks samples from acks of retransmitted
        data; Karn's algorithm requires discarding them (ambiguous),
        and the Solaris bug reacts to them perversely.
        """
        raise NotImplementedError

    def base_rto(self) -> float:
        """Timeout before backoff is applied."""
        raise NotImplementedError

    def rto(self) -> float:
        """Current timeout including exponential backoff."""
        value = self.base_rto() * (self.behavior.backoff_factor
                                   ** self.backoff_shift)
        return min(max(value, self.behavior.min_rto), self.behavior.max_rto)

    def back_off(self) -> None:
        """Apply one step of timer backoff (after a timeout)."""
        self.backoff_shift = min(self.backoff_shift + 1, 12)

    def reset_backoff(self) -> None:
        self.backoff_shift = 0

    def clone(self) -> "RTOEstimator":
        """An independent copy of the estimator state.

        Every estimator's state is a handful of scalars plus the
        shared (frozen) behavior, so copying the instance dict is both
        exact and cheap — the analyzer snapshots estimators on every
        quench trial.
        """
        dup = self.__class__.__new__(self.__class__)
        dup.__dict__.update(self.__dict__)
        return dup


class JacobsonEstimator(RTOEstimator):
    """RFC 6298-style srtt/rttvar with Karn's algorithm."""

    def __init__(self, behavior: TCPBehavior):
        super().__init__(behavior)
        self.srtt: float | None = None
        self.rttvar = 0.0

    def sample(self, rtt: float, for_retransmitted: bool = False) -> None:
        if for_retransmitted:
            return  # Karn: ambiguous sample, discard
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            err = rtt - self.srtt
            self.srtt += err / 8.0
            self.rttvar += (abs(err) - self.rttvar) / 4.0

    def base_rto(self) -> float:
        if self.srtt is None:
            return self.behavior.initial_rto
        return self.srtt + max(4.0 * self.rttvar, 0.010)


class SolarisEstimator(RTOEstimator):
    """The §8.6 Solaris 2.3/2.4 timer.

    Adaptation is slow (small gains) and an ack for retransmitted data
    resets the estimate to the base value, so on a path whose RTT
    exceeds the ~300 ms initial RTO the first transmission of nearly
    every packet times out and is retransmitted needlessly.
    """

    def __init__(self, behavior: TCPBehavior):
        super().__init__(behavior)
        self.estimate = behavior.initial_rto

    def sample(self, rtt: float, for_retransmitted: bool = False) -> None:
        if for_retransmitted:
            if self.behavior.rto_collapse_on_rexmit_ack:
                self.estimate = self.behavior.initial_rto
            return
        # Sluggish adaptation: move only 1/8 of the way toward a value
        # that would actually cover the observed RTT.
        target = rtt * 1.25
        if target > self.estimate:
            self.estimate += (target - self.estimate) / 8.0
        else:
            self.estimate += (target - self.estimate) / 16.0

    def base_rto(self) -> float:
        return self.estimate


class Linux10Estimator(RTOEstimator):
    """Mean-based timer with no variance term: fires much too early."""

    def __init__(self, behavior: TCPBehavior):
        super().__init__(behavior)
        self.mean: float | None = None

    def sample(self, rtt: float, for_retransmitted: bool = False) -> None:
        if for_retransmitted:
            return
        if self.mean is None:
            self.mean = rtt
        else:
            self.mean += (rtt - self.mean) / 4.0

    def base_rto(self) -> float:
        if self.mean is None:
            return self.behavior.initial_rto
        # No variance term and a skimpy multiplier: any RTT fluctuation
        # above ~12% triggers a premature retransmission.
        return self.mean * 1.125


class TrumpetEstimator(RTOEstimator):
    """Fixed, aggressive timer; backoff barely grows."""

    def sample(self, rtt: float, for_retransmitted: bool = False) -> None:
        pass  # never adapts at all

    def base_rto(self) -> float:
        return self.behavior.initial_rto


def make_estimator(behavior: TCPBehavior) -> RTOEstimator:
    """Build the estimator the behavior catalog calls for."""
    styles = {
        RTOStyle.JACOBSON: JacobsonEstimator,
        RTOStyle.SOLARIS: SolarisEstimator,
        RTOStyle.LINUX10: Linux10Estimator,
        RTOStyle.TRUMPET: TrumpetEstimator,
    }
    return styles[behavior.rto_style](behavior)
