"""TCP implementations under study.

The stacks are parameterized by :class:`repro.tcp.params.TCPBehavior`,
a catalog of every sender/receiver idiosyncrasy the paper documents
(§§8–10).  :mod:`repro.tcp.catalog` registers the concrete
implementations of Table 1 plus the §10 additions.
"""

from repro.tcp.params import TCPBehavior
from repro.tcp.catalog import CATALOG, get_behavior, implementation_names
from repro.tcp.connection import BulkSender, BulkReceiver, run_bulk_transfer

__all__ = [
    "TCPBehavior",
    "CATALOG",
    "get_behavior",
    "implementation_names",
    "BulkSender",
    "BulkReceiver",
    "run_bulk_transfer",
]
