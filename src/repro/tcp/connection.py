"""High-level wiring: put a sender and receiver on a path and run.

:func:`run_bulk_transfer` is the workhorse used by scenarios, tests,
and benchmarks: it builds the canonical two-host path, attaches a
catalog sender and receiver, optionally installs packet filters, runs
the simulation, and returns everything of interest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.engine import Engine
from repro.netsim.link import LossModel
from repro.netsim.network import Path, build_path
from repro.packets import Endpoint
from repro.tcp.params import TCPBehavior
from repro.tcp.receiver import TCPReceiver
from repro.tcp.sender import TCPSender
from repro.units import kbyte, mbit

# Friendly aliases matching the public API named in the package docs.
BulkSender = TCPSender
BulkReceiver = TCPReceiver


@dataclass
class TransferResult:
    """Everything a caller might want to inspect after a transfer."""

    engine: Engine
    path: Path
    sender: TCPSender
    receiver: TCPReceiver

    @property
    def completed(self) -> bool:
        return self.sender.done and self.receiver.fin_seen

    @property
    def duration(self) -> float:
        return self.sender.finish_time or self.engine.now

    @property
    def throughput(self) -> float:
        """Goodput in bytes/second over the whole connection."""
        if not self.duration:
            return 0.0
        return self.sender.data_size / self.duration

    @property
    def retransmission_fraction(self) -> float:
        """Fraction of data packets that were retransmissions."""
        total = self.sender.stats_data_packets
        return self.sender.stats_retransmissions / total if total else 0.0


def run_bulk_transfer(sender_behavior: TCPBehavior,
                      receiver_behavior: TCPBehavior | None = None,
                      data_size: int = kbyte(100),
                      mss: int = 512,
                      receiver_mss: int = 1460,
                      bottleneck_bandwidth: float = mbit(1.0),
                      bottleneck_delay: float = 0.020,
                      queue_limit: int = 64,
                      forward_loss: LossModel | None = None,
                      reverse_loss: LossModel | None = None,
                      sender_window: int | None = None,
                      receiver_buffer: int = 65535,
                      consume_rate: float | None = None,
                      heartbeat_phase: float = 0.0,
                      quench_threshold: int | None = None,
                      max_duration: float = 600.0,
                      engine: Engine | None = None,
                      path: Path | None = None) -> TransferResult:
    """Run one unidirectional bulk transfer and return the result.

    The defaults reproduce the paper's measurement unit: a 100 KB
    transfer over a WAN-ish path.  Pass ``path`` to supply a
    pre-built (possibly tapped) topology; otherwise one is built from
    the bandwidth/delay/loss parameters.
    """
    if receiver_behavior is None:
        receiver_behavior = sender_behavior
    if path is None:
        engine = engine or Engine()
        path = build_path(engine,
                          bottleneck_bandwidth=bottleneck_bandwidth,
                          bottleneck_delay=bottleneck_delay,
                          queue_limit=queue_limit,
                          forward_loss=forward_loss,
                          reverse_loss=reverse_loss,
                          quench_threshold=quench_threshold)
    else:
        engine = path.engine

    local = Endpoint(path.sender.addr, 1024)
    remote = Endpoint(path.receiver.addr, 9000)
    sender = TCPSender(engine, path.sender, sender_behavior, local, remote,
                       data_size=data_size, mss=mss,
                       sender_window=sender_window)
    receiver = TCPReceiver(engine, path.receiver, receiver_behavior,
                           remote, local, mss=receiver_mss,
                           buffer_size=receiver_buffer,
                           consume_rate=consume_rate,
                           heartbeat_phase=heartbeat_phase)
    receiver.listen()
    sender.open()
    # Self-rescheduling background sources (cross traffic) keep the
    # event queue permanently non-empty, so a single
    # ``run(until=max_duration)`` would simulate the full horizon no
    # matter how quickly the transfer finished.  Run in one-second
    # slices instead and stop a short grace period after completion —
    # long enough for trailing teardown acks and delayed-ack timers to
    # be captured.  With a draining queue (no background sources) the
    # executed event sequence is identical to the single-call form.
    grace = 4 * path.rtt + 1.0
    stop_at = max_duration
    while engine.pending() and engine.now < stop_at:
        engine.run(until=min(engine.now + 1.0, stop_at))
        if stop_at == max_duration and sender.done and receiver.fin_seen:
            stop_at = min(max_duration, engine.now + grace)
    return TransferResult(engine=engine, path=path, sender=sender,
                          receiver=receiver)
