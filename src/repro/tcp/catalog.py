"""The implementation catalog: Table 1 plus the §10 additions.

Each entry is a :class:`~repro.tcp.params.TCPBehavior` expressed as a
delta from generic Tahoe or generic Reno, mirroring how tcpanaly's C++
classes derive from a base implementation (§5).

For the Reno derivatives, the paper summarizes the minor variations
only *qualitatively* (§8.3): presence/absence of the header-prediction
and MSS-confusion bugs, Eqn 1 vs Eqn 2, ssthresh rounding, dup-ack
counter handling, and offered-vs-negotiated MSS initialization.  We
assign each documented variation axis to at least one concrete
implementation so every behavior is represented in the corpus and is
distinguishable by the analyzer; the precise assignment of minor flags
to vendor names is a modelling choice (flagged in DESIGN.md), while
all *major* behaviors (Net/3 bug, SunOS-as-Tahoe, Linux 1.0 and
Solaris pathologies) follow the paper exactly.
"""

from __future__ import annotations

from dataclasses import replace

from repro.tcp.params import (
    AckPolicy,
    IncreaseRule,
    Lineage,
    QuenchResponse,
    RTOStyle,
    SsthreshRounding,
    TCPBehavior,
)

# --- the two generic bases (§8.1, §8.2) -----------------------------------

#: Generic Tahoe: slow start, congestion avoidance, fast retransmission,
#: no fast recovery; Eqn 1 increase; ssthresh never cut below one MSS;
#: congestion avoidance only when cwnd strictly exceeds ssthresh.
TAHOE = TCPBehavior(
    name="tahoe",
    lineage=Lineage.TAHOE,
    increase_rule=IncreaseRule.EQN1,
    ca_on_equal=False,
    ssthresh_min_segments=1,
    fast_recovery=False,
    header_prediction_bug=False,
    fencepost_bug=False,
    ack_on_consumption=True,
)

#: Generic Reno: adds fast recovery, the Eqn 2 super-linear increase,
#: and the header-prediction/fencepost deflation errors (§8.2).
RENO = TCPBehavior(
    name="reno",
    lineage=Lineage.RENO,
    increase_rule=IncreaseRule.EQN2,
    header_prediction_bug=True,
    fencepost_bug=True,
    ack_on_consumption=True,
)

# --- Table 1 implementations ----------------------------------------------

BSDI_11 = replace(RENO, name="bsdi", version="1.1",
                  cwnd_init_from_offered_mss=True)
BSDI_20 = replace(RENO, name="bsdi", version="2.0",
                  uninitialized_cwnd_bug=True)  # Net/3-derived
BSDI_21 = replace(RENO, name="bsdi", version="2.1",
                  uninitialized_cwnd_bug=True,
                  ssthresh_rounding=SsthreshRounding.NONE)

#: RECONSTRUCTED: the §9.1 "stretch acks" discussion is cut off in the
#: provided text ("Every implementation in our study except ...").
#: Table 1 lists OSF/1 1.3a; we model it as the stretch-ack offender —
#: acking only every *third* full-sized segment, beyond the RFC 1122
#: requirement of every second.
OSF1_13A = replace(RENO, name="osf1", version="1.3a",
                   increase_rule=IncreaseRule.EQN1,
                   header_prediction_bug=False,
                   ack_every_segments=3)
OSF1_20 = replace(RENO, name="osf1", version="2.0",
                  increase_rule=IncreaseRule.EQN1,
                  header_prediction_bug=False)
OSF1_32 = replace(OSF1_20, version="3.2",
                  clear_dupacks_on_timeout=False)  # later release, more bugs

HPUX_905 = replace(RENO, name="hpux", version="9.05",
                   mss_confusion=True,
                   ssthresh_rounding=SsthreshRounding.UP_TO_MSS)
HPUX_10 = replace(HPUX_905, version="10",
                  mss_confusion=False)

IRIX_52 = replace(RENO, name="irix", version="5.2",
                  dupack_updates_cwnd=True)
IRIX_62 = replace(IRIX_52, version="6.2",
                  dupack_updates_cwnd=False,
                  fencepost_bug=False)

NETBSD_10 = replace(RENO, name="netbsd", version="1.0",
                    uninitialized_cwnd_bug=True)

#: Generic Net/3 (TCP Lite), the [BP95] subject: Reno plus the
#: uninitialized-cwnd bug of §8.4.
NET3 = replace(RENO, name="net3", uninitialized_cwnd_bug=True)

SUNOS_413 = replace(TAHOE, name="sunos", version="4.1.3")

LINUX_10 = TCPBehavior(
    name="linux", version="1.0",
    lineage=Lineage.INDEPENDENT,
    increase_rule=IncreaseRule.EQN1,
    ca_on_equal=True,
    initial_ssthresh_segments=1,          # §8.5: crushes early performance
    fast_retransmit=False,                # §8.5
    fast_recovery=False,
    retransmit_whole_flight=True,         # §8.5: flights, not packets
    dup_ack_triggers_flight_retransmit=True,
    rto_style=RTOStyle.LINUX10,
    initial_rto=1.0,
    min_rto=0.2,
    backoff_factor=1.5,                   # "not fully doubling" (§8.5)
    quench_response=QuenchResponse.DECREMENT_CWND,
    ack_policy=AckPolicy.EVERY_PACKET,    # §8.5, §9.1
    response_delay=0.0008,                # acks "usually within 1 msec"
    header_prediction_bug=False,
    fencepost_bug=False,
)

SOLARIS_23 = TCPBehavior(
    name="solaris", version="2.3",
    lineage=Lineage.INDEPENDENT,
    increase_rule=IncreaseRule.EQN2,
    ca_on_equal=True,
    initial_ssthresh_segments=1,          # §8.6: conservative but slow
    ssthresh_min_segments=1,
    fast_retransmit=True,
    fast_recovery=True,
    fast_recovery_disabled_by_bug=True,   # §8.6: logic bug
    rto_style=RTOStyle.SOLARIS,
    initial_rto=0.3,                      # §8.6, [DJM97], [CL94]
    min_rto=0.2,
    rto_collapse_on_rexmit_ack=True,      # §8.6: never adapts
    rexmit_packet_after_ack=True,         # §8.6 quirk
    quench_response=QuenchResponse.SLOW_START_HALVE_SSTHRESH,
    ack_policy=AckPolicy.INTERVAL_50MS,   # §9.1
    delayed_ack_timeout=0.050,
    immediate_ack_on_hole_fill=False,     # the minor 2.3 acking bug
    header_prediction_bug=False,
    fencepost_bug=False,
)
SOLARIS_24 = replace(SOLARIS_23, version="2.4",
                     immediate_ack_on_hole_fill=True)

# --- §10 additions (RECONSTRUCTED: models built from the paper's
# --- qualitative characterization only) ------------------------------------

LINUX_20 = replace(LINUX_10, version="2.0.30",
                   retransmit_whole_flight=False,
                   dup_ack_triggers_flight_retransmit=False,
                   fast_retransmit=True,
                   initial_ssthresh_segments=None,
                   rto_style=RTOStyle.JACOBSON,
                   initial_rto=1.0,
                   min_rto=0.2,
                   backoff_factor=2.0)

TRUMPET = TCPBehavior(
    name="trumpet", version="2.0b",
    lineage=Lineage.INDEPENDENT,
    increase_rule=IncreaseRule.EQN1,
    ca_on_equal=True,
    fast_retransmit=False,
    fast_recovery=False,
    retransmit_whole_flight=True,
    rto_style=RTOStyle.TRUMPET,
    initial_rto=0.4,                      # fixed, aggressive, barely backs off
    min_rto=0.4,
    backoff_factor=1.2,
    quench_response=QuenchResponse.IGNORE,
    ack_policy=AckPolicy.EVERY_PACKET,
    header_prediction_bug=False,
    fencepost_bug=False,
)

WINDOWS_95 = TCPBehavior(
    name="windows", version="95",
    lineage=Lineage.INDEPENDENT,
    increase_rule=IncreaseRule.EQN1,
    ca_on_equal=True,
    header_prediction_bug=False,
    fencepost_bug=False,
)
WINDOWS_NT = replace(WINDOWS_95, version="NT",
                     ssthresh_rounding=SsthreshRounding.NONE)

#: RECONSTRUCTED from §6.2's aside: "an experimental TCP that tcpanaly
#: also knows about" initializes its congestion parameters from the
#: route cache — here, a remembered ssthresh of 8 segments, giving a
#: visible slow-start → congestion-avoidance transition with no loss.
EXPERIMENTAL_RC = replace(RENO, name="experimental", version="rc",
                          header_prediction_bug=False,
                          fencepost_bug=False,
                          initial_ssthresh_segments=8)

#: Every implementation tcpanaly knows about, keyed by its label.
CATALOG: dict[str, TCPBehavior] = {
    behavior.label(): behavior
    for behavior in (
        TAHOE, RENO, NET3,
        BSDI_11, BSDI_20, BSDI_21,
        OSF1_13A, OSF1_20, OSF1_32,
        HPUX_905, HPUX_10,
        IRIX_52, IRIX_62,
        NETBSD_10,
        SUNOS_413,
        LINUX_10,
        SOLARIS_23, SOLARIS_24,
        LINUX_20, TRUMPET, WINDOWS_95, WINDOWS_NT,
        EXPERIMENTAL_RC,
    )
}

#: The Table 1 core study set (the second group of Table 1 — Windows,
#: Trumpet, Linux 2 — was analyzed separately in §10).
CORE_STUDY = [
    "bsdi-1.1", "bsdi-2.0", "bsdi-2.1", "osf1-1.3a", "osf1-2.0",
    "osf1-3.2", "hpux-9.05", "hpux-10", "irix-5.2", "irix-6.2",
    "netbsd-1.0", "sunos-4.1.3", "linux-1.0", "solaris-2.3",
    "solaris-2.4",
]

SECOND_GROUP = ["windows-95", "windows-NT", "trumpet-2.0b", "linux-2.0.30"]


def get_behavior(label: str) -> TCPBehavior:
    """Look up an implementation by label (e.g. ``"solaris-2.4"``)."""
    try:
        return CATALOG[label]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown implementation {label!r}; known: {known}")


def implementation_names() -> list[str]:
    """All catalog labels, sorted."""
    return sorted(CATALOG)


def catalog_version() -> str:
    """A short digest of every known behavior.

    Batch-analysis caches embed this in their keys, so editing any
    behavior (or adding/removing one) invalidates previously cached
    fits without manual cache busting.
    """
    import hashlib
    blob = "\n".join(f"{label}={CATALOG[label]!r}"
                     for label in sorted(CATALOG))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]
