"""The parameterized TCP sender.

One engine implements every sending stack in the catalog; the
:class:`~repro.tcp.params.TCPBehavior` fields select among the
documented behaviors (generic Tahoe/Reno, the Reno-derivative bug
flags, Linux 1.0's whole-flight retransmissions, Solaris's collapsing
RTO, ...).  The goal is a sender whose *packet trace* is faithful to
the paper's descriptions — timers, window arithmetic, and
retransmission choices all matter; internal bookkeeping that never
reaches the wire does not.
"""

from __future__ import annotations

from repro.netsim.engine import Engine, Timer
from repro.netsim.node import Host
from repro.packets import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    Endpoint,
    FlowKey,
    Segment,
    SourceQuench,
)
from repro.tcp import params as P
from repro.tcp.params import QuenchResponse, TCPBehavior
from repro.tcp.timers import make_estimator
from repro.units import seq_add, seq_diff, seq_ge, seq_gt, seq_le, seq_lt

#: Default MSS assumed when the peer's SYN-ack carries no MSS option.
DEFAULT_PEER_MSS = 536

#: Upper bound on cwnd growth (TCP_MAXWIN without window scaling).
MAX_WINDOW = 65535

#: How many times to retry the initial SYN before giving up.
MAX_SYN_RETRIES = 6


class TCPSender:
    """Active-opening TCP endpoint performing a unidirectional bulk send.

    Drive it with :meth:`open`; it runs the connection to completion
    (SYN handshake, data transfer, FIN) against whatever peer the
    network delivers.  All externally visible behavior is governed by
    ``behavior``.
    """

    def __init__(self, engine: Engine, host: Host, behavior: TCPBehavior,
                 local: Endpoint, remote: Endpoint, data_size: int,
                 mss: int = 512, iss: int = 0,
                 sender_window: int | None = None):
        self.engine = engine
        self.host = host
        self.behavior = behavior
        self.local = local
        self.remote = remote
        self.data_size = data_size
        self.offered_mss = mss
        self.iss = iss
        #: Socket-buffer limit on unacknowledged data (§6.2 "sender
        #: window"); None means the buffer never binds.
        self.sender_window = sender_window

        self.state = "CLOSED"
        self.snd_una = iss
        self.snd_nxt = iss
        self.snd_max = iss            # highest sequence ever sent
        self.data_start = seq_add(iss, 1)
        self.data_end = seq_add(self.data_start, data_size)
        self.fin_seq: int | None = None

        self.mss = mss                # negotiated after handshake
        self.cwnd_mss = mss           # MSS used in window arithmetic
        self.cwnd = mss
        self.ssthresh = P.HUGE_WINDOW
        self.offered_window = mss     # until the first window advertisement
        self.dupacks = 0
        self.in_fast_recovery = False
        self.recover_point = iss

        self.estimator = make_estimator(behavior)
        self._rexmit_timer: Timer | None = None
        self._persist_timer: Timer | None = None
        self._persist_interval = behavior.persist_interval
        self._syn_retries = 0
        self._consecutive_rexmits = 0

        # Karn-style RTT timing: one segment timed at a time.
        self._timing_seq: int | None = None
        self._timing_start = 0.0

        # Sequence starts retransmitted since the last new ack, used to
        # recognize "ack for a retransmitted packet" (Solaris collapse,
        # and Karn sample rejection).
        self._rexmitted_starts: set[int] = set()
        self._rexmit_epoch = False    # a retransmission happened since last new ack

        # Statistics for scenarios/benchmarks.
        self.stats_data_packets = 0
        self.stats_retransmissions = 0
        self.stats_timeouts = 0
        self.stats_fast_retransmits = 0
        self.stats_quenches_seen = 0
        self.stats_window_probes = 0
        self.aborted = False
        self.finish_time: float | None = None

        self.flow = FlowKey(local, remote)

    # -- connection lifecycle ------------------------------------------------

    def open(self) -> None:
        """Begin the connection: send the initial SYN."""
        if self.state != "CLOSED":
            raise RuntimeError("connection already opened")
        self.state = "SYN_SENT"
        self.host.register(self.flow, self)
        self._send_syn()

    def _send_syn(self) -> None:
        syn = Segment(src=self.local, dst=self.remote, seq=self.iss, ack=0,
                      flags=SYN, window=MAX_WINDOW,
                      mss_option=self.offered_mss)
        self.host.send(syn)
        self.snd_nxt = seq_add(self.iss, 1)
        self.snd_max = self.snd_nxt
        # The SYN uses its own timer (the paper notes even Solaris's
        # broken data timer does not govern the SYN) — though [St96]
        # found clients whose SYN timer fails to back off at all.
        self._restart_rexmit_timer(
            self.behavior.initial_syn_timeout
            * (self.behavior.syn_backoff_factor ** self._syn_retries))

    @property
    def done(self) -> bool:
        return self.state == "CLOSED_DONE"

    # -- segment arrival -----------------------------------------------------

    def receive(self, segment: Segment) -> None:
        """Host demux delivers an arriving segment for our flow."""
        if self.state == "SYN_SENT":
            self._handle_synack(segment)
        elif self.state in ("ESTABLISHED", "FIN_SENT"):
            if segment.has_ack:
                self.engine.schedule(self.behavior.response_delay,
                                     lambda s=segment: self._process_ack(s))

    def receive_quench(self, quench: SourceQuench) -> None:
        """ICMP source quench: slow down, per the implementation (§6.2)."""
        if self.state not in ("ESTABLISHED", "FIN_SENT"):
            return
        self.stats_quenches_seen += 1
        response = self.behavior.quench_response
        if response is QuenchResponse.IGNORE:
            return
        if response is QuenchResponse.DECREMENT_CWND:
            self.cwnd = max(self.cwnd - self.cwnd_mss, self.cwnd_mss)
        elif response is QuenchResponse.SLOW_START_HALVE_SSTHRESH:
            self.ssthresh = P.cut_ssthresh(self.behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            self.cwnd = self.cwnd_mss
        else:  # SLOW_START
            self.cwnd = self.cwnd_mss

    def _handle_synack(self, segment: Segment) -> None:
        if not (segment.is_syn and segment.has_ack):
            return
        if segment.ack != self.snd_nxt:
            return
        peer_offered = segment.mss_option is not None
        if peer_offered:
            self.mss = min(self.offered_mss, segment.mss_option)
        else:
            self.mss = min(self.offered_mss, DEFAULT_PEER_MSS)
        self.cwnd_mss = P.effective_mss(self.behavior, self.mss)
        self.cwnd = P.initial_cwnd(self.behavior, self.mss,
                                   self.offered_mss, peer_offered)
        self.ssthresh = P.initial_ssthresh(self.behavior, self.mss,
                                           peer_offered)
        self.offered_window = segment.window
        self.snd_una = self.snd_nxt
        self.irs = segment.seq
        self.state = "ESTABLISHED"
        self._cancel_rexmit_timer()
        self.estimator.reset_backoff()
        self.engine.schedule(self.behavior.response_delay, self._ack_synack)

    def _ack_synack(self) -> None:
        ack = Segment(src=self.local, dst=self.remote, seq=self.snd_nxt,
                      ack=seq_add(self.irs, 1), flags=ACK, window=MAX_WINDOW)
        self.host.send(ack)
        self._try_send()

    # -- output routine ------------------------------------------------------

    def _usable_window(self) -> int:
        window = min(self.cwnd, self.offered_window)
        if self.sender_window is not None:
            window = min(window, self.sender_window)
        in_flight = seq_diff(self.snd_nxt, self.snd_una)
        return max(window - in_flight, 0)

    def _try_send(self) -> None:
        """Send whatever the windows currently permit."""
        if self.state not in ("ESTABLISHED", "FIN_SENT"):
            return
        while seq_lt(self.snd_nxt, self.data_end):
            remaining = seq_diff(self.data_end, self.snd_nxt)
            size = min(self.mss, remaining)
            usable = self._usable_window()
            if usable < size:
                break
            self._transmit_data(self.snd_nxt, size)
            self.snd_nxt = seq_add(self.snd_nxt, size)
            if seq_gt(self.snd_nxt, self.snd_max):
                self.snd_max = self.snd_nxt
        if (self.state == "ESTABLISHED" and self.snd_nxt == self.data_end
                and self.snd_max == self.data_end):
            self._send_fin()
        if self._rexmit_timer is None and seq_lt(self.snd_una, self.snd_max):
            self._restart_rexmit_timer()
        # Zero-window handling: data remains, nothing in flight, and
        # the peer's window is shut — arm the persist timer so a lost
        # window update cannot deadlock the connection ([CL94]).
        if (self.state == "ESTABLISHED"
                and seq_lt(self.snd_nxt, self.data_end)
                and self.snd_una == self.snd_nxt
                and self.offered_window == 0):
            if self._persist_timer is None:
                self._persist_timer = self.engine.schedule(
                    self._persist_interval, self._send_window_probe)
        elif self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
            self._persist_interval = self.behavior.persist_interval

    def _transmit_data(self, seq: int, size: int,
                       is_retransmission: bool = False) -> None:
        flags = ACK
        if seq_add(seq, size) == self.data_end:
            flags |= PSH
        segment = Segment(src=self.local, dst=self.remote, seq=seq,
                          ack=seq_add(self.irs, 1), flags=flags,
                          payload=size, window=MAX_WINDOW)
        self.host.send(segment)
        self.stats_data_packets += 1
        if is_retransmission:
            self.stats_retransmissions += 1
            self._rexmitted_starts.add(seq)
            self._rexmit_epoch = True
            # Karn: a timed segment that gets retransmitted yields an
            # ambiguous RTT; abandon the measurement.
            if (self._timing_seq is not None
                    and seq_lt(seq, self._timing_seq)):
                self._timing_seq = None
        elif self._timing_seq is None:
            self._timing_seq = seq_add(seq, size)
            self._timing_start = self.engine.now

    def _send_window_probe(self) -> None:
        """Persist timer expiry: probe the closed window with one byte."""
        self._persist_timer = None
        if self.state != "ESTABLISHED" or self.offered_window != 0:
            return
        probe = Segment(src=self.local, dst=self.remote, seq=self.snd_nxt,
                        ack=seq_add(self.irs, 1), flags=ACK, payload=1,
                        window=MAX_WINDOW)
        self.host.send(probe)
        self.stats_window_probes += 1
        self._persist_interval = min(
            self._persist_interval * self.behavior.persist_backoff,
            self.behavior.max_persist_interval)
        self._persist_timer = self.engine.schedule(
            self._persist_interval, self._send_window_probe)

    def _abort(self) -> None:
        """Give up after too many retries of the same data."""
        self.aborted = True
        self.state = "CLOSED_DONE"
        self.finish_time = self.engine.now
        self._cancel_rexmit_timer()
        if self._persist_timer is not None:
            self._persist_timer.cancel()
            self._persist_timer = None
        if self.behavior.sends_rst_on_abort:
            rst = Segment(src=self.local, dst=self.remote, seq=self.snd_nxt,
                          ack=seq_add(self.irs, 1), flags=RST | ACK,
                          window=0)
            self.host.send(rst)

    def _send_fin(self) -> None:
        self.state = "FIN_SENT"
        self.fin_seq = self.data_end
        segment = Segment(src=self.local, dst=self.remote, seq=self.data_end,
                          ack=seq_add(self.irs, 1), flags=FIN | ACK,
                          window=MAX_WINDOW)
        self.host.send(segment)
        self.snd_nxt = seq_add(self.data_end, 1)
        self.snd_max = self.snd_nxt
        self._restart_rexmit_timer()

    # -- ack processing ------------------------------------------------------

    def _process_ack(self, segment: Segment) -> None:
        if self.state not in ("ESTABLISHED", "FIN_SENT"):
            return
        ack = segment.ack
        window_changed = segment.window != self.offered_window
        self.offered_window = segment.window

        if seq_gt(ack, self.snd_max):
            return  # acks data never sent: stale or broken peer; ignore
        if seq_gt(ack, self.snd_una):
            self._advance(ack)
        elif (ack == self.snd_una and segment.payload == 0
              and not window_changed and seq_lt(self.snd_una, self.snd_max)):
            self._duplicate_ack()
        self._try_send()
        self._check_done()

    def _advance(self, ack: int) -> None:
        """Handle an ack for new data."""
        acked_rexmit = any(seq_lt(s, ack) for s in self._rexmitted_starts)
        self._rexmitted_starts = {s for s in self._rexmitted_starts
                                  if seq_ge(s, ack)}

        # RTT sampling (Karn's rule is inside the estimators).
        if self._timing_seq is not None and seq_ge(ack, self._timing_seq):
            rtt = self.engine.now - self._timing_start
            self.estimator.sample(rtt, for_retransmitted=False)
            self._timing_seq = None
        if acked_rexmit:
            # Ambiguous sample; Solaris's estimator reacts perversely.
            self.estimator.sample(0.0, for_retransmitted=True)

        exiting_recovery = False
        if self.in_fast_recovery:
            exiting_recovery = True
            self.in_fast_recovery = False
            self._deflate_window(ack)

        self.dupacks = 0
        self.snd_una = ack
        if seq_lt(self.snd_nxt, ack):
            self.snd_nxt = ack
        self.estimator.reset_backoff()
        self._consecutive_rexmits = 0

        if not exiting_recovery:
            self.cwnd = P.increase_cwnd(self.behavior, self.cwnd,
                                        self.ssthresh, self.cwnd_mss,
                                        MAX_WINDOW)
        if self.behavior.rexmit_packet_after_ack and self._rexmit_epoch:
            # Solaris quirk (§8.6): retransmit the packet just after the
            # ack; no effect on cwnd or on what new data to send.
            if seq_lt(self.snd_una, self.snd_max):
                size = min(self.mss, seq_diff(self.data_end, self.snd_una))
                if size > 0:
                    self._transmit_data(self.snd_una, size,
                                        is_retransmission=True)
        if not self._rexmitted_starts:
            self._rexmit_epoch = False

        if seq_lt(self.snd_una, self.snd_max):
            self._restart_rexmit_timer()
        else:
            self._cancel_rexmit_timer()

    def _deflate_window(self, ack: int) -> None:
        """Exit fast recovery, shrinking cwnd back to ssthresh — unless
        one of the documented deflation bugs intervenes (§8.2, [BP95])."""
        if (self.behavior.header_prediction_bug
                and ack == self.snd_max):
            # The "header prediction" fast path handles an ack for all
            # outstanding data and forgets to shrink the window.
            return
        if self.behavior.fencepost_bug:
            if self.cwnd > self.ssthresh + self.cwnd_mss:
                self.cwnd = self.ssthresh
            return
        if self.cwnd > self.ssthresh:
            self.cwnd = self.ssthresh

    def _duplicate_ack(self) -> None:
        self.dupacks += 1
        behavior = self.behavior
        if behavior.dup_ack_triggers_flight_retransmit:
            # Linux 1.0 (§8.5): the first dup ack spurs a retransmission
            # of every packet in flight, with no window cut (the paper's
            # footnote: had it properly cut cwnd, the burst could not
            # have been sent).
            if self.dupacks == 1:
                self._retransmit_flight()
            return
        if behavior.dupack_updates_cwnd and not self.in_fast_recovery:
            self.cwnd = P.increase_cwnd(behavior, self.cwnd, self.ssthresh,
                                        self.cwnd_mss, MAX_WINDOW)
        if not behavior.fast_retransmit:
            return
        if self.dupacks == behavior.dup_ack_threshold:
            self.stats_fast_retransmits += 1
            self.ssthresh = P.cut_ssthresh(behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            size = min(self.mss, seq_diff(self.data_end, self.snd_una))
            if size > 0:
                self._transmit_data(self.snd_una, size, is_retransmission=True)
            use_recovery = (behavior.fast_recovery
                            and not behavior.fast_recovery_disabled_by_bug)
            if use_recovery:
                self.in_fast_recovery = True
                self.recover_point = self.snd_max
                self.cwnd = (self.ssthresh
                             + behavior.dup_ack_threshold * self.cwnd_mss)
            else:
                # Tahoe: collapse to one segment and slow-start back,
                # resending from the loss point.
                self.cwnd = self.cwnd_mss
                self.snd_nxt = seq_add(self.snd_una, size)
            self._restart_rexmit_timer()
        elif self.dupacks > behavior.dup_ack_threshold and self.in_fast_recovery:
            self.cwnd += self.cwnd_mss

    # -- retransmission timer ------------------------------------------------

    def _restart_rexmit_timer(self, timeout: float | None = None) -> None:
        self._cancel_rexmit_timer()
        self._rexmit_timer = self.engine.schedule(
            timeout if timeout is not None else self.estimator.rto(),
            self._on_timeout)

    def _cancel_rexmit_timer(self) -> None:
        if self._rexmit_timer is not None:
            self._rexmit_timer.cancel()
            self._rexmit_timer = None

    def _on_timeout(self) -> None:
        self._rexmit_timer = None
        if self.state == "SYN_SENT":
            self._syn_retries += 1
            if self._syn_retries > self.behavior.max_syn_retries:
                self.state = "CLOSED_DONE"
                return
            self._send_syn()
            return
        if not seq_lt(self.snd_una, self.snd_max):
            return
        self._consecutive_rexmits += 1
        if self._consecutive_rexmits > self.behavior.max_data_retries:
            self._abort()
            return
        self.stats_timeouts += 1
        behavior = self.behavior
        if self._timing_seq is not None:
            self._timing_seq = None
        if behavior.retransmit_whole_flight:
            self._retransmit_flight()
        else:
            self.ssthresh = P.cut_ssthresh(behavior, self.cwnd,
                                           self.offered_window, self.cwnd_mss)
            self.cwnd = self.cwnd_mss
            self.in_fast_recovery = False
            if behavior.clear_dupacks_on_timeout:
                self.dupacks = 0
            self.snd_nxt = self.snd_una
            if self.fin_seq is not None and self.snd_una == self.fin_seq:
                self._retransmit_fin()
            else:
                size = min(self.mss, seq_diff(self.data_end, self.snd_una))
                if size > 0:
                    self._transmit_data(self.snd_una, size,
                                        is_retransmission=True)
                    self.snd_nxt = seq_add(self.snd_una, size)
        self.estimator.back_off()
        self._restart_rexmit_timer()

    def _retransmit_flight(self) -> None:
        """Linux 1.0: re-send every unacknowledged packet in one burst."""
        seq = self.snd_una
        end = self.snd_max if self.fin_seq is None else self.fin_seq
        while seq_lt(seq, end) and seq_lt(seq, self.data_end):
            size = min(self.mss, seq_diff(self.data_end, seq))
            if size <= 0:
                break
            self._transmit_data(seq, size, is_retransmission=True)
            seq = seq_add(seq, size)
        if (self.fin_seq is not None
                and seq_le(self.snd_una, self.fin_seq)
                and seq_lt(self.fin_seq, self.snd_max)):
            self._retransmit_fin()

    def _retransmit_fin(self) -> None:
        segment = Segment(src=self.local, dst=self.remote, seq=self.fin_seq,
                          ack=seq_add(self.irs, 1), flags=FIN | ACK,
                          window=MAX_WINDOW)
        self.host.send(segment)
        self.stats_retransmissions += 1
        self._rexmitted_starts.add(self.fin_seq)
        self._rexmit_epoch = True
        self.snd_nxt = self.snd_max

    def _check_done(self) -> None:
        if self.state == "FIN_SENT" and self.snd_una == self.snd_max:
            self.state = "CLOSED_DONE"
            self.finish_time = self.engine.now
            self._cancel_rexmit_timer()
