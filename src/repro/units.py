"""Shared constants and small helpers for sizes, rates, and time.

Times throughout the library are floats in seconds; rates are bytes per
second; sizes are bytes.  These helpers exist so scenario code can say
``kbit(64)`` instead of sprinkling magic numbers.
"""

from __future__ import annotations

#: Conventional Ethernet maximum segment size (bytes of TCP payload).
DEFAULT_MSS = 512

#: Maximum segment size on a local Ethernet without IP/TCP options.
ETHERNET_MSS = 1460

#: TCP sequence numbers live in a 32-bit space.
SEQ_SPACE = 2**32

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def kbit(n: float) -> float:
    """Return a rate of *n* kilobits/second in bytes/second."""
    return n * 1000.0 / 8.0


def mbit(n: float) -> float:
    """Return a rate of *n* megabits/second in bytes/second."""
    return n * 1e6 / 8.0


def kbyte(n: float) -> int:
    """Return *n* kilobytes (powers of two, as the paper uses) in bytes."""
    return int(n * 1024)


def msec(n: float) -> float:
    """Return *n* milliseconds in seconds."""
    return n * MILLISECOND


def usec(n: float) -> float:
    """Return *n* microseconds in seconds."""
    return n * MICROSECOND


def seq_add(seq: int, n: int) -> int:
    """Add *n* to sequence number *seq*, wrapping mod 2**32."""
    return (seq + n) % SEQ_SPACE


def seq_diff(a: int, b: int) -> int:
    """Return the signed distance from *b* to *a* in sequence space.

    The result is in ``[-2**31, 2**31)``; positive means *a* is "after" *b*.
    """
    d = (a - b) % SEQ_SPACE
    if d >= SEQ_SPACE // 2:
        d -= SEQ_SPACE
    return d


def seq_lt(a: int, b: int) -> bool:
    """True if sequence number *a* precedes *b* (RFC 793 comparison)."""
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    """True if sequence number *a* precedes or equals *b*."""
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    """True if sequence number *a* follows *b*."""
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    """True if sequence number *a* follows or equals *b*."""
    return seq_diff(a, b) >= 0


def seq_max(a: int, b: int) -> int:
    """Return whichever of two sequence numbers is later."""
    return a if seq_ge(a, b) else b


def seq_min(a: int, b: int) -> int:
    """Return whichever of two sequence numbers is earlier."""
    return a if seq_le(a, b) else b
