"""Serve-mode observability: counters, gauges, rolling aggregates.

Batch mode summarizes after the fact; a daemon has no "after", so its
numbers must be readable while it runs.  :class:`ServeMetrics` is the
single place every serve component reports into, and its
:meth:`~ServeMetrics.to_dict` snapshot is exactly what the HTTP
``/stats`` endpoint returns.

Aggregates that answer "what is the traffic doing *lately*" — which
implementations are being identified, what fraction of each flow's
data packets were retransmitted (the aggregate-rate view of
arXiv 1112.2292), which quarantine kinds are firing — are kept over a
sliding time window by :class:`RollingWindow`, so a daemon that has
been up for a week reports this hour's mix, not the all-time average.

The clock is injectable for tests; nothing here touches the payloads
themselves, so metrics can never perturb the live-vs-batch
equivalence.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Callable

#: Default sliding-window span for rolling aggregates (seconds).
DEFAULT_WINDOW = 300.0


class RollingWindow:
    """Timestamped observations over a sliding window.

    Observations older than *span* seconds fall off as new ones
    arrive (and on read), so both memory and the reported aggregate
    are bounded by recent activity.
    """

    def __init__(self, span: float = DEFAULT_WINDOW,
                 clock: Callable[[], float] = time.monotonic):
        if span <= 0:
            raise ValueError(f"span must be positive, not {span}")
        self.span = span
        self._clock = clock
        self._entries: deque[tuple[float, object]] = deque()

    def observe(self, value) -> None:
        now = self._clock()
        self._entries.append((now, value))
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.span
        entries = self._entries
        while entries and entries[0][0] < horizon:
            entries.popleft()

    def values(self) -> list:
        self._prune(self._clock())
        return [value for _stamp, value in self._entries]

    def __len__(self) -> int:
        self._prune(self._clock())
        return len(self._entries)

    def counts(self) -> dict:
        """Tally of discrete observations (labels, kinds) in window."""
        return dict(Counter(self.values()))

    def mean(self) -> float | None:
        """Mean of numeric observations in window; None when empty."""
        values = self.values()
        if not values:
            return None
        return sum(values) / len(values)


class ServeMetrics:
    """Every number the serve daemon exposes, in one place.

    Monotone counters accumulate for the daemon's lifetime; gauges
    are overwritten each loop tick by the daemon; rolling windows
    hold the recent-traffic aggregates.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self.started_at = clock()
        # Counters (lifetime).
        self.records_ingested = 0
        self.flows_submitted = 0
        self.flows_completed = 0
        self.flows_quarantined = 0
        self.journal_skips = 0       # completed in a prior run, replayed
        self.sink_lines = 0
        self.sources_failed = 0      # captures that were not pcaps at all
        self.pause_events = 0        # backpressure trips
        # Governance counters.
        self.flows_shed = 0          # early-retired under memory pressure
        self.flows_cancelled = 0     # withdrawn from a quarantined source
        self.breaker_trips = 0       # closed/half-open -> open
        self.breaker_quarantines = 0  # sources given up on permanently
        self.rotations = 0           # in-place rotation/truncation events
        self.sink_errors = 0         # failed sink appends (parked)
        self.journal_errors = 0      # failed journal appends (parked)
        # Gauges (overwritten per tick).
        self.ingest_lag_bytes = 0
        self.flow_table_occupancy = 0
        self.queue_depth = 0
        self.inflight = 0
        self.worker_restarts = 0
        self.sources = 0
        self.paused = False
        # Governance gauges.
        self.health_state = "healthy"
        self.breaker_states: dict[str, str] = {}
        self.disk_free_bytes = 0
        self.rss_bytes = 0
        self.sink_parked = 0
        self.journal_pending = 0
        # Rolling aggregates.
        self.identifications = RollingWindow(window, clock)
        self.quarantines = RollingWindow(window, clock)
        self.retransmission_rates = RollingWindow(window, clock)
        self.retirements = RollingWindow(window, clock)

    def observe_payload(self, payload: dict) -> None:
        """Account one finished per-flow payload."""
        self.flows_completed += 1
        if "error_kind" in payload:
            self.flows_quarantined += 1
            self.quarantines.observe(payload["error_kind"])
            return
        identification = payload.get("identification") or {}
        best = identification.get("best")
        if identification.get("best_category") != "close":
            best = None
        self.identifications.observe(best or "(no close fit)")

    def observe_retransmission_rate(self, rate: float) -> None:
        self.retransmission_rates.observe(rate)

    def observe_retirement(self, flow) -> None:
        """FlowTable ``on_retire`` hook: tally close reasons."""
        self.retirements.observe(flow.close_reason)

    def to_dict(self) -> dict:
        """The ``/stats`` snapshot (JSON-safe, stable keys)."""
        return {
            "uptime_seconds": round(self._clock() - self.started_at, 3),
            "counters": {
                "records_ingested": self.records_ingested,
                "flows_submitted": self.flows_submitted,
                "flows_completed": self.flows_completed,
                "flows_quarantined": self.flows_quarantined,
                "journal_skips": self.journal_skips,
                "sink_lines": self.sink_lines,
                "sources_failed": self.sources_failed,
                "pause_events": self.pause_events,
                "flows_shed": self.flows_shed,
                "flows_cancelled": self.flows_cancelled,
                "breaker_trips": self.breaker_trips,
                "breaker_quarantines": self.breaker_quarantines,
                "rotations": self.rotations,
                "sink_errors": self.sink_errors,
                "journal_errors": self.journal_errors,
            },
            "gauges": {
                "ingest_lag_bytes": self.ingest_lag_bytes,
                "flow_table_occupancy": self.flow_table_occupancy,
                "queue_depth": self.queue_depth,
                "inflight": self.inflight,
                "worker_restarts": self.worker_restarts,
                "sources": self.sources,
                "paused": self.paused,
                "disk_free_bytes": self.disk_free_bytes,
                "rss_bytes": self.rss_bytes,
                "sink_parked": self.sink_parked,
                "journal_pending": self.journal_pending,
            },
            "health": {
                "state": self.health_state,
                "breakers": dict(self.breaker_states),
            },
            "rolling": {
                "window_seconds": self.identifications.span,
                "identifications": self.identifications.counts(),
                "quarantine_kinds": self.quarantines.counts(),
                "close_reasons": self.retirements.counts(),
                "retransmission_rate_mean":
                    self.retransmission_rates.mean(),
                "retransmission_samples":
                    len(self.retransmission_rates),
            },
        }


#: Governor health states, in ladder order (mirrors governor.py;
#: duplicated here so rendering never imports the state machine).
_HEALTH_STATES = ("healthy", "degraded", "shedding", "draining")
_BREAKER_STATES = ("closed", "open", "half-open", "quarantined")


def _label_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"') \
                .replace("\n", r"\n")


def render_prometheus(snapshot: dict) -> str:
    """The ``/stats`` snapshot as Prometheus text exposition format.

    Everything a scraper needs to alert on the governor: lifetime
    counters as ``tcpanaly_serve_<name>_total``, gauges as
    ``tcpanaly_serve_<name>``, the health state machine and per-source
    breaker states as one-hot labeled gauges, and the rolling
    identification mix as labeled gauges.  Rendered from the same
    snapshot ``/stats`` serves, so the two endpoints can never
    disagree.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: list[tuple[str, float]]) -> None:
        metric = f"tcpanaly_serve_{name}"
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        for labels, value in samples:
            number = f"{value:g}" if isinstance(value, float) \
                else str(int(value))
            lines.append(f"{metric}{labels} {number}")

    emit("uptime_seconds", "gauge", "Seconds since daemon start.",
         [("", float(snapshot.get("uptime_seconds", 0.0)))])
    for name, value in snapshot.get("counters", {}).items():
        emit(f"{name}_total", "counter",
             f"Lifetime count of {name.replace('_', ' ')}.",
             [("", value)])
    for name, value in snapshot.get("gauges", {}).items():
        emit(name, "gauge", f"Current {name.replace('_', ' ')}.",
             [("", int(value) if isinstance(value, bool) else value)])
    health = snapshot.get("health", {})
    state = health.get("state", "healthy")
    emit("health_state", "gauge",
         "Governor degradation ladder (1 on the active state).",
         [(f'{{state="{s}"}}', 1 if s == state else 0)
          for s in _HEALTH_STATES])
    breakers = health.get("breakers", {})
    samples = []
    for source in sorted(breakers):
        escaped = _label_escape(source)
        for s in _BREAKER_STATES:
            samples.append((f'{{source="{escaped}",state="{s}"}}',
                            1 if breakers[source] == s else 0))
    if samples:
        emit("breaker_state", "gauge",
             "Per-source circuit breaker (1 on the active state).",
             samples)
    rolling = snapshot.get("rolling", {})
    for name, key, label in (
            ("identifications", "identifications", "implementation"),
            ("quarantine_kinds", "quarantine_kinds", "kind"),
            ("close_reasons", "close_reasons", "reason")):
        counts = rolling.get(key) or {}
        if counts:
            emit(f"rolling_{name}", "gauge",
                 f"Rolling-window {name.replace('_', ' ')}.",
                 [(f'{{{label}="{_label_escape(str(value))}"}}', count)
                  for value, count in sorted(counts.items())])
    mean = rolling.get("retransmission_rate_mean")
    if mean is not None:
        emit("rolling_retransmission_rate_mean", "gauge",
             "Rolling mean per-flow retransmission rate.",
             [("", float(mean))])
    return "\n".join(lines) + "\n"


def flow_retransmission_rate(records) -> float:
    """Fraction of a flow's data packets that re-sent a seen sequence.

    A cheap trace-level proxy for the retransmission-rate aggregate:
    a data packet whose starting sequence number was already carried
    by an earlier data packet of the same direction counts as a
    retransmission.  Good enough for a rolling traffic aggregate; the
    per-flow *analysis* does the real replay-based accounting.
    """
    seen: dict = {}
    data_packets = 0
    retransmissions = 0
    for record in records:
        if record.payload <= 0:
            continue
        data_packets += 1
        key = (record.src, record.dst)
        carried = seen.setdefault(key, set())
        if record.seq in carried:
            retransmissions += 1
        else:
            carried.add(record.seq)
    if data_packets == 0:
        return 0.0
    return retransmissions / data_packets
