"""Dispatching retired flows to analysis workers, durably.

The scheduler is the seam between live ingest and the PR-5 resilience
machinery: each completed flow becomes a :class:`FlowWorkItem` and
goes to a :class:`~repro.pipeline.PoolSession` worker, sharded by a
stable hash of the connection key so all flows of one connection
(a reused 4-tuple, say) analyze in order on one worker.

Durability is journal-first: a flow's payloads are recorded in the
:class:`~repro.pipeline.BatchJournal` (fsynced) before the caller
ever sees them, and a flow whose name+digest is already journaled is
replayed without analysis — which is what makes a daemon restart
resume instead of recompute.  Flow digests come from
``trace_digest``, so a capture whose bytes changed under the same
name never reuses stale results.

Analysis failures ride the PR-5/6 taxonomy unchanged: a worker crash
retries then quarantines as ``crash``, a hang is killed and
quarantined as ``timeout``, and an in-worker analysis error comes
back as a classified error payload.  Transient kinds are journaled
like everything else *except* never — the scheduler skips journaling
payloads whose kind is transient, so a restart retries them.

The scheduler is also where per-source fault isolation plugs in:
given a :class:`~repro.serve.governor.BreakerBoard`, every polled
result is accounted to its source's circuit breaker — worker-fatal
kinds (``crash``/``timeout``) as failures, everything else as
successes — and :meth:`FlowScheduler.cancel_source` flushes a
quarantined source's queued flows back out of the shared pool so they
stop poisoning workers other sources depend on.  Journal writes are
themselves governed: an ``OSError`` from the journal (the disk the
governor is already worried about) parks the entry in memory for
:meth:`FlowScheduler.flush_journal` to retry, instead of crashing the
daemon.
"""

from __future__ import annotations

import functools
import zlib

from repro.core.errors import AnalysisError, classify_exception
from repro.harness.faults import FaultPlan
from repro.pipeline.cache import trace_digest
from repro.pipeline.journal import BatchJournal
from repro.pipeline.resilience import PoolSession, error_payload
from repro.serve.governor import BreakerBoard
from repro.stream import Flow, build_flow_report, flow_payload

#: Error kinds that may be transient: never journaled, so a restarted
#: daemon re-analyzes them (mirrors the batch cache policy).
TRANSIENT_KINDS = frozenset({"io", "timeout", "crash", "cancelled"})

#: Error kinds that count against a source's circuit breaker: the
#: failure took a worker down with it (or held one hostage).
WORKER_FATAL_KINDS = frozenset({"crash", "timeout"})


class FlowWorkItem:
    """One retired flow, packaged for a worker process.

    Carries the immutable flow (records and lifecycle facts pickle
    cleanly) plus its source capture's name.  ``name`` and
    ``implementation`` follow the batch-item protocol so
    ``error_payload`` and :class:`~repro.harness.faults.FaultPlan`
    (which matches items by name) compose unchanged.
    """

    def __init__(self, source: str, flow: Flow,
                 implementation: str | None = None):
        self.source = source
        self.flow = flow
        self.implementation = implementation

    @property
    def name(self) -> str:
        return f"{self.source}#flow-{self.flow.index:04d}"

    def content_digest(self) -> str:
        return trace_digest(self.flow.to_trace())

    def shard(self) -> int:
        """Stable across processes and runs (``hash()`` is neither)."""
        return zlib.crc32(f"{self.source}|{self.flow.key}".encode())


def analyze_flow_item(index: int, item: FlowWorkItem, attempt: int,
                      fault_plan: FaultPlan | None = None) -> list[dict]:
    """Worker-side analysis of one flow; never raises.

    The payload is built by the same :func:`flow_payload` the batch
    runner uses — identical keys and values for an identical flow —
    except that no capture-wide ``ingest`` block is attached (the
    capture is still growing when a live flow completes).
    """
    try:
        if fault_plan is not None:
            item = fault_plan.apply(item, index, attempt)
        report = build_flow_report(item.flow, identify=True,
                                   tolerant=True)
        return [flow_payload(report, item.name,
                             implementation=item.implementation)]
    except Exception as error:
        return [error_payload(item, classify_exception(error))]


class FlowScheduler:
    """Submit flows, poll journaled results.

    ``submit`` returns any immediately available results (a journal
    replay); ``poll`` returns results as workers finish them, each
    already recorded in the journal.  Results are
    ``(name, payloads)`` pairs.
    """

    def __init__(self, workers: int,
                 journal: BatchJournal | None = None,
                 timeout: float | None = None,
                 retries: int = 2,
                 fault_plan: FaultPlan | None = None,
                 breakers: BreakerBoard | None = None):
        worker_fn = functools.partial(analyze_flow_item,
                                      fault_plan=fault_plan)
        self.session = PoolSession(workers, worker_fn,
                                   timeout=timeout, retries=retries)
        self.journal = journal
        self.breakers = breakers
        self._next_index = 0
        self._submitted: dict[int, tuple[FlowWorkItem, str]] = {}
        self.replayed = 0
        self.cancelled = 0
        self.journal_errors = 0
        #: Journal entries whose write failed (disk pressure), kept in
        #: memory until :meth:`flush_journal` lands them.
        self._journal_pending: list[tuple[str, str, list[dict]]] = []

    @property
    def outstanding(self) -> int:
        return self.session.outstanding

    @property
    def queue_depth(self) -> int:
        return self.session.queue_depth

    @property
    def inflight(self) -> int:
        return self.session.inflight

    @property
    def worker_restarts(self) -> int:
        return self.session.worker_restarts

    def submit(self, item: FlowWorkItem
               ) -> list[tuple[str, list[dict]]]:
        """Queue one flow; journaled flows come straight back."""
        digest = item.content_digest()
        if self.journal is not None:
            payloads = self.journal.lookup(item.name, digest)
            if payloads is not None:
                self.replayed += 1
                return [(item.name, payloads)]
        index = self._next_index
        self._next_index += 1
        self._submitted[index] = (item, digest)
        self.session.submit(index, item, shard=item.shard())
        return []

    def poll(self, timeout: float | None = None
             ) -> list[tuple[str, list[dict]]]:
        """Collect finished flows; journal each before returning it.

        Each result is also accounted to its source's circuit breaker
        (when a board is attached): worker-fatal payloads are
        failures, everything else — including in-worker classified
        errors, which cost the pool nothing — is a success.
        """
        results = []
        for index, payloads, _elapsed in self.session.poll(timeout):
            item, digest = self._submitted.pop(index)
            if self.breakers is not None:
                if _worker_fatal(payloads):
                    self.breakers.record_failure(item.source)
                else:
                    self.breakers.record_success(item.source)
            if self.journal is not None and _journalable(payloads):
                self._record(item.name, digest, payloads)
            results.append((item.name, payloads))
        return results

    def _record(self, name: str, digest: str,
                payloads: list[dict]) -> None:
        """Journal one entry; park it in memory when the disk won't."""
        try:
            self.journal.record(name, digest, payloads)
        except OSError:
            self.journal_errors += 1
            self._journal_pending.append((name, digest, payloads))

    def flush_journal(self) -> int:
        """Retry journal entries parked by disk failure; return the
        number that landed."""
        written = 0
        while self._journal_pending:
            name, digest, payloads = self._journal_pending[0]
            try:
                self.journal.record(name, digest, payloads)
            except OSError:
                self.journal_errors += 1
                break
            self._journal_pending.pop(0)
            written += 1
        return written

    @property
    def journal_pending(self) -> int:
        return len(self._journal_pending)

    def cancel_source(self, source: str
                      ) -> list[tuple[str, list[dict]]]:
        """Withdraw a quarantined source's queued flows from the pool.

        In-flight flows finish under normal supervision; queued ones
        come back immediately as ``cancelled`` payloads — transient by
        definition, so they are never journaled and a later run (or a
        recovered source) re-analyzes them from the capture.
        """
        removed = self.session.cancel(
            lambda item: getattr(item, "source", None) == source)
        results = []
        for _index, item in removed:
            self._submitted.pop(_index, None)
            self.cancelled += 1
            error = AnalysisError(
                "cancelled",
                f"source {source} circuit-breaker quarantined; flow "
                f"withdrawn before analysis")
            results.append((item.name, [error_payload(item, error)]))
        return results

    def drain(self) -> list[tuple[str, list[dict]]]:
        """Finish everything in flight/queued (graceful shutdown)."""
        results = []
        while self.session.outstanding > 0:
            results.extend(self.poll())
        return results

    def close(self, graceful: bool = True) -> None:
        self.session.close(graceful=graceful)


def _journalable(payloads: list[dict]) -> bool:
    return all(payload.get("error_kind") not in TRANSIENT_KINDS
               for payload in payloads)


def _worker_fatal(payloads: list[dict]) -> bool:
    return any(payload.get("error_kind") in WORKER_FATAL_KINDS
               for payload in payloads)
