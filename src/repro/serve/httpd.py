"""The daemon's local stats/health endpoint.

Four paths, standard-library HTTP only, loopback only:

- ``/healthz`` — liveness: 200 whenever the process can answer; the
  body carries the governor's health state (``ok healthy``,
  ``ok degraded``, ...) so probes that *can* read bodies see the
  degradation ladder without parsing JSON.  Degraded is still alive
  — only an unresponsive process fails this probe.
- ``/readyz`` — readiness: 200 once the daemon loop has completed a
  full tick (sources opened, workers up), 503 before and during
  drain.
- ``/stats``  — the :class:`~repro.serve.metrics.ServeMetrics`
  snapshot as JSON.
- ``/metrics`` — the same snapshot in Prometheus text exposition
  format (rendered by
  :func:`~repro.serve.metrics.render_prometheus`), so a scrape
  config points here and alerts on breaker trips and ladder states.

The server runs ``serve_forever`` on a daemon thread; requests only
read snapshots (a dict built under the GIL), so no locking with the
daemon loop is needed.  Binding port 0 picks an ephemeral port —
``port`` reports the real one, which the daemon writes to a
``http.port`` file for scripts to discover.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.serve.metrics import render_prometheus

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class StatsServer:
    """Loopback HTTP server for health probes and metric snapshots."""

    def __init__(self, stats_fn: Callable[[], dict],
                 ready_fn: Callable[[], bool],
                 health_fn: Callable[[], str] | None = None,
                 port: int = 0, host: str = "127.0.0.1"):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                if path == "/healthz":
                    if server.health_fn is None:
                        body = b"ok\n"
                    else:
                        body = f"ok {server.health_fn()}\n".encode()
                    self._reply(200, body, "text/plain")
                elif path == "/readyz":
                    if server.ready_fn():
                        self._reply(200, b"ready\n", "text/plain")
                    else:
                        self._reply(503, b"starting\n", "text/plain")
                elif path == "/stats":
                    body = json.dumps(server.stats_fn(),
                                      sort_keys=True).encode()
                    self._reply(200, body + b"\n", "application/json")
                elif path == "/metrics":
                    body = render_prometheus(server.stats_fn()).encode()
                    self._reply(200, body, PROMETHEUS_CONTENT_TYPE)
                else:
                    self._reply(404, b"not found\n", "text/plain")

            def _reply(self, status: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass    # probes every few seconds; stay quiet

        self.stats_fn = stats_fn
        self.ready_fn = ready_fn
        self.health_fn = health_fn
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="tcpanaly-serve-http",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
