"""Fault isolation and resource governance for the serve daemon.

The daemon meets the open internet continuously, and at that scale
pathological inputs are the norm, not the tail: a capture whose flows
crash every worker they touch, a spool file rotated in place under
the tailer, a disk that fills mid-run.  Before this module the
daemon's only defense was one-shot quarantine — a crash-looping
source retried at full rate through the shared pool, and an
``ENOSPC`` from the sink killed the process.  Two mechanisms close
that gap:

**Per-source circuit breakers** (:class:`CircuitBreaker`, pooled in a
:class:`BreakerBoard`).  Worker-fatal outcomes (``crash``/``timeout``
quarantines, tailer read failures) count against the flow's *source*;
enough consecutive failures trip the breaker ``closed`` → ``open``
and the daemon stops polling that source.  After an exponential
backoff (with deterministic per-source jitter so many sources never
retry in lockstep) the breaker admits a ``half-open`` probe: one more
tailing window.  A clean result closes the breaker; another failure
re-opens it with a doubled backoff.  A bounded number of trips later
the source is ``quarantined`` permanently — one poisoned capture can
never monopolize the pool or starve healthy sources, no matter how
long the daemon runs.

::

                 failures >= threshold
      closed ──────────────────────────▶ open ──┐
        ▲                                 │     │ trips > max_trips
        │ success                 backoff │     ▼
        │                         elapsed │   quarantined (permanent)
        └────────── half-open ◀───────────┘
                        │ failure: re-open, backoff *= factor

**Resource watchdogs** (:class:`ResourceGovernor`).  A disk-pressure
monitor (free bytes under ``--out``, plus sink write failures) and a
memory monitor (process RSS, live-flow occupancy) drive a
graceful-degradation ladder.  Each rung gives up a little liveness to
protect the invariants that matter — results are journaled before
they are sunk, and the daemon exits gracefully or not at all:

========== ===============================================
state      restriction (each rung includes those above)
========== ===============================================
healthy    none
degraded   pause spool discovery (no new sources)
shedding   early-retire the oldest live flows; pause tailing
draining   journal-only mode (sink writes parked for replay)
========== ===============================================

Escalation is immediate; recovery is hysteretic — a rung is stepped
down only after the triggering metric has cleared its threshold *with
margin* for several consecutive ticks, so a daemon hovering at a
boundary never flaps.  The current state is mirrored in ``/healthz``,
``/stats``, and the Prometheus ``/metrics`` endpoint.

Every clock and probe is injectable, so the whole state machine is
unit-testable without filling a disk or ballooning a process.
"""

from __future__ import annotations

import os
import time
import zlib
from pathlib import Path
from typing import Callable

#: Breaker states, in escalation order.
BREAKER_STATES = ("closed", "open", "half-open", "quarantined")

#: Governor health states, one per degradation rung.
HEALTH_STATES = ("healthy", "degraded", "shedding", "draining")

#: Consecutive worker-fatal results that trip a closed breaker.
DEFAULT_BREAKER_FAILURES = 3
#: First-trip backoff in seconds; doubles per subsequent trip.
DEFAULT_BREAKER_BACKOFF = 5.0
#: Backoff ceiling, whatever the trip count.
DEFAULT_BREAKER_MAX_BACKOFF = 300.0
#: Trips after which a source is quarantined permanently.
DEFAULT_BREAKER_TRIPS = 3
#: Backoff jitter fraction (deterministic per source).
BREAKER_JITTER = 0.25

#: Ticks a metric must stay clear (with margin) before stepping down.
RECOVERY_TICKS = 3
#: Margin a metric must clear its threshold by to count as recovered.
RECOVERY_MARGIN = 1.25


class CircuitBreaker:
    """Failure isolation for one source: trip, back off, probe, give up.

    The breaker never touches the source itself — it only answers
    :meth:`allow` (may the daemon poll this source right now?) and
    accounts outcomes via :meth:`record_failure` /
    :meth:`record_success`.  ``quarantined`` is absorbing: once the
    trip budget is spent the source is never polled again.
    """

    def __init__(self, name: str = "",
                 failures: int = DEFAULT_BREAKER_FAILURES,
                 backoff: float = DEFAULT_BREAKER_BACKOFF,
                 max_backoff: float = DEFAULT_BREAKER_MAX_BACKOFF,
                 max_trips: int = DEFAULT_BREAKER_TRIPS,
                 clock: Callable[[], float] = time.monotonic):
        if failures < 1:
            raise ValueError(f"failures must be >= 1, not {failures}")
        if max_trips < 1:
            raise ValueError(f"max_trips must be >= 1, not {max_trips}")
        self.name = name
        self.failure_threshold = failures
        self.base_backoff = backoff
        self.max_backoff = max_backoff
        self.max_trips = max_trips
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.trip_count = 0
        self._reopen_at = 0.0
        # Deterministic jitter in [0, 1): stable for a given source
        # name across runs, different across sources — retries spread
        # out without making tests flaky.
        self._jitter = (zlib.crc32(name.encode()) % 1000) / 1000.0

    def allow(self) -> bool:
        """May the daemon ingest from this source right now?"""
        if self.state == "closed" or self.state == "half-open":
            return True
        if self.state == "quarantined":
            return False
        if self._clock() >= self._reopen_at:   # open, backoff elapsed
            self.state = "half-open"
            return True
        return False

    def record_failure(self) -> None:
        """One worker-fatal outcome attributed to this source."""
        if self.state == "quarantined":
            return
        if self.state == "half-open":
            self._trip()                 # the probe failed: re-open
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def record_success(self) -> None:
        """One healthy result attributed to this source."""
        if self.state == "quarantined":
            return
        self.consecutive_failures = 0
        if self.state == "half-open":
            self.state = "closed"        # the probe succeeded

    def quarantine(self) -> None:
        """Give up on the source immediately (e.g. not a pcap at all)."""
        self.state = "quarantined"

    @property
    def retry_in(self) -> float:
        """Seconds until the next half-open probe (0 when allowed)."""
        if self.state != "open":
            return 0.0
        return max(self._reopen_at - self._clock(), 0.0)

    def _trip(self) -> None:
        self.consecutive_failures = 0
        self.trip_count += 1
        if self.trip_count >= self.max_trips:
            self.state = "quarantined"
            return
        self.state = "open"
        backoff = self.base_backoff * (2.0 ** (self.trip_count - 1))
        backoff = min(backoff, self.max_backoff)
        self._reopen_at = self._clock() \
            + backoff * (1.0 + BREAKER_JITTER * self._jitter)


class BreakerBoard:
    """All per-source breakers, plus the transition log the daemon drains.

    Sources get a breaker lazily on first mention; transitions are
    accumulated as ``(source, old_state, new_state)`` events so the
    daemon can count trips/quarantines and log them without comparing
    snapshots every tick.
    """

    def __init__(self,
                 failures: int = DEFAULT_BREAKER_FAILURES,
                 backoff: float = DEFAULT_BREAKER_BACKOFF,
                 max_backoff: float = DEFAULT_BREAKER_MAX_BACKOFF,
                 max_trips: int = DEFAULT_BREAKER_TRIPS,
                 clock: Callable[[], float] = time.monotonic):
        self._spec = dict(failures=failures, backoff=backoff,
                          max_backoff=max_backoff, max_trips=max_trips,
                          clock=clock)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._events: list[tuple[str, str, str]] = []

    def breaker(self, source: str) -> CircuitBreaker:
        breaker = self._breakers.get(source)
        if breaker is None:
            breaker = CircuitBreaker(name=source, **self._spec)
            self._breakers[source] = breaker
        return breaker

    def _transition(self, source: str, action: Callable) -> None:
        breaker = self.breaker(source)
        before = breaker.state
        action(breaker)
        if breaker.state != before:
            self._events.append((source, before, breaker.state))

    def allow(self, source: str) -> bool:
        allowed = [False]

        def probe(breaker: CircuitBreaker) -> None:
            allowed[0] = breaker.allow()

        self._transition(source, probe)
        return allowed[0]

    def record_failure(self, source: str) -> None:
        self._transition(source, CircuitBreaker.record_failure)

    def record_success(self, source: str) -> None:
        self._transition(source, CircuitBreaker.record_success)

    def quarantine(self, source: str) -> None:
        self._transition(source, CircuitBreaker.quarantine)

    def drain_events(self) -> list[tuple[str, str, str]]:
        """Transitions since the last drain, oldest first."""
        events, self._events = self._events, []
        return events

    def states(self) -> dict[str, str]:
        """Current state per source (for /stats and /metrics)."""
        return {source: breaker.state
                for source, breaker in sorted(self._breakers.items())}

    def quarantined(self) -> set[str]:
        return {source for source, breaker in self._breakers.items()
                if breaker.state == "quarantined"}

    def blocked(self, source: str) -> bool:
        """True when the source must not be polled (without the
        side-effectful open → half-open transition of :meth:`allow`)."""
        breaker = self._breakers.get(source)
        if breaker is None:
            return False
        if breaker.state == "quarantined":
            return True
        return breaker.state == "open" and breaker.retry_in > 0


def process_rss_bytes() -> int:
    """Resident set size of this process, best effort (0 if unknown).

    Reads ``/proc/self/statm`` where available (Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.  Either way the number
    only drives the degradation ladder — precision is not required.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource
        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(rss_kib) * 1024
    except Exception:
        return 0


def free_bytes_under(path: str | Path) -> int:
    """Free bytes on the filesystem holding *path* (best effort)."""
    try:
        stats = os.statvfs(path)
    except OSError:
        return 0
    return stats.f_bavail * stats.f_frsize


class ResourceGovernor:
    """The degradation ladder: pressure in, health state out.

    Call :meth:`assess` once per daemon tick with the live-flow count
    and whether the sink is currently failing; read the restriction
    properties (:attr:`allows_discovery`, :attr:`pause_tailing`,
    :attr:`should_shed`, :attr:`journal_only`) to apply the current
    rung.  Limits set to 0 disable that watchdog entirely — a daemon
    configured with no budgets stays ``healthy`` forever and behaves
    exactly as it did before this module existed.
    """

    def __init__(self, out_dir: str | Path,
                 min_free_bytes: int = 0,
                 max_rss_bytes: int = 0,
                 max_live_flows: int = 0,
                 recovery_ticks: int = RECOVERY_TICKS,
                 recovery_margin: float = RECOVERY_MARGIN,
                 free_bytes_fn: Callable[[], int] | None = None,
                 rss_fn: Callable[[], int] | None = None):
        self.out_dir = Path(out_dir)
        self.min_free_bytes = min_free_bytes
        self.max_rss_bytes = max_rss_bytes
        self.max_live_flows = max_live_flows
        self.recovery_ticks = recovery_ticks
        self.recovery_margin = recovery_margin
        self._free_bytes = free_bytes_fn if free_bytes_fn is not None \
            else (lambda: free_bytes_under(self.out_dir))
        self._rss = rss_fn if rss_fn is not None else process_rss_bytes
        self.level = 0
        self._calm_ticks = 0
        self.transitions = 0
        # Last-probe readings, exposed as gauges.
        self.free_bytes = 0
        self.rss_bytes = 0

    @property
    def state(self) -> str:
        return HEALTH_STATES[self.level]

    @property
    def allows_discovery(self) -> bool:
        return self.level < 1

    @property
    def should_shed(self) -> bool:
        return self.level >= 2

    @property
    def pause_tailing(self) -> bool:
        return self.level >= 2

    @property
    def journal_only(self) -> bool:
        return self.level >= 3

    def _pressure_level(self, live_flows: int, sink_failing: bool,
                        margin: float) -> int:
        """The rung current readings demand.  *margin* > 1 makes every
        threshold harder to stay under — the hysteresis band."""
        free, rss = self.free_bytes, self.rss_bytes
        if sink_failing:
            return 3
        if self.min_free_bytes and free < self.min_free_bytes * margin:
            return 3
        if self.max_rss_bytes and rss > self.max_rss_bytes / margin:
            return 2
        if self.max_live_flows \
                and live_flows > self.max_live_flows / margin:
            return 2
        # Early warning: half the disk headroom gone, or RSS within
        # 80% of its budget — stop taking on new sources.
        if self.min_free_bytes \
                and free < 2 * self.min_free_bytes * margin:
            return 1
        if self.max_rss_bytes and rss > 0.8 * self.max_rss_bytes / margin:
            return 1
        return 0

    def assess(self, live_flows: int = 0,
               sink_failing: bool = False) -> str:
        """One governance tick: probe, escalate or (slowly) recover."""
        self.free_bytes = self._free_bytes()
        self.rss_bytes = self._rss()
        demanded = self._pressure_level(live_flows, sink_failing,
                                        margin=1.0)
        if demanded > self.level:
            self.level = demanded         # escalate immediately
            self._calm_ticks = 0
            self.transitions += 1
            return self.state
        # Step down one rung at a time, only after the readings have
        # cleared the *next lower* rung's thresholds with margin for
        # enough consecutive ticks.
        relaxed = self._pressure_level(live_flows, sink_failing,
                                       margin=self.recovery_margin)
        if self.level > 0 and relaxed < self.level:
            self._calm_ticks += 1
            if self._calm_ticks >= self.recovery_ticks:
                self.level -= 1
                self._calm_ticks = 0
                self.transitions += 1
        else:
            self._calm_ticks = 0
        return self.state

    def to_dict(self) -> dict:
        """JSON-safe snapshot for /stats."""
        return {
            "state": self.state,
            "free_bytes": self.free_bytes,
            "rss_bytes": self.rss_bytes,
            "min_free_bytes": self.min_free_bytes,
            "max_rss_bytes": self.max_rss_bytes,
            "max_live_flows": self.max_live_flows,
            "transitions": self.transitions,
        }
