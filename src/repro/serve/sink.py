"""The append-only JSONL result sink, duplicate-proof across restarts.

One ``{source}.jsonl`` file per capture source, one key-sorted JSON
object per flow — the same line format ``write_jsonl`` produces for a
batch run, so downstream tooling reads either interchangeably.

Restart safety is the whole design: the daemon journals a flow before
sinking it, so a crash between the two can leave a journaled flow
with no sink line (repaired here: the journal replay re-offers it and
the sink accepts it) or — never — a sink line with no journal entry.
On startup the sink loads the trace names already present in its
files and silently drops re-offers of those, which is what makes a
kill-and-resume cycle produce *zero* duplicate lines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


class JsonlSink:
    """Per-source append-only JSONL files with cross-restart dedupe."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, IO[str]] = {}
        self._seen: set[str] = set()
        self._load_existing()

    def _load_existing(self) -> None:
        """Recover the already-written trace names (resume dedupe)."""
        for path in sorted(self.directory.glob("*.jsonl")):
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue    # torn trailing write from a hard kill
                name = payload.get("trace")
                if isinstance(name, str):
                    self._seen.add(name)

    def path_for(self, source: str) -> Path:
        return self.directory / f"{source}.jsonl"

    def __contains__(self, trace_name: str) -> bool:
        return trace_name in self._seen

    def write(self, source: str, payloads: list[dict]) -> int:
        """Append payloads not yet present; return lines written."""
        written = 0
        for payload in payloads:
            name = payload.get("trace")
            if isinstance(name, str):
                if name in self._seen:
                    continue
                self._seen.add(name)
            handle = self._handles.get(source)
            if handle is None:
                handle = open(self.path_for(source), "a")
                self._handles[source] = handle
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            written += 1
        return written

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
