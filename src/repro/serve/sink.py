"""The append-only JSONL result sink, duplicate-proof across restarts.

One ``{source}.jsonl`` file per capture source, one key-sorted JSON
object per flow — the same line format ``write_jsonl`` produces for a
batch run, so downstream tooling reads either interchangeably.

Restart safety is the whole design: the daemon journals a flow before
sinking it, so a crash between the two can leave a journaled flow
with no sink line (repaired here: the journal replay re-offers it and
the sink accepts it) or — never — a sink line with no journal entry.
On startup the sink loads the trace names already present in its
files and silently drops re-offers of those, which is what makes a
kill-and-resume cycle produce *zero* duplicate lines.

Disk failure is survival, not death: an ``OSError`` from an append
(disk full, permission flipped, filesystem remounted read-only) marks
the sink **degraded** and *parks* the payload in memory instead of
raising — every parked payload is already journaled, so nothing can
be lost even if the process dies while parked.  The daemon's governor
sees :attr:`JsonlSink.degraded`, enters journal-only mode, and calls
:meth:`flush_parked` each tick; once writes succeed again the parked
backlog drains in order and dedupe picks up where it left off (a
payload joins the dedupe set only *after* its line is durably
written, so a parked payload is always re-offerable).

The ``fsync`` policy closes the last durability gap: with it on,
every line is fsynced before the write is acknowledged, so a hard
kill (power loss, SIGKILL) can tear at most the final line — and a
torn line is dropped by the startup loader, then repaired by
:meth:`_repair_tail` before the next append so it can never glue
itself onto a later record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Callable


class JsonlSink:
    """Per-source append-only JSONL files with cross-restart dedupe."""

    def __init__(self, directory: str | Path, fsync: bool = False,
                 fault_hook: Callable[[str], None] | None = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Test/chaos hook: called with the source name before every
        #: append; may raise OSError to simulate disk failure.
        self.fault_hook = fault_hook
        self._handles: dict[str, IO[str]] = {}
        self._seen: set[str] = set()
        #: Payloads whose append failed, in arrival order, awaiting
        #: a successful retry (each is already in the journal).
        self._parked: list[tuple[str, dict]] = []
        #: Sources whose file may end in a torn partial line (an
        #: append died mid-write); repaired before the next append.
        self._dirty: set[str] = set()
        self.write_errors = 0
        self.last_error: OSError | None = None
        #: True from a failed append until the next successful one.
        #: Distinct from :attr:`degraded`: payloads parked *by choice*
        #: (journal-only mode) leave ``failing`` False, so the
        #: governor can tell "disk is broken" from "we are holding
        #: back" — only the former needs a write probe to recover.
        self.failing = False
        self._load_existing()

    def _load_existing(self) -> None:
        """Recover the already-written trace names (resume dedupe)."""
        for path in sorted(self.directory.glob("*.jsonl")):
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue    # torn trailing write from a hard kill
                name = payload.get("trace")
                if isinstance(name, str):
                    self._seen.add(name)

    def path_for(self, source: str) -> Path:
        return self.directory / f"{source}.jsonl"

    def __contains__(self, trace_name: str) -> bool:
        return trace_name in self._seen

    @property
    def degraded(self) -> bool:
        """True while parked payloads await a successful retry."""
        return bool(self._parked)

    @property
    def parked(self) -> int:
        return len(self._parked)

    def write(self, source: str, payloads: list[dict]) -> int:
        """Append payloads not yet present; return lines written.

        Never raises for disk trouble: a failed append parks the
        payload (and every payload behind it, preserving order) and
        the sink reports itself degraded instead.
        """
        written = 0
        for payload in payloads:
            name = payload.get("trace")
            if isinstance(name, str) and name in self._seen:
                continue
            if self._parked:
                # Order within the sink is preserved: nothing may
                # overtake a parked payload of an earlier failure.
                self._parked.append((source, payload))
                continue
            if self._append(source, payload):
                written += 1
        return written

    def park(self, source: str, payloads: list[dict]) -> int:
        """Hold payloads for later (journal-only mode); dedupes now."""
        parked = 0
        for payload in payloads:
            name = payload.get("trace")
            if isinstance(name, str) and name in self._seen:
                continue
            if any(entry is payload for _s, entry in self._parked):
                continue
            self._parked.append((source, payload))
            parked += 1
        return parked

    def flush_parked(self) -> int:
        """Retry parked payloads in order; stop at the first failure.

        Returns lines actually written.  Dedupe applies at write
        time, so a payload that landed through another path (journal
        replay after restart) is silently dropped here.
        """
        written = 0
        while self._parked:
            source, payload = self._parked[0]
            name = payload.get("trace")
            if isinstance(name, str) and name in self._seen:
                self._parked.pop(0)
                continue
            if not self._append(source, payload, parked=True):
                break
            self._parked.pop(0)
            written += 1
        return written

    def _append(self, source: str, payload: dict,
                parked: bool = False) -> bool:
        """One durable line; on OSError park (unless retrying) and
        report failure."""
        try:
            if self.fault_hook is not None:
                self.fault_hook(source)
            if source in self._dirty:
                self._repair_tail(source)
            handle = self._handles.get(source)
            if handle is None:
                handle = open(self.path_for(source), "a")
                self._handles[source] = handle
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as error:
            self.write_errors += 1
            self.last_error = error
            self.failing = True
            # The failed write may have left a partial line behind;
            # remember to terminate it before the next append.
            self._dirty.add(source)
            handle = self._handles.pop(source, None)
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
            if not parked:
                self._parked.append((source, payload))
            return False
        self.failing = False
        name = payload.get("trace")
        if isinstance(name, str):
            self._seen.add(name)       # only once durably on disk
        return True

    def _repair_tail(self, source: str) -> None:
        """Terminate a torn trailing line left by a failed append.

        The fragment plus the newline parses as no JSON at all, so
        loaders (ours and any consumer that skips unparsable lines)
        drop it — the payload it belonged to is still parked and will
        be rewritten whole.
        """
        path = self.path_for(source)
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    self._dirty.discard(source)
                    return
                handle.seek(size - 1)
                torn = handle.read(1) != b"\n"
            if torn:
                with open(path, "ab") as handle:
                    handle.write(b"\n")
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())
            self._dirty.discard(source)
        except OSError:
            pass                       # still failing; retry later

    def close(self) -> None:
        for handle in self._handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._handles.clear()
