"""Tailing one growing capture into completed flows.

A :class:`CaptureTailer` owns the per-source ingest state the daemon
loop drives: an :class:`~repro.stream.IncrementalPcapReader` (which
never mistakes a half-written trailing record for damage) feeding a
:class:`~repro.stream.FlowTable` (which retires flows by the stream
clock exactly as batch ingest would).  Each :meth:`poll` consumes
whatever complete records have landed since the last one and returns
the flows their arrival completed; :meth:`finalize` declares the
capture finished and drains everything still open.

Because the tailer replays the same record sequence through the same
flow table the batch path uses, flow indices, membership, and close
reasons are deterministic — the property that makes live output
comparable to (and resumable against) a one-shot ``batch --stream``
run over the finished file.

A tailer can *fail*, and every failure is classified rather than
thrown at the daemon loop:

- a source that is not a pcap at all (bad magic) fails as ``decode``
  and is quarantined, exactly as before;
- a source **rotated or truncated in place** — the on-disk size fell
  below the reader's resume offset, or the path now names a different
  inode — fails with :attr:`rotated` set, so the daemon can apply its
  ``--on-rotate`` policy (quarantine the source, or restart tailing
  the new incarnation) instead of silently parking forever;
- an ``OSError`` mid-tail (source deleted, filesystem yanked) fails
  as ``io`` and quarantines the source, never the daemon.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.errors import AnalysisError
from repro.stream import Flow, FlowTable, IncrementalPcapReader, IngestStats

#: Records consumed from one source per poll; bounds the time a single
#: busy capture can hold the daemon loop (and how far tailing can
#: overshoot a backpressure pause).
DEFAULT_RECORDS_PER_POLL = 4096

#: Undecodable packets, with not one decoded record among them, after
#: which a source is declared a decode storm and quarantined — valid
#: pcap framing around garbage (a non-capture pointed at the daemon)
#: would otherwise burn a read per poll forever.
DECODE_STORM_THRESHOLD = 64


class CaptureTailer:
    """Incremental pcap → completed-flow pump for one source file."""

    def __init__(self, path: str | Path, source: str | None = None,
                 stats: IngestStats | None = None,
                 records_per_poll: int = DEFAULT_RECORDS_PER_POLL,
                 **table_options):
        self.path = Path(path)
        #: The name flows of this capture are reported under
        #: (``{source}#flow-NNNN``), conventionally the file name —
        #: the same name ``batch --stream`` would use for this file.
        self.source = source if source is not None else self.path.name
        self.stats = stats if stats is not None else IngestStats()
        self.records_per_poll = records_per_poll
        self.reader = IncrementalPcapReader(self.path, stats=self.stats)
        # Deliberately the batch path's table defaults: any divergence
        # here would break live-vs-batch flow equivalence.
        self.table = FlowTable(stats=self.stats, **table_options)
        self.finished = False
        #: Records fed through the flow table so far.
        self.records_consumed = 0
        #: Set when the source can no longer be tailed; the daemon
        #: quarantines (or, for rotation, restarts) the source and
        #: stops polling it.
        self.failed: Exception | None = None
        #: True when :attr:`failed` is an in-place rotation/truncation
        #: — the one failure for which restarting can make sense.
        self.rotated = False
        #: Inode backing the capture when its header was first read;
        #: a different inode under the same path means rotation.
        self._ino: int | None = None

    @property
    def ingest_lag(self) -> int:
        """Bytes on disk not yet consumed (tailing backlog)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        return max(size - self.reader.resume_offset, 0)

    @property
    def live_flows(self) -> int:
        return self.table.live_flows

    def _check_rotation(self) -> bool:
        """Detect in-place truncation or recreation; classify if so."""
        if self.reader.header is None:
            return False        # nothing consumed yet: nothing to lose
        try:
            status = self.path.stat()
        except FileNotFoundError:
            self._fail(AnalysisError(
                "io", f"{self.source}: capture deleted mid-tail "
                f"(after {self.reader.resume_offset} bytes)"))
            return True
        except OSError as error:
            self._fail(AnalysisError(
                "io", f"{self.source}: capture unreadable mid-tail: "
                f"{error}"))
            return True
        if self._ino is None:
            self._ino = status.st_ino
        rotated = status.st_ino != self._ino \
            or status.st_size < self.reader.resume_offset
        if rotated:
            self.rotated = True
            self._fail(AnalysisError(
                "io", f"{self.source}: capture rotated/truncated in "
                f"place (size {status.st_size} < consumed "
                f"{self.reader.resume_offset}, inode "
                f"{status.st_ino} vs {self._ino})"))
        return rotated

    def _fail(self, error: Exception) -> None:
        self.failed = error
        self.reader.close()

    def poll(self) -> list[Flow]:
        """Consume newly landed records; return newly completed flows.

        Reads at most ``records_per_poll`` records, so one source
        cannot starve the rest of the daemon loop; the remainder is
        picked up by the next poll (``ingest_lag`` stays honest
        either way).
        """
        if self.finished or self.failed is not None:
            return []
        if self._check_rotation():
            return []
        completed: list[Flow] = []
        consumed = 0
        try:
            for record in self.reader.poll():
                completed.extend(self.table.add(record))
                consumed += 1
                self.records_consumed += 1
                if consumed >= self.records_per_poll:
                    break
        except ValueError as error:
            # Not a pcap (bad magic, unsupported strict link type):
            # the source is quarantined, not retried forever.
            self._fail(error)
            return completed
        except OSError as error:
            # The file went away (or unreadable) mid-read: quarantine
            # the source, never the daemon.
            self._fail(AnalysisError(
                "io", f"{self.source}: read failed mid-tail: {error}"))
            return completed
        if self._ino is None and self.reader.header is not None:
            try:
                self._ino = self.path.stat().st_ino
            except OSError:
                pass
        if self.stats.records_decoded == 0 \
                and self.stats.decode_errors >= DECODE_STORM_THRESHOLD:
            self._fail(AnalysisError(
                "decode",
                f"{self.source}: decode storm — "
                f"{self.stats.decode_errors} undecodable packets and "
                f"not one decoded record"))
        return completed

    def shed(self, count: int) -> list[Flow]:
        """Early-retire the oldest live flows (memory-pressure valve)."""
        if count <= 0 or self.finished or self.failed is not None:
            return []
        return self.table.shed(count)

    def drain_open_flows(self) -> list[Flow]:
        """Hand back whatever the table still holds (rotation restart:
        the truncated incarnation's open flows, analyzed as-is)."""
        flows = self.table.drain()
        flows.sort(key=lambda flow: flow.index)
        return flows

    def finalize(self) -> list[Flow]:
        """End of capture: flush the trailing record, drain the table."""
        if self.finished or self.failed is not None:
            return []
        self.finished = True
        completed: list[Flow] = []
        try:
            for record in self.reader.finalize():
                completed.extend(self.table.add(record))
                self.records_consumed += 1
        except ValueError as error:
            self._fail(error)
            return completed
        except OSError as error:
            self._fail(AnalysisError(
                "io", f"{self.source}: read failed at finalize: "
                f"{error}"))
            return completed
        completed.extend(self.table.drain())
        completed.sort(key=lambda flow: flow.index)
        return completed
