"""Tailing one growing capture into completed flows.

A :class:`CaptureTailer` owns the per-source ingest state the daemon
loop drives: an :class:`~repro.stream.IncrementalPcapReader` (which
never mistakes a half-written trailing record for damage) feeding a
:class:`~repro.stream.FlowTable` (which retires flows by the stream
clock exactly as batch ingest would).  Each :meth:`poll` consumes
whatever complete records have landed since the last one and returns
the flows their arrival completed; :meth:`finalize` declares the
capture finished and drains everything still open.

Because the tailer replays the same record sequence through the same
flow table the batch path uses, flow indices, membership, and close
reasons are deterministic — the property that makes live output
comparable to (and resumable against) a one-shot ``batch --stream``
run over the finished file.
"""

from __future__ import annotations

from pathlib import Path

from repro.stream import Flow, FlowTable, IncrementalPcapReader, IngestStats

#: Records consumed from one source per poll; bounds the time a single
#: busy capture can hold the daemon loop (and how far tailing can
#: overshoot a backpressure pause).
DEFAULT_RECORDS_PER_POLL = 4096


class CaptureTailer:
    """Incremental pcap → completed-flow pump for one source file."""

    def __init__(self, path: str | Path, source: str | None = None,
                 stats: IngestStats | None = None,
                 records_per_poll: int = DEFAULT_RECORDS_PER_POLL,
                 **table_options):
        self.path = Path(path)
        #: The name flows of this capture are reported under
        #: (``{source}#flow-NNNN``), conventionally the file name —
        #: the same name ``batch --stream`` would use for this file.
        self.source = source if source is not None else self.path.name
        self.stats = stats if stats is not None else IngestStats()
        self.records_per_poll = records_per_poll
        self.reader = IncrementalPcapReader(self.path, stats=self.stats)
        # Deliberately the batch path's table defaults: any divergence
        # here would break live-vs-batch flow equivalence.
        self.table = FlowTable(stats=self.stats, **table_options)
        self.finished = False
        #: Records fed through the flow table so far.
        self.records_consumed = 0
        #: Set when the source turns out not to be a pcap at all; the
        #: daemon quarantines the whole source and stops polling it.
        self.failed: Exception | None = None

    @property
    def ingest_lag(self) -> int:
        """Bytes on disk not yet consumed (tailing backlog)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0
        return max(size - self.reader.resume_offset, 0)

    @property
    def live_flows(self) -> int:
        return self.table.live_flows

    def poll(self) -> list[Flow]:
        """Consume newly landed records; return newly completed flows.

        Reads at most ``records_per_poll`` records, so one source
        cannot starve the rest of the daemon loop; the remainder is
        picked up by the next poll (``ingest_lag`` stays honest
        either way).
        """
        if self.finished or self.failed is not None:
            return []
        completed: list[Flow] = []
        consumed = 0
        try:
            for record in self.reader.poll():
                completed.extend(self.table.add(record))
                consumed += 1
                self.records_consumed += 1
                if consumed >= self.records_per_poll:
                    break
        except ValueError as error:
            # Not a pcap (bad magic, unsupported strict link type):
            # the source is quarantined, not retried forever.
            self.failed = error
            self.reader.close()
            return completed
        return completed

    def finalize(self) -> list[Flow]:
        """End of capture: flush the trailing record, drain the table."""
        if self.finished or self.failed is not None:
            return []
        self.finished = True
        completed: list[Flow] = []
        try:
            for record in self.reader.finalize():
                completed.extend(self.table.add(record))
                self.records_consumed += 1
        except ValueError as error:
            self.failed = error
            self.reader.close()
            return completed
        completed.extend(self.table.drain())
        completed.sort(key=lambda flow: flow.index)
        return completed
