"""The spool watcher: drop-in captures become live sources.

Operators often cannot point the daemon at capture files that exist
yet — rotation tools and packet filters create them over time.  The
:class:`SpoolWatcher` polls a directory for files matching a glob
pattern and reports each exactly once per *incarnation*, leaving
lifecycle management (tailing, finalizing) to the daemon.  Polling,
not inotify: no platform dependence, and the daemon loop already
ticks at a cadence that makes a scan per tick cheap.

Two real-world behaviors the first version got wrong are now part of
the contract:

- **No unbounded memory.**  The seen-set tracks only paths that still
  exist; a deleted capture is forgotten, so a spool directory churned
  by a rotation tool for months cannot grow the watcher without
  bound.
- **Rotation visibility.**  A file deleted and recreated under the
  same name (or truncated and rewritten in place) is a *new
  incarnation* and is reported again: the watcher remembers each
  path's ``(st_ino, st_size)`` and re-reports when the inode changes
  or the size shrinks.  Plain growth — the normal case for a capture
  being appended to — never re-reports.
"""

from __future__ import annotations

from pathlib import Path


class SpoolWatcher:
    """Report files newly appearing under a directory, exactly once
    per incarnation (recreated or truncated files count as new)."""

    def __init__(self, directory: str | Path, pattern: str = "*.pcap"):
        self.directory = Path(directory)
        self.pattern = pattern
        #: path -> (st_ino, st_size) at the last scan that saw it.
        self._seen: dict[Path, tuple[int, int]] = {}

    def scan(self) -> list[Path]:
        """Paths that appeared (or reappeared) since the previous
        scan, sorted."""
        try:
            present = sorted(self.directory.glob(self.pattern))
        except OSError:
            return []
        fresh: list[Path] = []
        current: dict[Path, tuple[int, int]] = {}
        for path in present:
            try:
                status = path.stat()
            except OSError:
                continue           # vanished between glob and stat
            incarnation = (status.st_ino, status.st_size)
            known = self._seen.get(path)
            if known is None:
                fresh.append(path)
            elif known[0] != status.st_ino \
                    or status.st_size < known[1]:
                # Same name, different file: recreated (new inode) or
                # truncated in place (shrunk) — a new incarnation.
                fresh.append(path)
            current[path] = incarnation
        # Forgetting departed paths keeps the set bounded by the
        # directory's live population, and makes a delete-then-
        # recreate cycle register even if both happen between scans
        # of a very slow loop (the inode check catches the rest).
        self._seen = current
        return fresh
