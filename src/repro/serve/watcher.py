"""The spool watcher: drop-in captures become live sources.

Operators often cannot point the daemon at capture files that exist
yet — rotation tools and packet filters create them over time.  The
:class:`SpoolWatcher` polls a directory for files matching a glob
pattern and reports each exactly once, leaving lifecycle management
(tailing, finalizing) to the daemon.  Polling, not inotify: no
platform dependence, and the daemon loop already ticks at a cadence
that makes a scan per tick cheap.
"""

from __future__ import annotations

from pathlib import Path


class SpoolWatcher:
    """Report files newly appearing under a directory, exactly once."""

    def __init__(self, directory: str | Path, pattern: str = "*.pcap"):
        self.directory = Path(directory)
        self.pattern = pattern
        self._seen: set[Path] = set()

    def scan(self) -> list[Path]:
        """Paths that appeared since the previous scan, sorted."""
        try:
            present = sorted(self.directory.glob(self.pattern))
        except OSError:
            return []
        fresh = [path for path in present if path not in self._seen]
        self._seen.update(fresh)
        return fresh
