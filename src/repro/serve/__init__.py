"""The always-on analysis service (``tcpanaly serve``).

Batch mode answers "what did this corpus contain"; serve mode answers
"what is the network doing right now".  The daemon tails growing pcap
files (plus a watched spool directory), demuxes them live through the
streaming layer, fans retired flows out to supervised analysis
workers, and publishes results as they land — an append-only JSONL
sink per source, rolling traffic aggregates, and a local HTTP
stats/health endpoint.

Components, one module each:

- :class:`CaptureTailer` — incremental reader + flow table for one
  growing capture;
- :class:`SpoolWatcher` — drop-in capture discovery;
- :class:`FlowScheduler` / :class:`FlowWorkItem` — journal-first
  dispatch of retired flows over a
  :class:`~repro.pipeline.PoolSession`, sharded by connection key;
- :class:`ServeMetrics` — counters, gauges, and sliding-window
  aggregates behind ``/stats``;
- :class:`JsonlSink` — duplicate-proof per-source JSONL output;
- :class:`CircuitBreaker` / :class:`BreakerBoard` /
  :class:`ResourceGovernor` — per-source fault isolation and the
  resource-pressure degradation ladder;
- :class:`ServeDaemon` / :class:`ServeConfig` — the loop that ties
  them together, with backpressure, governance, and graceful drain.

The load-bearing invariant: for any capture, the flows the daemon
reports are byte-identical to what ``tcpanaly batch --stream`` would
report over the finished file (modulo the capture-wide ``ingest``
block, which a still-growing capture cannot have) — including across
a kill-and-restart, courtesy of the checkpoint journal and the
sink's cross-restart dedupe.
"""

from repro.serve.daemon import ROTATE_POLICIES, ServeConfig, ServeDaemon
from repro.serve.governor import (
    BREAKER_STATES,
    HEALTH_STATES,
    BreakerBoard,
    CircuitBreaker,
    ResourceGovernor,
)
from repro.serve.metrics import (
    RollingWindow,
    ServeMetrics,
    flow_retransmission_rate,
    render_prometheus,
)
from repro.serve.scheduler import (
    FlowScheduler,
    FlowWorkItem,
    analyze_flow_item,
)
from repro.serve.sink import JsonlSink
from repro.serve.tailer import CaptureTailer
from repro.serve.watcher import SpoolWatcher

__all__ = [
    "BREAKER_STATES",
    "BreakerBoard",
    "CaptureTailer",
    "CircuitBreaker",
    "FlowScheduler",
    "FlowWorkItem",
    "HEALTH_STATES",
    "JsonlSink",
    "ROTATE_POLICIES",
    "ResourceGovernor",
    "RollingWindow",
    "ServeConfig",
    "ServeDaemon",
    "ServeMetrics",
    "SpoolWatcher",
    "analyze_flow_item",
    "flow_retransmission_rate",
    "render_prometheus",
]
