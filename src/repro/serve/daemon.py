"""The serve daemon loop: tail → demux → dispatch → publish, forever.

One single-threaded loop ties the serve components together (workers
are processes; the only extra thread is the HTTP endpoint's):

1. govern: probe disk/memory pressure, advance the degradation
   ladder, process circuit-breaker transitions, retry parked sink and
   journal writes;
2. scan the spool directory for drop-in captures (new tailers) —
   unless the governor has paused discovery;
3. unless backpressure or the governor has paused tailing, poll every
   tailer whose circuit breaker admits it — newly landed records flow
   through the incremental reader and the flow table, and retired
   flows are submitted to the scheduler;
4. recompute backpressure: queue depth at or above the high-water
   mark pauses tailing (bytes stay safely on disk; ``ingest_lag``
   grows), at or below the low-water mark resumes it;
5. poll the scheduler for finished flows — each already journaled —
   and append them to the JSONL sink (which drops duplicates across
   restarts), or park them when the governor is in journal-only mode;
6. refresh the metric gauges the ``/stats`` and ``/metrics``
   endpoints snapshot.

Fault isolation is per *source*: a flow whose worker crashes or hangs
counts against its source's circuit breaker, a tripped source is
paused and retried with exponential backoff through a half-open
probe, and a source that keeps tripping is quarantined permanently —
its queued flows are withdrawn from the pool (``cancelled``, never
journaled) so healthy sources get the workers back.  A capture
rotated or truncated in place surfaces as a classified ``rotated``
condition handled per ``--on-rotate``: quarantine the source, or
restart tailing the new incarnation under a fresh source name.

Shutdown has two distinct shapes, and the difference is load-bearing:

- **Signal drain** (SIGTERM/SIGINT via :meth:`ServeDaemon.request_stop`):
  stop tailing immediately, finish every flow already retired and
  submitted, journal and sink the results, exit 0.  Flows still *open*
  in a flow table are deliberately NOT analyzed — they are incomplete,
  and a partial-flow result under a name the finished flow will later
  claim would poison the resume.  A restarted daemon re-tails from
  offset zero, the journal replays completed flows by name+digest,
  and the sink's dedupe guarantees zero duplicate lines.
- **Idle exit** (``exit_when_idle``): after ``quiet_seconds`` with no
  new bytes, no queued work, and no lag, the capture is declared
  complete — tailers finalize with end-of-capture semantics (trailing
  partial record, table drain), exactly as ``batch --stream`` treats
  a finished file.  This is the mode benchmarks and CI use to compare
  live output against batch output.  Sources whose breaker has been
  quarantined are excluded from finalize — the daemon gave up on them
  for cause.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import classify_exception
from repro.harness.faults import FaultPlan, ResourceFaultPlan
from repro.pipeline.journal import BatchJournal
from repro.pipeline.runner import true_implementation
from repro.serve.governor import (
    DEFAULT_BREAKER_BACKOFF,
    DEFAULT_BREAKER_FAILURES,
    DEFAULT_BREAKER_MAX_BACKOFF,
    DEFAULT_BREAKER_TRIPS,
    BreakerBoard,
    ResourceGovernor,
)
from repro.serve.metrics import ServeMetrics, flow_retransmission_rate
from repro.serve.scheduler import FlowScheduler, FlowWorkItem
from repro.serve.sink import JsonlSink
from repro.serve.tailer import DEFAULT_RECORDS_PER_POLL, CaptureTailer
from repro.serve.watcher import SpoolWatcher
from repro.stream import Flow

#: ``--on-rotate`` policies for a capture rotated/truncated in place.
ROTATE_POLICIES = ("quarantine", "restart")


@dataclass
class ServeConfig:
    """Everything ``tcpanaly serve`` configures."""

    out_dir: Path
    captures: list[Path] = field(default_factory=list)
    spool: Path | None = None
    workers: int = 2
    timeout: float | None = None
    retries: int = 2
    http_port: int | None = None
    #: Queued-flow counts that pause/resume tailing.
    high_water: int = 64
    low_water: int = 8
    #: Seconds each loop tick blocks waiting for worker results.
    poll_interval: float = 0.2
    records_per_poll: int = DEFAULT_RECORDS_PER_POLL
    #: Exit 0 once every source is quiet — the batch-comparison mode.
    exit_when_idle: bool = False
    quiet_seconds: float = 2.0
    #: Rolling-aggregate window for /stats.
    window: float = 300.0
    #: Resource budgets (0 disables the watchdog).
    min_free_bytes: int = 0
    max_rss_bytes: int = 0
    max_live_flows: int = 0
    #: Circuit-breaker tuning (per source).
    breaker_failures: int = DEFAULT_BREAKER_FAILURES
    breaker_backoff: float = DEFAULT_BREAKER_BACKOFF
    breaker_max_backoff: float = DEFAULT_BREAKER_MAX_BACKOFF
    breaker_trips: int = DEFAULT_BREAKER_TRIPS
    #: What to do with a source rotated/truncated in place.
    on_rotate: str = "quarantine"
    #: fsync the sink after every line (hard kills tear at most one).
    fsync: bool = False
    #: Test/bench hook: fault injection in the analysis workers.
    fault_plan: FaultPlan | None = None
    #: Test/bench hook: environmental faults (ENOSPC, slow-io) in the
    #: daemon itself.
    resource_faults: ResourceFaultPlan | None = None
    #: Extra FlowTable options (idle_timeout, max_flows, ...).  Leave
    #: empty for strict live-vs-batch flow equivalence.
    table_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.on_rotate not in ROTATE_POLICIES:
            raise ValueError(f"on_rotate must be one of "
                             f"{ROTATE_POLICIES}, not {self.on_rotate!r}")


class ServeDaemon:
    """The always-on analysis service.  One instance, one ``run()``."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = ServeMetrics(window=config.window)
        self.ready = False
        self.paused = False
        self._stop = threading.Event()
        self._tailers: list[CaptureTailer] = []
        self._sources: set[str] = set()
        self._by_path: dict[Path, CaptureTailer] = {}
        self._scheduler: FlowScheduler | None = None
        self._sink: JsonlSink | None = None
        self.breakers = BreakerBoard(
            failures=config.breaker_failures,
            backoff=config.breaker_backoff,
            max_backoff=config.breaker_max_backoff,
            max_trips=config.breaker_trips)
        self.governor = ResourceGovernor(
            Path(config.out_dir),
            min_free_bytes=config.min_free_bytes,
            max_rss_bytes=config.max_rss_bytes,
            max_live_flows=config.max_live_flows)

    def request_stop(self) -> None:
        """Begin a graceful drain; safe to call from a signal handler."""
        self._stop.set()

    # -- source management -------------------------------------------

    def _add_source(self, path: Path) -> CaptureTailer:
        source = path.name
        suffix = 1
        while source in self._sources:    # same file name, second dir
            suffix += 1
            source = f"{path.name}~{suffix}"
        self._sources.add(source)
        tailer = CaptureTailer(
            path, source=source,
            records_per_poll=self.config.records_per_poll,
            on_retire=self.metrics.observe_retirement,
            **self.config.table_options)
        self._tailers.append(tailer)
        self._by_path[path] = tailer
        return tailer

    def _quarantine_source(self, tailer: CaptureTailer) -> None:
        """A source that can no longer be tailed: one classified sink
        line, a permanently-open breaker, and its queue flushed."""
        self.metrics.sources_failed += 1
        payload = {"trace": tailer.source, "implementation": None}
        payload.update(classify_exception(tailer.failed).to_fields())
        self._route([(tailer.source, [payload])])
        self.breakers.quarantine(tailer.source)
        if self._by_path.get(tailer.path) is tailer:
            del self._by_path[tailer.path]

    def _rotate(self, tailer: CaptureTailer) -> None:
        """Apply the ``--on-rotate`` policy to a rotated source."""
        self.metrics.rotations += 1
        if self._by_path.get(tailer.path) is tailer:
            del self._by_path[tailer.path]
        if self.config.on_rotate == "restart":
            # The truncated incarnation's open flows still analyze
            # (their records were really captured); the new
            # incarnation tails under a fresh source name, so sink
            # dedupe can never conflate the two.
            flows = tailer.drain_open_flows()
            if flows:
                self._submit(tailer.source, flows)
            if tailer.path.exists():
                self._add_source(tailer.path)
        else:
            self._quarantine_source(tailer)

    def _discover(self, path: Path) -> None:
        """One watcher report: a brand-new path, or a recreated one."""
        existing = self._by_path.get(path)
        if existing is not None and existing.failed is None \
                and not existing.finished:
            # Recreated under an active tailer: force the rotation
            # check now instead of waiting for its next poll.
            if existing._check_rotation():
                if existing.rotated:
                    self._rotate(existing)
                else:
                    self._quarantine_source(existing)
            return
        self._add_source(path)

    # -- work routing ------------------------------------------------

    def _submit(self, source: str, flows: list[Flow]) -> None:
        implementation = true_implementation(source)
        for flow in flows:
            self.metrics.flows_submitted += 1
            self.metrics.observe_retransmission_rate(
                flow_retransmission_rate(flow.records))
            replayed = self._scheduler.submit(
                FlowWorkItem(source, flow, implementation=implementation))
            if replayed:
                self.metrics.journal_skips += len(replayed)
                self._route(replayed)

    def _route(self, results: list[tuple[str, list[dict]]]) -> None:
        journal_only = self.governor.journal_only
        for name, payloads in results:
            source = name.split("#", 1)[0]
            if journal_only:
                self._sink.park(source, payloads)
            else:
                self.metrics.sink_lines += self._sink.write(source,
                                                            payloads)
            for payload in payloads:
                self.metrics.observe_payload(payload)

    def _cancel_source(self, source: str) -> None:
        """Withdraw a quarantined source's queued flows from the pool."""
        cancelled = self._scheduler.cancel_source(source)
        self.metrics.flows_cancelled += len(cancelled)
        # Deliberately NOT routed to the sink: a ``cancelled`` line
        # under a flow's name would block that flow's real result
        # from ever landing (sink dedupe is by name).

    # -- governance --------------------------------------------------

    def _govern(self) -> None:
        """One governance tick: ladder, shedding, parked-write retry."""
        live = sum(t.live_flows for t in self._tailers
                   if t.failed is None and not t.finished)
        self.governor.assess(live_flows=live,
                             sink_failing=self._sink.failing)
        if self.governor.should_shed and live > 0:
            self._shed(live)
        # Parked-write retries.  A failing sink is probed every tick
        # regardless of ladder state — a successful probe is how the
        # sink recovers.  A merely-parked sink (journal-only mode
        # entered for disk headroom) is only drained once the
        # governor has stepped back below draining, preserving the
        # headroom the operator asked for.
        if self._sink.failing or (self._sink.degraded
                                  and not self.governor.journal_only):
            self.metrics.sink_lines += self._sink.flush_parked()
        if self._scheduler.journal_pending:
            self._scheduler.flush_journal()

    def _shed(self, live: int) -> None:
        """Early-retire the oldest live flows well below the budget.

        Shedding to *half* the budget (not the budget itself) gives
        the governor's recovery margin room to clear — shedding to the
        line would leave the occupancy inside the hysteresis band and
        the ladder stuck at ``shedding`` forever.
        """
        budget = self.config.max_live_flows // 2 \
            if self.config.max_live_flows else live // 2
        excess = live - budget
        if excess <= 0:
            return
        for tailer in sorted(self._tailers, key=lambda t: t.live_flows,
                             reverse=True):
            if excess <= 0:
                break
            shed = tailer.shed(min(excess, tailer.live_flows))
            if shed:
                excess -= len(shed)
                self.metrics.flows_shed += len(shed)
                self._submit(tailer.source, shed)

    def _breaker_events(self) -> None:
        """Account breaker transitions; flush newly quarantined
        sources out of the pool."""
        for source, _old, new in self.breakers.drain_events():
            if new == "open":
                self.metrics.breaker_trips += 1
            elif new == "quarantined":
                self.metrics.breaker_quarantines += 1
                self._cancel_source(source)

    # -- the loop ----------------------------------------------------

    def run(self) -> int:
        config = self.config
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        journal = BatchJournal(out / "journal.jsonl", stream=True,
                               resume=True)
        faults = config.resource_faults
        self._sink = JsonlSink(
            out / "results", fsync=config.fsync,
            fault_hook=faults.check_sink_write if faults else None)
        self._scheduler = FlowScheduler(
            config.workers, journal=journal, timeout=config.timeout,
            retries=config.retries, fault_plan=config.fault_plan,
            breakers=self.breakers)
        watcher = SpoolWatcher(config.spool) \
            if config.spool is not None else None
        for path in config.captures:
            self._add_source(Path(path))
        httpd = None
        if config.http_port is not None:
            from repro.serve.httpd import StatsServer
            httpd = StatsServer(self.metrics.to_dict, lambda: self.ready,
                                health_fn=lambda: self.governor.state,
                                port=config.http_port)
            httpd.start()
            # Ephemeral ports (--http 0) are useless unless announced.
            (out / "http.port").write_text(f"{httpd.port}\n")
        try:
            self._loop(watcher)
            # Graceful end, either shape: every already-retired flow
            # is finished, journaled, and sunk before we return.
            if not self._stop.is_set():
                # Idle exit: sources are complete, apply EOF
                # semantics — except those quarantined for cause.
                quarantined = self.breakers.quarantined()
                for tailer in self._tailers:
                    if tailer.source in quarantined:
                        continue
                    self._submit(tailer.source, tailer.finalize())
            self._route(self._scheduler.drain())
            self._breaker_events()
            # Final drain of the parked backlog, retried while it
            # makes progress: flush_parked stops at the first failed
            # append, but a transient failure (disk recovered between
            # attempts) should not strand the recoverable payloads
            # queued behind it.  A dead disk writes nothing and the
            # loop exits; everything parked is already journaled.
            while self._sink.degraded and not self.governor.journal_only:
                flushed = self._sink.flush_parked()
                if flushed == 0:
                    break
                self.metrics.sink_lines += flushed
            self._scheduler.flush_journal()
            self._refresh_gauges()
            return 0
        finally:
            self.ready = False
            self._scheduler.close(graceful=True)
            journal.close()
            self._sink.close()
            if httpd is not None:
                httpd.stop()

    def _tail(self) -> int:
        """Poll every admissible tailer once; return records consumed."""
        config = self.config
        faults = config.resource_faults
        consumed = 0
        for tailer in list(self._tailers):
            if tailer.failed is not None or tailer.finished:
                continue
            if not self.breakers.allow(tailer.source):
                continue
            if faults is not None:
                delay = faults.io_delay(tailer.source)
                if delay > 0:
                    time.sleep(delay)
            before = tailer.records_consumed
            flows = tailer.poll()
            consumed += tailer.records_consumed - before
            self.metrics.records_ingested += \
                tailer.records_consumed - before
            if flows:
                self._submit(tailer.source, flows)
            if tailer.failed is not None:
                if tailer.rotated:
                    self._rotate(tailer)
                else:
                    self._quarantine_source(tailer)
        return consumed

    def _pending_sources(self) -> bool:
        """Any active source with unconsumed bytes the daemon still
        intends to read?  Breaker-quarantined sources don't count —
        the daemon gave up on them; open breakers do — their backoff
        will elapse and a probe will run."""
        quarantined = self.breakers.quarantined()
        return any(t.ingest_lag > 0 for t in self._tailers
                   if t.failed is None and not t.finished
                   and t.source not in quarantined)

    def _loop(self, watcher: SpoolWatcher | None) -> None:
        config = self.config
        last_activity = time.monotonic()
        while not self._stop.is_set():
            activity = 0
            self._govern()
            if watcher is not None and self.governor.allows_discovery:
                for path in watcher.scan():
                    self._discover(path)
                    activity += 1
            if not self.paused and not self.governor.pause_tailing:
                activity += self._tail()
            depth = self._scheduler.queue_depth
            if not self.paused and depth >= config.high_water:
                self.paused = True
                self.metrics.pause_events += 1
            elif self.paused and depth <= config.low_water:
                self.paused = False
            results = self._scheduler.poll(timeout=config.poll_interval)
            self._breaker_events()
            if results:
                activity += len(results)
                self._route(results)
            self._refresh_gauges()
            self.ready = True
            now = time.monotonic()
            # Undelivered parked payloads count as busy: idle exit
            # must not drop results the disk refused mid-run.
            busy = activity > 0 or self._scheduler.outstanding > 0 \
                or self._pending_sources() or self._sink.parked > 0 \
                or self._scheduler.journal_pending > 0
            if busy:
                last_activity = now
            elif config.exit_when_idle \
                    and now - last_activity >= config.quiet_seconds:
                return
            if not busy and not results:
                # Nothing in flight: sleep on the stop event so a
                # signal wakes the loop instead of waiting out a tick.
                self._stop.wait(config.poll_interval)

    def _refresh_gauges(self) -> None:
        metrics = self.metrics
        active = [t for t in self._tailers
                  if t.failed is None and not t.finished]
        metrics.ingest_lag_bytes = sum(t.ingest_lag for t in active)
        metrics.flow_table_occupancy = sum(t.live_flows for t in active)
        metrics.queue_depth = self._scheduler.queue_depth
        metrics.inflight = self._scheduler.inflight
        metrics.worker_restarts = self._scheduler.worker_restarts
        metrics.sources = len(self._tailers)
        metrics.paused = self.paused or self.governor.pause_tailing
        metrics.health_state = self.governor.state
        metrics.breaker_states = self.breakers.states()
        metrics.disk_free_bytes = self.governor.free_bytes
        metrics.rss_bytes = self.governor.rss_bytes
        metrics.sink_parked = self._sink.parked
        metrics.journal_pending = self._scheduler.journal_pending
        metrics.sink_errors = self._sink.write_errors
        metrics.journal_errors = self._scheduler.journal_errors
        metrics.flows_cancelled = self._scheduler.cancelled
