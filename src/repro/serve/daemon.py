"""The serve daemon loop: tail → demux → dispatch → publish, forever.

One single-threaded loop ties the serve components together (workers
are processes; the only extra thread is the HTTP endpoint's):

1. scan the spool directory for drop-in captures (new tailers);
2. unless backpressure has paused tailing, poll every tailer —
   newly landed records flow through the incremental reader and the
   flow table, and retired flows are submitted to the scheduler;
3. recompute backpressure: queue depth at or above the high-water
   mark pauses tailing (bytes stay safely on disk; ``ingest_lag``
   grows), at or below the low-water mark resumes it;
4. poll the scheduler for finished flows — each already journaled —
   and append them to the JSONL sink (which drops duplicates across
   restarts);
5. refresh the metric gauges the ``/stats`` endpoint snapshots.

Shutdown has two distinct shapes, and the difference is load-bearing:

- **Signal drain** (SIGTERM/SIGINT via :meth:`ServeDaemon.request_stop`):
  stop tailing immediately, finish every flow already retired and
  submitted, journal and sink the results, exit 0.  Flows still *open*
  in a flow table are deliberately NOT analyzed — they are incomplete,
  and a partial-flow result under a name the finished flow will later
  claim would poison the resume.  A restarted daemon re-tails from
  offset zero, the journal replays completed flows by name+digest,
  and the sink's dedupe guarantees zero duplicate lines.
- **Idle exit** (``exit_when_idle``): after ``quiet_seconds`` with no
  new bytes, no queued work, and no lag, the capture is declared
  complete — tailers finalize with end-of-capture semantics (trailing
  partial record, table drain), exactly as ``batch --stream`` treats
  a finished file.  This is the mode benchmarks and CI use to compare
  live output against batch output.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import classify_exception
from repro.harness.faults import FaultPlan
from repro.pipeline.journal import BatchJournal
from repro.pipeline.runner import true_implementation
from repro.serve.metrics import ServeMetrics, flow_retransmission_rate
from repro.serve.scheduler import FlowScheduler, FlowWorkItem
from repro.serve.sink import JsonlSink
from repro.serve.tailer import DEFAULT_RECORDS_PER_POLL, CaptureTailer
from repro.serve.watcher import SpoolWatcher
from repro.stream import Flow


@dataclass
class ServeConfig:
    """Everything ``tcpanaly serve`` configures."""

    out_dir: Path
    captures: list[Path] = field(default_factory=list)
    spool: Path | None = None
    workers: int = 2
    timeout: float | None = None
    retries: int = 2
    http_port: int | None = None
    #: Queued-flow counts that pause/resume tailing.
    high_water: int = 64
    low_water: int = 8
    #: Seconds each loop tick blocks waiting for worker results.
    poll_interval: float = 0.2
    records_per_poll: int = DEFAULT_RECORDS_PER_POLL
    #: Exit 0 once every source is quiet — the batch-comparison mode.
    exit_when_idle: bool = False
    quiet_seconds: float = 2.0
    #: Rolling-aggregate window for /stats.
    window: float = 300.0
    #: Test/bench hook: fault injection in the analysis workers.
    fault_plan: FaultPlan | None = None
    #: Extra FlowTable options (idle_timeout, max_flows, ...).  Leave
    #: empty for strict live-vs-batch flow equivalence.
    table_options: dict = field(default_factory=dict)


class ServeDaemon:
    """The always-on analysis service.  One instance, one ``run()``."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = ServeMetrics(window=config.window)
        self.ready = False
        self.paused = False
        self._stop = threading.Event()
        self._tailers: list[CaptureTailer] = []
        self._sources: set[str] = set()
        self._scheduler: FlowScheduler | None = None
        self._sink: JsonlSink | None = None

    def request_stop(self) -> None:
        """Begin a graceful drain; safe to call from a signal handler."""
        self._stop.set()

    # -- source management -------------------------------------------

    def _add_source(self, path: Path) -> None:
        source = path.name
        suffix = 1
        while source in self._sources:    # same file name, second dir
            suffix += 1
            source = f"{path.name}~{suffix}"
        self._sources.add(source)
        self._tailers.append(CaptureTailer(
            path, source=source,
            records_per_poll=self.config.records_per_poll,
            on_retire=self.metrics.observe_retirement,
            **self.config.table_options))

    def _quarantine_source(self, tailer: CaptureTailer) -> None:
        """A source that is not a pcap: one classified sink line."""
        self.metrics.sources_failed += 1
        payload = {"trace": tailer.source, "implementation": None}
        payload.update(classify_exception(tailer.failed).to_fields())
        self._route([(tailer.source, [payload])])

    # -- work routing ------------------------------------------------

    def _submit(self, source: str, flows: list[Flow]) -> None:
        implementation = true_implementation(source)
        for flow in flows:
            self.metrics.flows_submitted += 1
            self.metrics.observe_retransmission_rate(
                flow_retransmission_rate(flow.records))
            replayed = self._scheduler.submit(
                FlowWorkItem(source, flow, implementation=implementation))
            if replayed:
                self.metrics.journal_skips += len(replayed)
                self._route(replayed)

    def _route(self, results: list[tuple[str, list[dict]]]) -> None:
        for name, payloads in results:
            source = name.split("#", 1)[0]
            self.metrics.sink_lines += self._sink.write(source, payloads)
            for payload in payloads:
                self.metrics.observe_payload(payload)

    # -- the loop ----------------------------------------------------

    def run(self) -> int:
        config = self.config
        out = Path(config.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        journal = BatchJournal(out / "journal.jsonl", stream=True,
                               resume=True)
        self._sink = JsonlSink(out / "results")
        self._scheduler = FlowScheduler(
            config.workers, journal=journal, timeout=config.timeout,
            retries=config.retries, fault_plan=config.fault_plan)
        watcher = SpoolWatcher(config.spool) \
            if config.spool is not None else None
        for path in config.captures:
            self._add_source(Path(path))
        httpd = None
        if config.http_port is not None:
            from repro.serve.httpd import StatsServer
            httpd = StatsServer(self.metrics.to_dict, lambda: self.ready,
                                port=config.http_port)
            httpd.start()
            # Ephemeral ports (--http 0) are useless unless announced.
            (out / "http.port").write_text(f"{httpd.port}\n")
        try:
            self._loop(watcher)
            # Graceful end, either shape: every already-retired flow
            # is finished, journaled, and sunk before we return.
            if not self._stop.is_set():
                # Idle exit: sources are complete, apply EOF semantics.
                for tailer in self._tailers:
                    self._submit(tailer.source, tailer.finalize())
            self._route(self._scheduler.drain())
            self._refresh_gauges()
            return 0
        finally:
            self.ready = False
            self._scheduler.close(graceful=True)
            journal.close()
            self._sink.close()
            if httpd is not None:
                httpd.stop()

    def _loop(self, watcher: SpoolWatcher | None) -> None:
        config = self.config
        last_activity = time.monotonic()
        while not self._stop.is_set():
            activity = 0
            if watcher is not None:
                for path in watcher.scan():
                    self._add_source(path)
                    activity += 1
            if not self.paused:
                for tailer in list(self._tailers):
                    if tailer.failed is not None:
                        continue
                    consumed_before = tailer.records_consumed
                    flows = tailer.poll()
                    activity += tailer.records_consumed - consumed_before
                    self.metrics.records_ingested += \
                        tailer.records_consumed - consumed_before
                    if flows:
                        self._submit(tailer.source, flows)
                    if tailer.failed is not None:
                        self._quarantine_source(tailer)
            depth = self._scheduler.queue_depth
            if not self.paused and depth >= config.high_water:
                self.paused = True
                self.metrics.pause_events += 1
            elif self.paused and depth <= config.low_water:
                self.paused = False
            results = self._scheduler.poll(timeout=config.poll_interval)
            if results:
                activity += len(results)
                self._route(results)
            self._refresh_gauges()
            self.ready = True
            now = time.monotonic()
            busy = activity > 0 or self._scheduler.outstanding > 0 \
                or any(t.ingest_lag > 0 for t in self._tailers
                       if t.failed is None and not t.finished)
            if busy:
                last_activity = now
            elif config.exit_when_idle \
                    and now - last_activity >= config.quiet_seconds:
                return
            if not busy and not results:
                # Nothing in flight: sleep on the stop event so a
                # signal wakes the loop instead of waiting out a tick.
                self._stop.wait(config.poll_interval)

    def _refresh_gauges(self) -> None:
        metrics = self.metrics
        active = [t for t in self._tailers
                  if t.failed is None and not t.finished]
        metrics.ingest_lag_bytes = sum(t.ingest_lag for t in active)
        metrics.flow_table_occupancy = sum(t.live_flows for t in active)
        metrics.queue_depth = self._scheduler.queue_depth
        metrics.inflight = self._scheduler.inflight
        metrics.worker_restarts = self._scheduler.worker_restarts
        metrics.sources = len(self._tailers)
        metrics.paused = self.paused
