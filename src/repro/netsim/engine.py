"""The discrete-event engine.

A single :class:`Engine` drives a simulation: callbacks are scheduled at
absolute times and executed in time order, with a monotonically
increasing tie-break counter so same-time events run in scheduling
order.  This determinism matters: regression tests compare entire
traces, and the analyzer's cause-and-effect reasoning assumes a stable
event order for identical inputs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Timer:
    """A handle to a scheduled event, supporting cancellation.

    Cancellation is lazy: the heap entry stays put and is skipped when
    popped.  ``Timer`` objects are returned by :meth:`Engine.schedule`
    and by the convenience timer methods on protocol objects.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], Any]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already run)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class Engine:
    """Event loop: schedule callbacks at absolute simulated times."""

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Timer]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_run

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Timer:
        """Run *callback* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Timer:
        """Run *callback* at absolute simulated time *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        timer = Timer(time, callback)
        heapq.heappush(self._queue, (time, next(self._counter), timer))
        return timer

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Execute events until the queue drains or a bound is reached.

        ``until`` stops the clock at the given simulated time (events at
        exactly that time still run); ``max_events`` guards against
        runaway simulations in tests.
        """
        remaining = max_events
        while self._queue:
            time, _, timer = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self._now = time
            self._events_run += 1
            timer.callback()
            if remaining is not None:
                remaining -= 1
                if remaining <= 0:
                    return
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, t in self._queue if not t.cancelled)
