"""Discrete-event network simulator substrate.

This package provides the simulated testbed on which the TCP
implementations under study run: an event engine (:mod:`engine`),
links with bandwidth/propagation/queueing (:mod:`link`), hosts and
routers (:mod:`node`), and topology builders (:mod:`network`).
"""

from repro.netsim.engine import Engine, Timer
from repro.netsim.link import Link, LossModel, RandomLoss, DeterministicLoss, NoLoss
from repro.netsim.node import Host, Router
from repro.netsim.network import Path, build_path
from repro.netsim.crosstraffic import CrossTrafficSource

__all__ = [
    "Engine",
    "Timer",
    "CrossTrafficSource",
    "Link",
    "LossModel",
    "RandomLoss",
    "DeterministicLoss",
    "NoLoss",
    "Host",
    "Router",
    "Path",
    "build_path",
]
