"""Topology builders.

The paper's transfers all run over a single Internet path between two
hosts.  :func:`build_path` assembles the canonical topology used by
the scenarios and benchmarks:

    sender host -- access link --> router -- bottleneck link --> receiver
                <-- (reverse links with the same parameters) --

Loss models attach to the forward bottleneck (data direction) and,
optionally, the reverse bottleneck (ack direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.engine import Engine
from repro.netsim.link import Link, LossModel
from repro.netsim.node import Host, Router
from repro.units import mbit


@dataclass
class Path:
    """A built end-to-end path and its components."""

    engine: Engine
    sender: Host
    receiver: Host
    router: Router
    forward_access: Link
    forward_bottleneck: Link
    reverse_bottleneck: Link
    reverse_access: Link

    @property
    def rtt(self) -> float:
        """Minimum round-trip propagation delay of the path."""
        return (self.forward_access.delay + self.forward_bottleneck.delay
                + self.reverse_bottleneck.delay + self.reverse_access.delay)


def build_path(engine: Engine,
               sender_addr: str = "sender",
               receiver_addr: str = "receiver",
               access_bandwidth: float = mbit(10.0),
               access_delay: float = 0.0005,
               bottleneck_bandwidth: float = mbit(1.0),
               bottleneck_delay: float = 0.020,
               queue_limit: int = 64,
               forward_loss: LossModel | None = None,
               reverse_loss: LossModel | None = None,
               reverse_bottleneck_bandwidth: float | None = None,
               reverse_bottleneck_delay: float | None = None,
               quench_threshold: int | None = None) -> Path:
    """Build the canonical two-host, one-router path.

    ``bottleneck_delay`` is one-way; with a symmetric path the minimum
    RTT is ``2 * (access_delay + bottleneck_delay)``.  The reverse
    bottleneck defaults to the forward one's parameters; overriding it
    models asymmetric paths (e.g. ADSL-style thin upstream), where the
    ack channel itself congests.
    """
    if reverse_bottleneck_bandwidth is None:
        reverse_bottleneck_bandwidth = bottleneck_bandwidth
    if reverse_bottleneck_delay is None:
        reverse_bottleneck_delay = bottleneck_delay
    sender = Host(engine, sender_addr)
    receiver = Host(engine, receiver_addr)
    router = Router(engine, quench_threshold=quench_threshold)
    if quench_threshold is not None:
        router.quench_target = sender

    forward_access = Link(engine, access_bandwidth, access_delay,
                          queue_limit=queue_limit, name="fwd-access")
    forward_bottleneck = Link(engine, bottleneck_bandwidth, bottleneck_delay,
                              queue_limit=queue_limit, loss=forward_loss,
                              name="fwd-bottleneck")
    reverse_bottleneck = Link(engine, reverse_bottleneck_bandwidth,
                              reverse_bottleneck_delay,
                              queue_limit=queue_limit, loss=reverse_loss,
                              name="rev-bottleneck")
    reverse_access = Link(engine, access_bandwidth, access_delay,
                          queue_limit=queue_limit, name="rev-access")

    sender.add_route(receiver_addr, forward_access)
    router.attach_inbound(forward_access)
    router.add_route(receiver_addr, forward_bottleneck)
    receiver.attach_inbound(forward_bottleneck)

    receiver.add_route(sender_addr, reverse_bottleneck)
    router.attach_inbound(reverse_bottleneck)
    router.add_route(sender_addr, reverse_access)
    sender.attach_inbound(reverse_access)

    return Path(engine=engine, sender=sender, receiver=receiver,
                router=router, forward_access=forward_access,
                forward_bottleneck=forward_bottleneck,
                reverse_bottleneck=reverse_bottleneck,
                reverse_access=reverse_access)
