"""Links: bandwidth, propagation delay, drop-tail queueing, and loss.

A :class:`Link` is unidirectional.  Transmission is serialized — a
packet occupies the transmitter for ``wire_size / bandwidth`` seconds —
and a finite drop-tail queue holds packets waiting for the transmitter.
Loss models can additionally discard or corrupt packets, standing in
for the congested Internet paths of the paper's testbed.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Iterable

from repro.netsim.engine import Engine
from repro.packets import Segment


class LossModel:
    """Decides the fate of each packet entering a link.

    Subclasses override :meth:`fate`, returning one of ``"deliver"``,
    ``"drop"``, or ``"corrupt"``.
    """

    def fate(self, segment: Segment) -> str:
        raise NotImplementedError


class NoLoss(LossModel):
    """Delivers everything intact."""

    def fate(self, segment: Segment) -> str:
        return "deliver"


class RandomLoss(LossModel):
    """Independent (Bernoulli) loss and corruption with given rates."""

    def __init__(self, drop_rate: float = 0.0, corrupt_rate: float = 0.0,
                 seed: int = 0):
        if not 0.0 <= drop_rate <= 1.0 or not 0.0 <= corrupt_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        self.drop_rate = drop_rate
        self.corrupt_rate = corrupt_rate
        self._rng = random.Random(seed)

    def fate(self, segment: Segment) -> str:
        r = self._rng.random()
        if r < self.drop_rate:
            return "drop"
        if r < self.drop_rate + self.corrupt_rate:
            return "corrupt"
        return "deliver"


class DeterministicLoss(LossModel):
    """Drops or corrupts exactly the packets a test asks for.

    ``drop_nth`` / ``corrupt_nth`` name 1-based positions in the link's
    packet arrival order; ``predicate`` may additionally select packets
    by content (e.g. "the data segment starting at seq 8193").
    """

    def __init__(self, drop_nth: Iterable[int] = (),
                 corrupt_nth: Iterable[int] = (),
                 predicate: Callable[[Segment], str] | None = None):
        self.drop_nth = set(drop_nth)
        self.corrupt_nth = set(corrupt_nth)
        self.predicate = predicate
        self._count = 0

    def fate(self, segment: Segment) -> str:
        self._count += 1
        if self._count in self.drop_nth:
            return "drop"
        if self._count in self.corrupt_nth:
            return "corrupt"
        if self.predicate is not None:
            return self.predicate(segment)
        return "deliver"


class Link:
    """A unidirectional link with bandwidth, delay, and a drop-tail queue.

    ``deliver`` is called at the far end's arrival wire time.  ``taps``
    are packet filters observing this link (see
    :mod:`repro.capture.filter`); they see packets at the moment the
    packet begins transmission, i.e. at departure wire time.
    """

    def __init__(self, engine: Engine, bandwidth: float, delay: float,
                 queue_limit: int = 64, loss: LossModel | None = None,
                 name: str = "link"):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if queue_limit < 1:
            raise ValueError("queue must hold at least one packet")
        self.engine = engine
        self.bandwidth = bandwidth
        self.delay = delay
        self.queue_limit = queue_limit
        self.loss = loss or NoLoss()
        self.name = name
        self.deliver: Callable[[Segment], None] | None = None
        self.departure_taps: list[Callable[[Segment, float], None]] = []
        self._queue: deque[Segment] = deque()
        self._busy = False
        # Statistics a scenario or test can inspect afterwards.
        self.stats_offered = 0
        self.stats_delivered = 0
        self.stats_queue_drops = 0
        self.stats_loss_drops = 0
        self.stats_corrupted = 0

    def send(self, segment: Segment) -> None:
        """Offer a packet to the link (from the upstream node)."""
        self.stats_offered += 1
        fate = self.loss.fate(segment)
        if fate == "drop":
            self.stats_loss_drops += 1
            return
        if fate == "corrupt":
            self.stats_corrupted += 1
            segment.corrupted = True
        if len(self._queue) >= self.queue_limit:
            self.stats_queue_drops += 1
            return
        self._queue.append(segment)
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        segment = self._queue.popleft()
        for tap in self.departure_taps:
            tap(segment, self.engine.now)
        transmit_time = segment.wire_size / self.bandwidth
        self.engine.schedule(transmit_time, self._transmit_next)
        self.engine.schedule(transmit_time + self.delay,
                             lambda s=segment: self._arrive(s))

    def _arrive(self, segment: Segment) -> None:
        self.stats_delivered += 1
        if self.deliver is not None:
            self.deliver(segment)

    @property
    def queue_length(self) -> int:
        """Packets currently waiting (not counting the one transmitting)."""
        return len(self._queue)
