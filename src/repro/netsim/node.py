"""Hosts and routers.

A :class:`Host` terminates TCP connections: it owns a routing table of
outbound links, demultiplexes arriving segments to registered
connections, and exposes taps for packet filters running *on the host
itself* (the common measurement configuration in the paper).

A :class:`Router` forwards packets between links and can be configured
to emit ICMP source quench messages when its outbound queue grows —
the mechanism behind the paper's "unseen source quench" inference
(§6.2): the quench reaches the TCP but never appears in a TCP-only
packet trace.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.packets import FlowKey, Segment, SourceQuench


class SegmentSink(Protocol):
    """Anything that can accept a delivered segment (a TCP connection)."""

    def receive(self, segment: Segment) -> None: ...

    def receive_quench(self, quench: SourceQuench) -> None: ...


class Host:
    """An end host: address, outbound routes, and connection demux."""

    def __init__(self, engine: Engine, addr: str):
        self.engine = engine
        self.addr = addr
        self.routes: dict[str, Link] = {}
        self.default_route: Link | None = None
        self._connections: dict[FlowKey, SegmentSink] = {}
        #: Filters tapping this host's outbound packets (kernel-level view).
        self.send_taps: list[Callable[[Segment, float], None]] = []
        #: Filters tapping this host's inbound packets.
        self.recv_taps: list[Callable[[Segment, float], None]] = []

    def add_route(self, dst_addr: str, link: Link) -> None:
        """Route packets destined for *dst_addr* out *link*."""
        self.routes[dst_addr] = link

    def attach_inbound(self, link: Link) -> None:
        """Make *link* deliver its packets to this host."""
        link.deliver = self.deliver

    def register(self, flow: FlowKey, connection: SegmentSink) -> None:
        """Demultiplex segments arriving for *flow* to *connection*."""
        if flow in self._connections:
            raise ValueError(f"flow already registered: {flow}")
        self._connections[flow] = connection

    def unregister(self, flow: FlowKey) -> None:
        self._connections.pop(flow, None)

    def send(self, segment: Segment) -> None:
        """Transmit a segment originated by this host."""
        if segment.src.addr != self.addr:
            raise ValueError(
                f"host {self.addr} asked to send packet from {segment.src.addr}"
            )
        for tap in self.send_taps:
            tap(segment, self.engine.now)
        link = self.routes.get(segment.dst.addr, self.default_route)
        if link is None:
            raise ValueError(f"no route from {self.addr} to {segment.dst.addr}")
        link.send(segment)

    def deliver(self, segment: Segment) -> None:
        """Handle a segment arriving from the network."""
        for tap in self.recv_taps:
            tap(segment, self.engine.now)
        # A corrupted packet fails its checksum in the kernel and is
        # discarded before reaching TCP — but *after* the packet filter
        # has seen it, matching the paper's corruption-inference setup.
        if segment.corrupted:
            return
        key = FlowKey(segment.dst, segment.src)
        connection = self._connections.get(key)
        if connection is not None:
            connection.receive(segment)

    def deliver_quench(self, quench: SourceQuench) -> None:
        """Deliver an ICMP source quench to the owning connection.

        Deliberately *not* passed through the packet taps: the paper's
        filters matched TCP packets only, so quenches are invisible in
        traces.
        """
        connection = self._connections.get(quench.flow)
        if connection is not None:
            connection.receive_quench(quench)


class Router:
    """A store-and-forward router joining two or more links.

    When ``quench_host`` is set and the outbound queue length crosses
    ``quench_threshold``, the router sends that host one source quench
    per crossing (hysteresis: re-armed once the queue drains below the
    threshold), loosely modelling the deprecated ICMP behaviour the
    paper's TCPs still had to cope with.
    """

    def __init__(self, engine: Engine, name: str = "router",
                 quench_threshold: int | None = None):
        self.engine = engine
        self.name = name
        self.routes: dict[str, Link] = {}
        self.quench_threshold = quench_threshold
        self.quench_target: Host | None = None
        self._quench_armed = True
        self.stats_forwarded = 0
        self.stats_quenches = 0

    def add_route(self, dst_addr: str, link: Link) -> None:
        self.routes[dst_addr] = link

    def attach_inbound(self, link: Link) -> None:
        link.deliver = self.forward

    def forward(self, segment: Segment) -> None:
        link = self.routes.get(segment.dst.addr)
        if link is None:
            return  # no route: silently discard, as a real router would ICMP
        self.stats_forwarded += 1
        link.send(segment)
        self._maybe_quench(segment, link)

    def _maybe_quench(self, segment: Segment, link: Link) -> None:
        if self.quench_threshold is None or self.quench_target is None:
            return
        if link.queue_length >= self.quench_threshold:
            if self._quench_armed and segment.payload > 0:
                self._quench_armed = False
                self.stats_quenches += 1
                quench = SourceQuench(
                    target=segment.src,
                    flow=FlowKey(segment.src, segment.dst),
                )
                # Quench travels back through the network; model the
                # return latency as the forward link's propagation delay.
                self.engine.schedule(
                    link.delay,
                    lambda q=quench: self.quench_target.deliver_quench(q),
                )
        elif link.queue_length == 0:
            self._quench_armed = True
