"""Competing cross-traffic sources.

The paper's transfers crossed the real Internet, sharing every queue
with other flows; queueing from competing traffic is what makes
timestamps noisy and loss bursty.  :class:`CrossTrafficSource` injects
constant-bit-rate (optionally on/off modulated) traffic into a link,
addressed to a throwaway destination, so measurement and analysis can
be validated under contention rather than on a silent path.
"""

from __future__ import annotations

from repro.netsim.engine import Engine, Timer
from repro.netsim.link import Link
from repro.packets import ACK, Endpoint, Segment


class CrossTrafficSource:
    """Injects background packets into a link at a configured rate.

    ``rate`` is the offered load in bytes/second of wire occupancy.
    With ``on_time``/``off_time`` the source alternates bursts and
    silences (keeping the configured rate during bursts), which is
    what produces the queue oscillations — and hence timing noise —
    that real paths show.
    """

    def __init__(self, engine: Engine, link: Link, rate: float,
                 packet_size: int = 512,
                 on_time: float | None = None,
                 off_time: float | None = None,
                 src_addr: str = "crosstalk",
                 dst_addr: str = "elsewhere"):
        if rate <= 0:
            raise ValueError("cross-traffic rate must be positive")
        if packet_size <= 40:
            raise ValueError("packet size must exceed the header size")
        self.engine = engine
        self.link = link
        self.rate = rate
        self.packet_size = packet_size
        self.on_time = on_time
        self.off_time = off_time
        self.src = Endpoint(src_addr, 7)
        self.dst = Endpoint(dst_addr, 7)
        self.packets_sent = 0
        self._on = True
        self._timer: Timer | None = None
        self._interval = packet_size / rate

    def start(self, at: float = 0.0) -> None:
        """Begin injecting at absolute time *at*."""
        self._timer = self.engine.schedule_at(at, self._tick)
        if self.on_time is not None and self.off_time is not None:
            self.engine.schedule_at(at + self.on_time, self._toggle)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _toggle(self) -> None:
        self._on = not self._on
        next_period = self.on_time if self._on else self.off_time
        self.engine.schedule(next_period, self._toggle)

    def _tick(self) -> None:
        if self._on:
            segment = Segment(src=self.src, dst=self.dst, seq=0, ack=0,
                              flags=ACK, payload=self.packet_size - 40)
            self.link.send(segment)
            self.packets_sent += 1
        self._timer = self.engine.schedule(self._interval, self._tick)
