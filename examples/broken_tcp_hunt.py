"""Hunting broken TCPs: the paper's §8 workload, end to end.

Run:  python examples/broken_tcp_hunt.py

The paper's motivating scenario: you operate a busy path and suspect
some of the TCPs using it are misbehaving.  This example:

1. simulates a mixed population of senders (some healthy, some the
   paper's problem children) transferring over shared path types;
2. identifies each sender from its packet trace alone;
3. ranks the population by the *needless load* it imposes — the
   congestion-collapse arithmetic behind the paper's warning that a
   ubiquitous Linux 1.0 "would bring the Internet to its knees".
"""

from repro.core import identify_implementation
from repro.harness import traced_transfer
from repro.tcp import get_behavior
from repro.units import kbyte

POPULATION = [
    ("alpha", "reno"),
    ("bravo", "linux-1.0"),
    ("charlie", "sunos-4.1.3"),
    ("delta", "solaris-2.4"),
    ("echo", "trumpet-2.0b"),
    ("foxtrot", "linux-2.0.30"),
]


def main() -> None:
    print(f"{'host':10s} {'identified as':18s} {'category':10s} "
          f"{'rexmit load':>12s} {'needless?':>10s}")
    findings = []
    for host, truth in POPULATION:
        # Lossy path stresses retransmission; high-RTT stresses timers.
        lossy = traced_transfer(get_behavior(truth), "wan-lossy",
                                data_size=kbyte(100), seed=2)
        high_rtt = traced_transfer(get_behavior(truth), "transatlantic",
                                   data_size=kbyte(50))

        report = identify_implementation(lossy.sender_trace)
        best = report.best

        sender = lossy.result.sender
        rexmit_fraction = sender.stats_retransmissions / max(
            sender.stats_data_packets, 1)
        # On the loss-free high-RTT path, every retransmission is
        # needless by construction.
        needless = high_rtt.result.sender.stats_retransmissions

        findings.append((host, truth, best, rexmit_fraction, needless))
        print(f"{host:10s} {best.implementation:18s} {best.category:10s} "
              f"{rexmit_fraction:12.1%} {needless:10d}")

    print()
    worst = max(findings, key=lambda f: f[3])
    print(f"worst retransmission offender: {worst[0]} "
          f"(identified {worst[2].implementation}; truly {worst[1]})")
    timer_broken = [f for f in findings if f[4] > 10]
    for host, truth, best, _, needless in timer_broken:
        print(f"{host}: {needless} retransmissions on a LOSS-FREE path — "
              f"a broken retransmission timer ({best.implementation})")

    print("\nthe paper's verdict: the most problematic TCPs were all "
          "independently written; correct TCP implementation is fraught "
          "with difficulty.")


if __name__ == "__main__":
    main()
