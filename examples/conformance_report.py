"""A conformance report card for a TCP implementation.

Run:  python examples/conformance_report.py [implementation]

The paper's closing argument (§11) is that the Internet community
needs testing programs for TCP implementations.  This example is a
small such program built on the library: given an implementation, it
runs a battery of provocations (loss, high RTT, slow links, source
quench) and grades sender and receiver behavior against the standards
and best practice, citing the paper's findings.
"""

import sys

from repro.core import analyze_receiver, analyze_sender
from repro.harness import traced_transfer
from repro.tcp import get_behavior
from repro.units import kbyte


def grade(condition: bool) -> str:
    return "PASS" if condition else "FAIL"


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "solaris-2.3"
    behavior = get_behavior(label)
    print(f"TCP conformance report: {label}")
    print("=" * 60)

    # -- retransmission discipline under genuine loss ----------------------
    lossy = traced_transfer(behavior, "wan-lossy", data_size=kbyte(100),
                            seed=2)
    sender = lossy.result.sender
    rexmit_fraction = sender.stats_retransmissions / max(
        sender.stats_data_packets, 1)
    print(f"[{grade(rexmit_fraction < 0.2)}] retransmission restraint "
          f"under 3% loss: {rexmit_fraction:.1%} of packets were "
          f"retransmissions (expect < 20%)")

    # -- timer sanity at high RTT (the §8.6 check) --------------------------
    high_rtt = traced_transfer(behavior, "transatlantic",
                               data_size=kbyte(50))
    needless = high_rtt.result.sender.stats_retransmissions
    print(f"[{grade(needless == 0)}] retransmission timer adapts to a "
          f"680 ms RTT: {needless} needless retransmissions on a "
          f"loss-free path (expect 0)")

    # -- congestion response to source quench ------------------------------
    quenched = traced_transfer(behavior, "wan", data_size=kbyte(100),
                               quench_threshold=4)
    saw = quenched.result.sender.stats_quenches_seen
    print(f"[{grade(quenched.result.completed)}] survives ICMP source "
          f"quench ({saw} received)")

    # -- receiver acking policy (§9.1) --------------------------------------
    receiver_analysis = analyze_receiver(lossy.receiver_trace, behavior)
    counts = receiver_analysis.counts_by_kind()
    data_acks = sum(counts.get(k, 0)
                    for k in ("delayed", "normal", "stretch"))
    ack_ratio = receiver_analysis.ack_count / max(
        lossy.result.sender.stats_data_packets, 1)
    print(f"[{grade(ack_ratio < 0.9)}] ack economy: "
          f"{ack_ratio:.2f} acks per data packet "
          f"(every-packet acking wastes the return path)")
    ceiling = len(receiver_analysis.delay_ceiling_violations)
    print(f"[{grade(ceiling == 0)}] RFC 1122 500 ms ack ceiling: "
          f"{ceiling} violations")
    print(f"[{grade(not receiver_analysis.gratuitous)}] no gratuitous "
          f"acks: {len(receiver_analysis.gratuitous)} observed")

    # -- self-consistency: does the trace match the claimed behavior? -------
    analysis = analyze_sender(lossy.sender_trace, behavior)
    print(f"[{grade(analysis.violation_count == 0)}] behavior model "
          f"consistency: {analysis.violation_count} window violations")

    print("=" * 60)
    print("compare: python examples/conformance_report.py reno")
    print("         python examples/conformance_report.py linux-1.0")


if __name__ == "__main__":
    main()
