"""Quickstart: simulate a transfer, capture it, analyze it.

Run:  python examples/quickstart.py

This walks the library's core loop in five steps:
1. pick a TCP implementation from the catalog;
2. run a bulk transfer over a simulated Internet path, with packet
   filters at both endpoints;
3. render the sender-side trace tcpdump-style;
4. calibrate the trace (measurement-error checks) and analyze the
   sender's behavior against its own implementation model;
5. ask tcpanaly to *identify* the implementation from the trace alone.
"""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.core import analyze_sender, calibrate_trace, identify_implementation
from repro.harness import traced_transfer
from repro.tcp import get_behavior, implementation_names
from repro.trace.text import render_trace
from repro.units import kbyte


def main() -> None:
    print("known implementations:", ", ".join(implementation_names()))
    behavior = get_behavior("solaris-2.4")

    # A 100 KB transfer over a lossy cross-country path, filters at
    # both ends (the paper's measurement unit).
    transfer = traced_transfer(behavior, "wan-lossy",
                               data_size=kbyte(100), seed=1)
    result = transfer.result
    print(f"\ntransfer: {'completed' if result.completed else 'FAILED'} "
          f"in {result.duration:.2f}s, "
          f"{result.sender.stats_data_packets} data packets "
          f"({result.sender.stats_retransmissions} retransmissions), "
          f"{result.throughput / 1024:.1f} KB/s")

    trace = transfer.sender_trace
    print("\nfirst packets of the sender-side trace:")
    print("\n".join(render_trace(trace).splitlines()[:10]))

    print("\ntime-sequence plot:")
    print(render_ascii_plot(sequence_plot(trace), width=70, height=14))

    # Step 1 of any tcpanaly run: can the measurement be trusted?
    calibration = calibrate_trace(trace, behavior,
                                  peer_trace=transfer.receiver_trace)
    print(f"\ncalibration: {calibration.summary()}")

    # Step 2: explain every packet the sender transmitted.
    analysis = analyze_sender(trace, behavior)
    print(f"sender analysis: {analysis.summary()}")

    # Step 3: blind identification — which implementation is this?
    report = identify_implementation(trace)
    print("\nidentification (top 5):")
    for fit in report.fits[:5]:
        if fit.analysis is None:
            continue
        print(f"  {fit.implementation:16s} {fit.category:10s} "
              f"violations={fit.analysis.violation_count:3d} "
              f"mean delay={fit.analysis.mean_response_delay * 1e3:6.2f} ms")
    print(f"\nbest fit: {report.best.implementation} "
          f"({report.best.category})")


if __name__ == "__main__":
    main()
