"""Active probing + automated analysis: the paper's §2 combination.

Run:  python examples/active_probing.py

The paper reviews two prior methodologies — Comer & Lin's active
probing and Dawson et al.'s fault injection — and notes that passive
trace analysis (tcpanaly) and active techniques compose: control the
stimuli a TCP sees, then analyze the trace of its response
automatically.

This example does both probes the library ships:

1. the black-hole probe (a [CL94]/[DJM97]-style timer study): drop
   everything and read the retransmission schedule off the trace;
2. the small-hole-fill probe, which separates Solaris 2.3 from 2.4 —
   two stacks whose *sender* behavior is identical (§8.6).
"""

from dataclasses import replace

from repro.capture.filter import PacketFilter, attach_at_host
from repro.core.fit import identify_receiver
from repro.harness.probing import probe_hole_fill
from repro.netsim.engine import Engine
from repro.netsim.link import DeterministicLoss
from repro.netsim.network import build_path
from repro.tcp import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte


def timer_probe(label: str) -> list[float]:
    """Black-hole the data path; return the first data segment's
    retransmission schedule (gaps in seconds)."""
    engine = Engine()
    path = build_path(engine, forward_loss=DeterministicLoss(
        predicate=lambda s: "drop" if s.payload > 0 else "deliver"))
    packet_filter = PacketFilter(vantage="sender")
    attach_at_host(path.sender, packet_filter)
    behavior = replace(get_behavior(label), max_data_retries=5)
    run_bulk_transfer(behavior, data_size=kbyte(10), path=path,
                      max_duration=600)
    trace = packet_filter.trace()
    flow = trace.primary_flow()
    times = [r.timestamp for r in trace
             if r.flow == flow and r.payload > 0
             and r.seq == trace.records[0].seq + 1]
    return [b - a for a, b in zip(times, times[1:])]


def main() -> None:
    print("probe 1: black-hole timer study ([CL94]/[DJM97] style)")
    print(f"{'implementation':14s}  retransmission schedule (s)")
    for label in ("reno", "solaris-2.4", "linux-1.0", "trumpet-2.0b"):
        gaps = timer_probe(label)
        schedule = ", ".join(f"{g:.2f}" for g in gaps[:5])
        print(f"{label:14s}  {schedule}")
    print("  -> Solaris's ~0.3 s initial timer (§8.6) and Trumpet's "
          "barely-backing-off timer stand out.\n")

    print("probe 2: small hole fill (splits Solaris 2.3 from 2.4)")
    for truth in ("solaris-2.3", "solaris-2.4"):
        trace = probe_hole_fill(get_behavior(truth))
        fits = identify_receiver(
            trace, {label: get_behavior(label)
                    for label in ("solaris-2.3", "solaris-2.4")})
        verdict = ", ".join(f"{f.implementation}:{f.category}"
                            for f in fits)
        print(f"  true {truth} -> {verdict}")
    print("  -> the one behavior separating 2.3 from 2.4 is its "
          "receiver acking bug; only a targeted stimulus reveals it.")


if __name__ == "__main__":
    main()
