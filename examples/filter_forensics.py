"""Packet-filter forensics: is the measurement itself lying?

Run:  python examples/filter_forensics.py

Section 3 of the paper is a catalog of ways packet filters deceive:
dropped records (with untrustworthy drop reports), duplicated records
(IRIX), resequenced records (Solaris), and clock defects (skew, step
adjustments, time travel).  This example runs the same connection
through four defective filters plus one honest one, and shows the
calibration battery diagnosing each.
"""

from repro.capture import (
    DropInjector,
    DuplicationInjector,
    PacketFilter,
    ResequencingInjector,
    SteppingClock,
)
from repro.core import calibrate_trace
from repro.harness import traced_transfer
from repro.tcp import get_behavior
from repro.units import kbyte

FILTERS = {
    "honest": {},
    "overloaded (drops, lies about them)": {
        "drops": DropInjector(rate=0.05, seed=9, report_style="zero")},
    "irix-5.2 (duplicates outbound)": {
        "duplication": DuplicationInjector()},
    "solaris (resequences)": {
        "resequencing": ResequencingInjector(seed=4)},
    "bsdi-1.1 clock (fast, yanked back)": {
        "clock": SteppingClock(rate=1.005,
                               steps=[(0.5, -0.1), (1.0, -0.1)])},
}


def main() -> None:
    behavior = get_behavior("reno")
    for name, kwargs in FILTERS.items():
        packet_filter = PacketFilter(name=name, vantage="sender", **kwargs)
        transfer = traced_transfer(behavior, "wan", data_size=kbyte(60),
                                   sender_filter=packet_filter)
        report = calibrate_trace(transfer.sender_trace, behavior,
                                 peer_trace=transfer.receiver_trace)
        print(f"--- filter: {name}")
        print(f"    {report.summary()}")
        verdict = "trustworthy" if report.clean else "DO NOT TRUST"
        print(f"    verdict: {verdict}")
        if report.duplicates:
            print(f"    remedy: discard {len(report.duplicates)} later "
                  f"copies and re-analyze")
        if report.resequencing:
            print("    remedy: recorded ordering unreliable; rely on "
                  "liberation analysis, not raw sequence")
        if report.time_travel:
            magnitudes = [f"{e.magnitude * 1e3:.0f}ms"
                          for e in report.time_travel]
            print(f"    clock stepped backwards by {', '.join(magnitudes)}")
        print()


if __name__ == "__main__":
    main()
