"""Flow-table lifecycle: birth, retirement, eviction, bounded memory."""

import pytest

from repro.packets import ACK, FIN, RST, SYN, Endpoint
from repro.stream import ConnectionKey, FlowTable, IngestStats
from repro.stream.flowtable import demux_records
from repro.trace.record import TraceRecord

SERVER = Endpoint("server", 80)


def client(i: int) -> Endpoint:
    return Endpoint("client", 40000 + i)


def rec(t: float, src: Endpoint, dst: Endpoint, flags: int = ACK,
        seq: int = 0, ack: int = 0, payload: int = 0) -> TraceRecord:
    return TraceRecord(timestamp=t, src=src, dst=dst, seq=seq, ack=ack,
                       flags=flags, payload=payload, window=65535)


def handshake(t: float, a: Endpoint, b: Endpoint) -> list[TraceRecord]:
    return [rec(t, a, b, flags=SYN),
            rec(t + 0.01, b, a, flags=SYN | ACK, ack=1),
            rec(t + 0.02, a, b, flags=ACK, seq=1, ack=1)]


def teardown(t: float, a: Endpoint, b: Endpoint,
             seq: int = 1) -> list[TraceRecord]:
    return [rec(t, a, b, flags=FIN | ACK, seq=seq, ack=1),
            rec(t + 0.01, b, a, flags=FIN | ACK, seq=1, ack=seq + 1),
            rec(t + 0.02, a, b, flags=ACK, seq=seq + 1, ack=2)]


class TestConnectionKey:
    def test_both_directions_share_a_key(self):
        a, b = client(0), SERVER
        assert ConnectionKey.of(a, b) == ConnectionKey.of(b, a)

    def test_distinct_ports_distinct_keys(self):
        assert ConnectionKey.of(client(0), SERVER) \
            != ConnectionKey.of(client(1), SERVER)


class TestLifecycle:
    def test_fin_handshake_retires_after_time_wait(self):
        stats = IngestStats()
        table = FlowTable(time_wait=2.0, stats=stats)
        a = client(0)
        for record in handshake(0.0, a, SERVER) + teardown(1.0, a, SERVER):
            assert table.add(record) == []
        # A later packet on another connection advances the clock past
        # the time-wait and flushes the closed flow.
        completed = table.add(rec(10.0, client(1), SERVER, flags=SYN))
        assert len(completed) == 1
        flow, = completed
        assert flow.close_reason == "fin"
        assert flow.saw_syn
        assert len(flow.records) == 6
        assert stats.retired_by_reason == {"fin": 1}

    def test_rst_retires_after_time_wait(self):
        table = FlowTable(time_wait=0.5)
        a = client(0)
        for record in handshake(0.0, a, SERVER):
            table.add(record)
        table.add(rec(1.0, SERVER, a, flags=RST | ACK, ack=1))
        completed = table.add(rec(5.0, client(1), SERVER, flags=SYN))
        assert [f.close_reason for f in completed] == ["rst"]

    def test_idle_timeout_retires(self):
        stats = IngestStats()
        table = FlowTable(idle_timeout=10.0, stats=stats)
        for record in handshake(0.0, client(0), SERVER):
            table.add(record)
        completed = table.add(rec(100.0, client(1), SERVER, flags=SYN))
        assert [f.close_reason for f in completed] == ["idle"]
        assert stats.retired_by_reason == {"idle": 1}

    def test_drain_emits_remaining_in_birth_order(self):
        table = FlowTable()
        for i in (2, 0, 1):
            table.add(rec(float(i), client(i), SERVER, flags=SYN))
        flows = table.drain()
        assert [f.records[0].src for f in flows] \
            == [client(2), client(0), client(1)]
        assert all(f.close_reason == "eof" for f in flows)

    def test_port_reuse_starts_a_new_flow(self):
        table = FlowTable(time_wait=60.0)
        a = client(0)
        for record in handshake(0.0, a, SERVER) + teardown(1.0, a, SERVER):
            table.add(record)
        # Same 4-tuple, fresh SYN, well inside the time-wait window.
        completed = table.add(rec(2.0, a, SERVER, flags=SYN))
        assert [f.close_reason for f in completed] == ["fin"]
        flows = table.drain()
        assert len(flows) == 1
        assert len(flows[0].records) == 1


class TestRetirementCallback:
    """``on_retire`` fires once per retired flow, whatever the path —
    the hook the serve daemon's rolling aggregates hang off."""

    def test_fires_on_teardown_retirement(self):
        retired = []
        table = FlowTable(on_retire=retired.append)
        a = client(0)
        for record in handshake(0.0, a, SERVER) + teardown(1.0, a, SERVER):
            table.add(record)
        # A later record pushes the closed flow past time-wait.
        b = client(1)
        table.add(rec(10.0, b, SERVER, flags=SYN))
        assert len(retired) == 1
        assert retired[0].close_reason == "fin"

    def test_fires_on_drain_and_eviction(self):
        retired = []
        table = FlowTable(max_flows=2, on_retire=retired.append)
        for i in range(3):
            for record in handshake(float(i), client(i), SERVER):
                table.add(record)
        assert len(retired) == 1              # LRU eviction
        assert retired[0].close_reason == "evicted"
        table.drain()
        assert len(retired) == 3
        assert {flow.close_reason for flow in retired[1:]} == {"eof"}

    def test_callback_is_optional(self):
        table = FlowTable()
        for record in handshake(0.0, client(0), SERVER):
            table.add(record)
        assert len(table.drain()) == 1        # no hook, no crash


class TestOrphans:
    def test_non_syn_stray_is_counted_not_admitted(self):
        stats = IngestStats()
        table = FlowTable(stats=stats)
        table.add(rec(0.0, client(0), SERVER, seq=500, payload=100))
        assert table.live_flows == 0
        assert stats.orphan_packets == 1

    def test_syn_only_false_admits_midcapture_flows(self):
        stats = IngestStats()
        table = FlowTable(syn_only=False, stats=stats)
        table.add(rec(0.0, client(0), SERVER, seq=500, payload=100))
        assert table.live_flows == 1
        flow, = table.drain()
        assert not flow.saw_syn


class TestEviction:
    def test_lru_cap_bounds_live_flows(self):
        stats = IngestStats()
        table = FlowTable(max_flows=2, stats=stats)
        evicted = []
        for i in range(5):
            evicted += table.add(rec(i * 0.01, client(i), SERVER,
                                     flags=SYN))
        assert table.live_flows == 2
        assert stats.flows_evicted == 3
        assert all(f.close_reason == "evicted" for f in evicted)
        # Oldest-first eviction order.
        assert [f.records[0].src for f in evicted] \
            == [client(0), client(1), client(2)]

    def test_activity_refreshes_lru_position(self):
        table = FlowTable(max_flows=2)
        table.add(rec(0.00, client(0), SERVER, flags=SYN))
        table.add(rec(0.01, client(1), SERVER, flags=SYN))
        # Touch flow 0 so flow 1 becomes the LRU victim.
        table.add(rec(0.02, client(0), SERVER, seq=1, payload=10))
        evicted = table.add(rec(0.03, client(2), SERVER, flags=SYN))
        assert [f.records[0].src for f in evicted] == [client(1)]

    def test_peak_live_flows_tracked(self):
        stats = IngestStats()
        table = FlowTable(stats=stats)
        for i in range(4):
            table.add(rec(i * 0.01, client(i), SERVER, flags=SYN))
        table.drain()
        assert stats.peak_live_flows == 4
        assert stats.live_flows == 0
        assert stats.flows_opened == stats.flows_retired == 4

    def test_max_flows_must_be_positive(self):
        with pytest.raises(ValueError):
            FlowTable(max_flows=0)


class TestDemuxRecords:
    def test_streams_flows_lazily_in_completion_order(self):
        records = (handshake(0.0, client(0), SERVER)
                   + handshake(0.05, client(1), SERVER)
                   + teardown(1.0, client(0), SERVER)
                   + [rec(50.0, client(1), SERVER, seq=1, payload=10)])
        flows = list(demux_records(records, time_wait=2.0))
        assert len(flows) == 2
        # Flow 0 completed mid-stream (fin + time-wait), flow 1 at eof.
        assert flows[0].close_reason == "fin"
        assert flows[1].close_reason == "eof"


class TestTeardownEdges:
    """Edge cases the adversarial fuzzer exercises: abortive closes,
    4-tuple reuse inside time-wait, and post-close stragglers."""

    def test_fin_rst_in_one_segment_closes_as_rst(self):
        stats = IngestStats()
        table = FlowTable(time_wait=2.0, stats=stats)
        a = client(0)
        for record in handshake(0.0, a, SERVER):
            table.add(record)
        # An abortive-close middlebox folds FIN and RST together; the
        # abort wins over the orderly-close interpretation.
        table.add(rec(1.0, a, SERVER, flags=FIN | RST | ACK, seq=1, ack=1))
        completed = table.add(rec(10.0, client(1), SERVER, flags=SYN))
        flow, = completed
        assert flow.close_reason == "rst"
        assert len(flow.records) == 4

    def test_syn_reuse_during_rst_time_wait(self):
        table = FlowTable(time_wait=60.0)
        a = client(0)
        for record in handshake(0.0, a, SERVER):
            table.add(record)
        table.add(rec(1.0, SERVER, a, flags=RST | ACK, ack=1))
        # Fresh SYN on the same 4-tuple well inside the time-wait: the
        # reset connection must retire, not absorb the new handshake.
        completed = table.add(rec(2.0, a, SERVER, flags=SYN))
        assert [f.close_reason for f in completed] == ["rst"]
        flow, = table.drain()
        assert flow.saw_syn
        assert len(flow.records) == 1

    def test_data_after_closing_stays_attached(self):
        table = FlowTable(time_wait=2.0)
        a = client(0)
        for record in handshake(0.0, a, SERVER) + teardown(1.0, a, SERVER):
            table.add(record)
        # A straggling in-flight data packet lands after the teardown
        # completed but inside time-wait: it belongs to the closed
        # connection, and must not resurrect it.
        table.add(rec(1.5, a, SERVER, seq=1, payload=100))
        completed = table.add(rec(10.0, client(1), SERVER, flags=SYN))
        flow, = completed
        assert flow.close_reason == "fin"
        assert flow.records[-1].payload == 100
        assert flow.closing_at == pytest.approx(1.02)
