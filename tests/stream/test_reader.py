"""Incremental pcap reading: equivalence, damage tolerance, stats."""

import struct

import pytest

from repro.stream import IncrementalPcapReader, IngestStats, iter_pcap
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.record import Trace, TraceRecord
from repro.trace.wire import AddressMap
from repro.packets import ACK, SYN, Endpoint

from tests.conftest import cached_transfer


@pytest.fixture
def wan_trace():
    return cached_transfer("reno").sender_trace


def _udp_packet() -> bytes:
    """A well-formed IPv4/UDP datagram (cross-traffic)."""
    payload = b"dns?" * 4
    udp = struct.pack("!HHHH", 53, 5353, 8 + len(payload), 0) + payload
    header = struct.pack("!BBHHHBBH4s4s", 0x45, 0, 20 + len(udp), 7, 0,
                         64, 17, 0, bytes([10, 0, 0, 1]),
                         bytes([10, 0, 0, 2]))
    return header + udp


def _append_packet(path, data: bytes, timestamp: float = 0.0) -> None:
    """Append one big-endian record to an existing big-endian pcap."""
    seconds = int(timestamp)
    micros = int(round((timestamp - seconds) * 1e6))
    with open(path, "ab") as handle:
        handle.write(struct.pack(">IIII", seconds, micros,
                                 len(data), len(data)))
        handle.write(data)


class TestEquivalence:
    @pytest.mark.parametrize("byte_order", ["big", "little"])
    def test_matches_eager_reader_both_orders(self, wan_trace, tmp_path,
                                              byte_order):
        path = tmp_path / "t.pcap"
        addresses = AddressMap()
        write_pcap(wan_trace, path, addresses=addresses,
                   byte_order=byte_order)
        assert list(iter_pcap(path, addresses=addresses)) \
            == read_pcap(path, addresses=addresses).records

    def test_is_a_lazy_generator(self, wan_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(wan_trace, path)
        iterator = iter_pcap(path)
        first = next(iterator)
        assert first.is_syn
        iterator.close()

    def test_stats_count_decodes(self, wan_trace, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(wan_trace, path)
        stats = IngestStats()
        records = list(iter_pcap(path, stats=stats))
        assert stats.packets_seen == len(wan_trace)
        assert stats.records_decoded == len(records) == len(wan_trace)
        assert stats.bytes_seen > 0
        assert stats.warnings_total == 0


class TestDamageTolerance:
    def test_non_pcap_still_raises(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"not a pcap file at all........")
        with pytest.raises(ValueError):
            list(iter_pcap(path))

    def test_udp_cross_traffic_counted_and_skipped(self, wan_trace,
                                                   tmp_path):
        path = tmp_path / "mixed.pcap"
        write_pcap(wan_trace, path)
        _append_packet(path, _udp_packet(), timestamp=999.0)
        stats = IngestStats()
        records = list(iter_pcap(path, stats=stats))
        assert len(records) == len(wan_trace)
        assert stats.non_tcp_packets == 1
        assert any(w.kind == "non-tcp" for w in stats.warnings)

    def test_malformed_packet_counted_as_decode_error(self, wan_trace,
                                                      tmp_path):
        path = tmp_path / "mangled.pcap"
        write_pcap(wan_trace, path)
        _append_packet(path, b"\x45\x00\x00", timestamp=999.0)
        stats = IngestStats()
        records = list(iter_pcap(path, stats=stats))
        assert len(records) == len(wan_trace)
        assert stats.decode_errors == 1
        assert any(w.kind == "decode-error" for w in stats.warnings)

    def test_truncated_final_record_yields_partial_result(self, tmp_path):
        record = TraceRecord(timestamp=1.0,
                             src=Endpoint("sender", 1024),
                             dst=Endpoint("receiver", 9000),
                             seq=100, ack=1, flags=ACK, payload=512,
                             window=8192)
        path = tmp_path / "cut.pcap"
        write_pcap(Trace(records=[record]), path)
        data = path.read_bytes()
        # Keep the 40 header bytes of the one record, drop its payload.
        path.write_bytes(data[:24 + 16 + 40])
        stats = IngestStats()
        loaded = list(iter_pcap(path, stats=stats))
        assert len(loaded) == 1
        assert loaded[0].payload == 512   # from the IP total length
        assert not loaded[0].corrupted    # checksum can't be verified
        assert stats.truncated_records == 1
        assert any(w.kind == "truncated-record" for w in stats.warnings)

    def test_truncation_mid_headers_drops_record_with_warning(
            self, wan_trace, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(wan_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])   # leaves < a TCP header
        stats = IngestStats()
        loaded = list(iter_pcap(path, stats=stats))
        assert len(loaded) == len(wan_trace) - 1
        assert stats.truncated_records == 1

    def test_truncated_record_header_warns(self, wan_trace, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(wan_trace, path)
        data = path.read_bytes()
        # Cut inside the final record's 16-byte per-packet header.
        final_start = len(data) - 16 - 40
        path.write_bytes(data[:final_start + 7])
        stats = IngestStats()
        loaded = list(iter_pcap(path, stats=stats))
        assert len(loaded) == len(wan_trace) - 1
        assert any(w.kind == "truncated-record" for w in stats.warnings)


class TestIncrementalReader:
    """The pollable reader behind ``tcpanaly serve``: a half-written
    trailing record is *pending bytes*, not damage, until finalize."""

    def test_partial_trailing_record_is_retried_not_warned(
            self, wan_trace, tmp_path):
        path = tmp_path / "grow.pcap"
        write_pcap(wan_trace, path)
        data = path.read_bytes()
        cut = len(data) - 25              # inside the final record
        path.write_bytes(data[:cut])
        stats = IngestStats()
        reader = IncrementalPcapReader(path, stats=stats)
        records = list(reader.poll())
        assert len(records) == len(wan_trace) - 1
        assert stats.truncated_records == 0   # pending, not truncated
        assert reader.resume_offset < cut     # parked before the partial
        # The rest of the record lands: the same offset now parses.
        with open(path, "ab") as handle:
            handle.write(data[cut:])
        records.extend(reader.poll())
        assert len(records) == len(wan_trace)
        assert reader.resume_offset == len(data)
        reader.close()

    def test_chunked_polls_match_one_shot_read(self, wan_trace, tmp_path):
        whole = tmp_path / "whole.pcap"
        addresses = AddressMap()
        write_pcap(wan_trace, whole, addresses=addresses)
        data = whole.read_bytes()
        path = tmp_path / "grow.pcap"
        path.write_bytes(b"")
        reader = IncrementalPcapReader(path, addresses=addresses)
        records = []
        for start in range(0, len(data), 700):
            with open(path, "ab") as handle:
                handle.write(data[start:start + 700])
            records.extend(reader.poll())
        records.extend(reader.finalize())
        reader.close()
        assert records == list(iter_pcap(whole, addresses=addresses))

    def test_finalize_applies_end_of_capture_semantics(self, wan_trace,
                                                       tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(wan_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])      # final record cut mid-headers
        stats = IngestStats()
        reader = IncrementalPcapReader(path, stats=stats)
        records = list(reader.poll())
        assert stats.truncated_records == 0
        list(reader.finalize())
        reader.close()
        assert len(records) == len(wan_trace) - 1
        assert stats.truncated_records == 1
        assert any(w.kind == "truncated-record" for w in stats.warnings)

    def test_file_may_not_exist_yet(self, wan_trace, tmp_path):
        path = tmp_path / "later.pcap"
        reader = IncrementalPcapReader(path)
        assert list(reader.poll()) == []
        assert reader.resume_offset == 0
        write_pcap(wan_trace, path)
        assert len(list(reader.poll())) == len(wan_trace)
        reader.close()

    def test_bad_magic_raises_value_error(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"x" * 64)
        reader = IncrementalPcapReader(path)
        with pytest.raises(ValueError):
            list(reader.poll())
        reader.close()


class TestUnknownLinkType:
    def _with_linktype(self, path, linktype: int) -> None:
        data = bytearray(path.read_bytes())
        data[20:24] = struct.pack(">I", linktype)
        path.write_bytes(bytes(data))

    def test_strict_mode_raises(self, wan_trace, tmp_path):
        path = tmp_path / "odd.pcap"
        write_pcap(wan_trace, path)
        self._with_linktype(path, 999)
        with pytest.raises(ValueError, match="unsupported link type"):
            read_pcap(path)

    def test_tolerant_mode_warns_and_decodes_raw(self, wan_trace,
                                                 tmp_path):
        path = tmp_path / "odd.pcap"
        write_pcap(wan_trace, path)
        self._with_linktype(path, 999)
        stats = IngestStats()
        records = list(iter_pcap(path, stats=stats))
        # The payloads are raw IP, so the best-effort decode succeeds.
        assert len(records) == len(wan_trace)
        assert any(w.kind == "unknown-linktype" for w in stats.warnings)


class TestWarningCap:
    def test_warnings_capped_but_counted(self, tmp_path, wan_trace):
        path = tmp_path / "noisy.pcap"
        write_pcap(wan_trace, path)
        for i in range(10):
            _append_packet(path, _udp_packet(), timestamp=999.0 + i)
        stats = IngestStats(max_warnings=3)
        list(iter_pcap(path, stats=stats))
        assert len(stats.warnings) == 3
        assert stats.warnings_total == 10
        assert stats.non_tcp_packets == 10
