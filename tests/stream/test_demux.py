"""Streaming-vs-eager equivalence and multi-connection fan-out."""

import json

import pytest

from repro.analysis.connstats import split_connections
from repro.core.report import analyze_trace
from repro.harness.corpus import interleave_traces
from repro.stream import IngestStats, analyze_stream, demux_pcap, iter_pcap
from repro.stream.flowtable import demux_records
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.wire import AddressMap

from tests.conftest import cached_transfer


@pytest.fixture
def single_pcap(tmp_path):
    path = tmp_path / "single.pcap"
    write_pcap(cached_transfer("reno").sender_trace, path)
    return path


@pytest.fixture
def interleaved(tmp_path):
    """A 5-connection interleaved capture written to pcap."""
    traces = [cached_transfer("reno").sender_trace,
              cached_transfer("linux-1.0").sender_trace]
    labels = ["reno", "linux-1.0"]
    capture = interleave_traces(
        [traces[i % 2] for i in range(5)],
        [labels[i % 2] for i in range(5)],
        start_interval=0.3)
    path = tmp_path / "multi.pcap"
    addresses = AddressMap()
    write_pcap(capture.trace, path, addresses=addresses)
    return capture, path, addresses


class TestSingleConnectionEquivalence:
    def test_report_byte_identical_to_eager_path(self, single_pcap):
        eager = analyze_trace(read_pcap(single_pcap),
                              identify=True).to_dict()
        flow_reports = list(analyze_stream(single_pcap, identify=True))
        assert len(flow_reports) == 1
        streamed = flow_reports[0].report.to_dict()
        assert json.dumps(streamed, sort_keys=True) \
            == json.dumps(eager, sort_keys=True)

    def test_flow_trace_equals_eager_trace(self, single_pcap):
        eager = read_pcap(single_pcap)
        flow, = demux_pcap(single_pcap)
        trace = flow.to_trace()
        assert trace.records == eager.records
        assert trace.vantage == eager.vantage
        assert trace.reported_drops == eager.reported_drops


class TestMultiConnectionFanOut:
    def test_one_flow_per_connection(self, interleaved):
        capture, path, addresses = interleaved
        stats = IngestStats()
        flows = list(demux_pcap(path, addresses=addresses, stats=stats))
        assert len(flows) == capture.connections == 5
        assert stats.flows_opened == 5
        assert stats.peak_live_flows > 1     # they really overlap

    def test_flows_round_trip_record_sequences(self, interleaved):
        """Demuxed per-flow sequences match an eager read + split."""
        capture, path, addresses = interleaved
        eager = split_connections(read_pcap(path, addresses=addresses))
        flows = demux_records(iter_pcap(path, addresses=addresses))
        for flow in flows:
            key = frozenset((flow.key.a, flow.key.b))
            assert flow.records == eager[key].records

    def test_flows_match_ground_truth_clients(self, interleaved):
        capture, path, addresses = interleaved
        flows = list(demux_pcap(path, addresses=addresses))
        demuxed_ports = sorted(
            endpoint.port
            for flow in flows for endpoint in (flow.key.a, flow.key.b)
            if endpoint.port >= 40000)
        truth_ports = sorted(f.client.port for f in capture.flows)
        assert demuxed_ports == truth_ports
        demuxed_counts = sorted(len(f.records) for f in flows)
        assert demuxed_counts == sorted(f.records for f in capture.flows)

    def test_each_flow_analyzes_like_a_single_capture(self, interleaved):
        capture, path, addresses = interleaved
        reports = list(analyze_stream(path, addresses=addresses))
        assert len(reports) == capture.connections
        for flow_report in reports:
            assert flow_report.report.vantage == "sender"
            payload = flow_report.to_dict()
            assert payload["flow"]["saw_syn"]
            assert payload["calibration"]["clean"]


class TestTolerantFlowAnalysis:
    def test_tolerant_flow_failure_becomes_errored_report(self, interleaved,
                                                          monkeypatch):
        from repro.stream import build_flow_report
        _capture, path, _addresses = interleaved

        def explode(*args, **kwargs):
            raise KeyError("per-flow defect")
        monkeypatch.setattr("repro.stream.demux.analyze_trace", explode)
        flows = list(demux_pcap(path))
        reports = [build_flow_report(flow, tolerant=True) for flow in flows]
        assert all(r.report is None for r in reports)
        assert all(r.error.kind == "model" for r in reports)
        payload = reports[0].to_dict()
        assert payload["error_kind"] == "model"
        assert "KeyError" in payload["error"]

    def test_strict_flow_failure_propagates(self, interleaved, monkeypatch):
        from repro.stream import build_flow_report
        _capture, path, _addresses = interleaved

        def explode(*args, **kwargs):
            raise KeyError("per-flow defect")
        monkeypatch.setattr("repro.stream.demux.analyze_trace", explode)
        flow = next(demux_pcap(path))
        with pytest.raises(KeyError):
            build_flow_report(flow)
