"""Sequence-plot extraction and rendering."""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.trace.record import Trace

from tests.conftest import cached_transfer


class TestExtraction:
    def test_point_counts(self):
        trace = cached_transfer("reno").sender_trace
        plot = sequence_plot(trace)
        assert len(plot.data_points) == len(trace.data_packets())
        assert len(plot.ack_points) == len(trace.acks())

    def test_times_relative_to_start(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        assert plot.data_points[0][0] >= 0.0
        assert plot.duration > 0

    def test_sequences_relative_to_iss(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        first_time, first_seq = plot.data_points[0]
        assert first_seq == 513   # first segment's upper sequence number

    def test_data_uses_upper_sequence_number(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        assert plot.max_seq >= 51200

    def test_monotone_progress_visible(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        seqs = [s for _, s in plot.data_points]
        assert seqs == sorted(seqs)   # no retransmissions on clean path

    def test_retransmissions_appear_as_regressions(self):
        plot = sequence_plot(
            cached_transfer("linux-1.0", "wan-lossy", seed=3).sender_trace)
        seqs = [s for _, s in plot.data_points]
        assert seqs != sorted(seqs)

    def test_empty_trace(self):
        plot = sequence_plot(Trace())
        assert plot.data_points == [] and plot.ack_points == []


class TestRendering:
    def test_contains_marks(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        art = render_ascii_plot(plot)
        assert "#" in art and "o" in art

    def test_dimensions(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace)
        art = render_ascii_plot(plot, width=40, height=10)
        grid_lines = [line for line in art.splitlines()
                      if line.startswith("|")]
        assert len(grid_lines) == 10
        assert all(len(line) == 42 for line in grid_lines)

    def test_title_included(self):
        plot = sequence_plot(cached_transfer("reno").sender_trace,
                             title="my plot")
        assert render_ascii_plot(plot).startswith("my plot")

    def test_empty_plot(self):
        assert render_ascii_plot(sequence_plot(Trace())) == "(empty plot)"
