"""Summary statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import ack_class_table, describe, retransmission_stats
from repro.core.receiver.analyzer import analyze_receiver
from repro.tcp.catalog import get_behavior

from tests.conftest import cached_transfer


class TestDescribe:
    def test_known_values(self):
        summary = describe([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median == 3.0
        assert summary.mean == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])

    def test_single_value(self):
        summary = describe([7.0])
        assert summary.median == summary.p90 == 7.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_invariants(self, values):
        summary = describe(values)
        ulp = 1e-6   # float summation can land an ulp past the bounds
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.minimum - ulp <= summary.mean <= summary.maximum + ulp
        assert summary.median <= summary.p90 <= summary.maximum


class TestAckClassTable:
    def test_rows_per_implementation(self):
        analyses = []
        for implementation in ("reno", "linux-1.0"):
            transfer = cached_transfer(implementation)
            analyses.append(analyze_receiver(
                transfer.receiver_trace, get_behavior(implementation)))
        table = ack_class_table(analyses)
        assert set(table) == {"reno", "linux-1.0"}

    def test_fractions_sum_to_one(self):
        transfer = cached_transfer("reno")
        table = ack_class_table([analyze_receiver(
            transfer.receiver_trace, get_behavior("reno"))])
        row = table["reno"]
        total = (row["delayed_fraction"] + row["normal_fraction"]
                 + row["stretch_fraction"])
        assert total == pytest.approx(1.0)

    def test_linux_all_delayed(self):
        transfer = cached_transfer("linux-1.0")
        table = ack_class_table([analyze_receiver(
            transfer.receiver_trace, get_behavior("linux-1.0"))])
        assert table["linux-1.0"]["delayed_fraction"] == pytest.approx(1.0)


class TestRetransmissionStats:
    def test_aggregates_by_implementation(self):
        results = [
            ("reno", cached_transfer("reno", "wan-lossy", seed=1).result),
            ("reno", cached_transfer("reno", "wan-lossy", seed=2).result),
            ("linux-1.0",
             cached_transfer("linux-1.0", "wan-lossy", seed=1).result),
        ]
        rows = retransmission_stats(results)
        assert rows["reno"]["transfers"] == 2
        assert rows["linux-1.0"]["rexmit_fraction"] \
            > rows["reno"]["rexmit_fraction"]
