"""Ack-compression detection and asymmetric paths."""

import pytest

from repro.analysis.compression import detect_ack_compression
from repro.capture.filter import attach_filter_pair
from repro.netsim.crosstraffic import CrossTrafficSource
from repro.netsim.engine import Engine
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbit, kbyte, mbit

from tests.conftest import cached_transfer


def compressed_run():
    """A transfer whose acks cross a thin, bursty reverse path."""
    engine = Engine()
    path = build_path(engine, bottleneck_bandwidth=mbit(1.0),
                      bottleneck_delay=0.030,
                      reverse_bottleneck_bandwidth=kbit(128),
                      queue_limit=60)
    sender_filter, receiver_filter = attach_filter_pair(path)
    source = CrossTrafficSource(engine, path.reverse_bottleneck,
                                rate=kbit(128) * 0.9, packet_size=512,
                                on_time=0.3, off_time=0.3)
    source.start()
    result = run_bulk_transfer(get_behavior("reno"), data_size=kbyte(60),
                               path=path, max_duration=300)
    return result, sender_filter.trace(), receiver_filter.trace()


class TestAsymmetricPath:
    def test_reverse_parameters_applied(self):
        engine = Engine()
        path = build_path(engine, bottleneck_bandwidth=mbit(1.0),
                          reverse_bottleneck_bandwidth=kbit(64),
                          reverse_bottleneck_delay=0.050)
        assert path.reverse_bottleneck.bandwidth == kbit(64)
        assert path.reverse_bottleneck.delay == 0.050
        assert path.forward_bottleneck.bandwidth == mbit(1.0)

    def test_defaults_symmetric(self):
        engine = Engine()
        path = build_path(engine, bottleneck_bandwidth=mbit(2.0),
                          bottleneck_delay=0.025)
        assert path.reverse_bottleneck.bandwidth == mbit(2.0)
        assert path.reverse_bottleneck.delay == 0.025

    def test_transfer_completes_over_thin_upstream(self):
        result, _, _ = compressed_run()
        assert result.completed


class TestCompressionDetection:
    def test_detected_on_bursty_reverse_path(self):
        _, sender_trace, _ = compressed_run()
        events = detect_ack_compression(sender_trace)
        assert events
        assert all(e.factor >= 4.0 for e in events)
        assert all(e.acks >= 3 for e in events)

    def test_no_false_positives_on_clean_paths(self):
        for implementation in ("reno", "linux-1.0", "solaris-2.4"):
            trace = cached_transfer(implementation).sender_trace
            assert detect_ack_compression(trace) == []

    def test_no_false_positives_under_loss(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        assert detect_ack_compression(trace) == []

    def test_acks_were_generated_smoothly(self):
        """The compression happened in the network: at the receiver the
        same acks left with data-clocked spacing."""
        _, sender_trace, receiver_trace = compressed_run()
        assert detect_ack_compression(sender_trace)
        assert detect_ack_compression(receiver_trace) == []

    def test_empty_trace(self):
        from repro.trace.record import Trace
        assert detect_ack_compression(Trace()) == []
