"""Per-connection statistics and multi-connection splitting."""

import pytest

from repro.analysis.connstats import (
    connection_stats,
    split_connections,
)
from repro.trace.record import Trace

from tests.conftest import cached_transfer


class TestConnectionStats:
    def test_clean_transfer_numbers(self):
        transfer = cached_transfer("reno")
        stats = connection_stats(transfer.sender_trace)
        assert stats.unique_bytes == 51200
        assert stats.retransmitted_packets == 0
        assert stats.goodput_ratio == 1.0
        assert stats.syn_count == 1
        assert stats.fin_seen and not stats.rst_seen
        assert stats.throughput == pytest.approx(
            51200 / stats.duration)

    def test_lossy_transfer_accounts_retransmissions(self):
        transfer = cached_transfer("linux-1.0", "wan-lossy", seed=3)
        stats = connection_stats(transfer.sender_trace)
        assert stats.unique_bytes == 51200
        assert stats.retransmitted_packets > 50
        assert stats.goodput_ratio < 0.75
        sender = transfer.result.sender
        assert stats.total_data_packets == sender.stats_data_packets

    def test_rtt_samples_match_path(self):
        transfer = cached_transfer("reno")
        stats = connection_stats(transfer.sender_trace)
        # wan scenario: RTT floor ~71 ms; delayed acks stretch the max.
        assert 0.060 <= stats.rtt_min <= 0.090
        assert stats.rtt_min <= stats.rtt_median <= stats.rtt_max

    def test_burst_measured(self):
        # Net/3's bug gives a huge burst; normal slow start does not.
        from dataclasses import replace
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        from repro.tcp.catalog import get_behavior
        from repro.tcp.connection import run_bulk_transfer
        engine = Engine()
        path = build_path(engine)
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        no_option = replace(get_behavior("reno"), offers_mss_option=False)
        run_bulk_transfer(get_behavior("net3"), no_option,
                          data_size=51200, receiver_buffer=16384, path=path)
        stats = connection_stats(packet_filter.trace())
        assert stats.max_burst >= 25

    def test_idle_time_counted(self):
        transfer = cached_transfer("solaris-2.4", "transatlantic",
                                   data_size=20480)
        stats = connection_stats(transfer.sender_trace)
        assert stats.idle_time >= 0.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            connection_stats(Trace())

    def test_render_mentions_key_numbers(self):
        stats = connection_stats(cached_transfer("reno").sender_trace)
        text = stats.render()
        assert "51200 unique bytes" in text
        assert "rtt" in text


class TestSplitConnections:
    def merged_trace(self):
        a = cached_transfer("reno").sender_trace
        b = cached_transfer("linux-1.0").sender_trace
        records = sorted(a.records + b.records, key=lambda r: r.timestamp)
        return Trace(records=records, vantage="sender"), a, b

    def test_splits_by_endpoint_pair(self):
        merged, a, b = self.merged_trace()
        # Both transfers use the same endpoints in our harness, so give
        # them distinct ports first.
        from dataclasses import replace as dc_replace
        from repro.packets import Endpoint
        rebased = []
        for record in b.records:
            src = Endpoint(record.src.addr, record.src.port + 1)
            dst = Endpoint(record.dst.addr, record.dst.port + 1)
            rebased.append(dc_replace(record, src=src, dst=dst))
        merged = Trace(records=sorted(a.records + rebased,
                                      key=lambda r: r.timestamp))
        connections = split_connections(merged)
        assert len(connections) == 2
        sizes = sorted(len(t) for t in connections.values())
        assert sizes == sorted([len(a), len(b)])

    def test_single_connection_passthrough(self):
        trace = cached_transfer("reno").sender_trace
        connections = split_connections(trace)
        assert len(connections) == 1
        only = next(iter(connections.values()))
        assert len(only) == len(trace)

    def test_each_split_analyzable(self):
        from repro.core import analyze_sender
        from repro.tcp.catalog import get_behavior
        merged, a, b = self.merged_trace()
        from dataclasses import replace as dc_replace
        from repro.packets import Endpoint
        rebased = [dc_replace(r, src=Endpoint(r.src.addr, r.src.port + 1),
                              dst=Endpoint(r.dst.addr, r.dst.port + 1))
                   for r in b.records]
        merged = Trace(records=sorted(a.records + rebased,
                                      key=lambda r: r.timestamp),
                       vantage="sender")
        for connection in split_connections(merged).values():
            flow = connection.primary_flow()
            label = "reno" if flow.src.port == 1024 else "linux-1.0"
            analysis = analyze_sender(connection, get_behavior(label))
            assert analysis.violation_count == 0
