"""RTO estimator families (§8.5, §8.6)."""

import pytest

from repro.tcp.catalog import LINUX_10, RENO, SOLARIS_23, TRUMPET
from repro.tcp.timers import (
    JacobsonEstimator,
    Linux10Estimator,
    SolarisEstimator,
    TrumpetEstimator,
    make_estimator,
)


class TestFactory:
    def test_styles_map_to_classes(self):
        assert isinstance(make_estimator(RENO), JacobsonEstimator)
        assert isinstance(make_estimator(SOLARIS_23), SolarisEstimator)
        assert isinstance(make_estimator(LINUX_10), Linux10Estimator)
        assert isinstance(make_estimator(TRUMPET), TrumpetEstimator)


class TestJacobson:
    def test_initial_rto(self):
        estimator = JacobsonEstimator(RENO)
        assert estimator.rto() == RENO.initial_rto

    def test_adapts_to_samples(self):
        estimator = JacobsonEstimator(RENO)
        for _ in range(20):
            estimator.sample(0.5)
        # srtt converges to 0.5; rttvar decays; min_rto floor may bind
        assert 0.5 <= estimator.rto() <= 1.5

    def test_covers_rtt_with_variance(self):
        estimator = JacobsonEstimator(RENO)
        for rtt in [0.2, 0.4, 0.2, 0.4, 0.3] * 4:
            estimator.sample(rtt)
        assert estimator.rto() > 0.4  # srtt + 4*rttvar covers the spread

    def test_karn_discards_retransmitted_samples(self):
        estimator = JacobsonEstimator(RENO)
        estimator.sample(0.5)
        before = estimator.rto()
        estimator.sample(10.0, for_retransmitted=True)
        assert estimator.rto() == before

    def test_backoff_doubles(self):
        estimator = JacobsonEstimator(RENO)
        base = estimator.rto()
        estimator.back_off()
        assert estimator.rto() == pytest.approx(min(base * 2, 64.0))

    def test_backoff_capped_at_max(self):
        estimator = JacobsonEstimator(RENO)
        for _ in range(20):
            estimator.back_off()
        assert estimator.rto() == RENO.max_rto

    def test_reset_backoff(self):
        estimator = JacobsonEstimator(RENO)
        estimator.back_off()
        estimator.reset_backoff()
        assert estimator.rto() == RENO.initial_rto


class TestSolaris:
    def test_starts_low(self):
        estimator = SolarisEstimator(SOLARIS_23)
        assert estimator.rto() == pytest.approx(0.3)

    def test_adaptation_is_sluggish(self):
        estimator = SolarisEstimator(SOLARIS_23)
        estimator.sample(0.68)
        # One sample moves it only 1/8 of the way: nowhere near 680 ms.
        assert estimator.rto() < 0.4

    def test_collapses_on_rexmit_ack(self):
        estimator = SolarisEstimator(SOLARIS_23)
        for _ in range(50):
            estimator.sample(0.68)
        adapted = estimator.rto()
        assert adapted > 0.5
        estimator.sample(0.0, for_retransmitted=True)
        assert estimator.rto() == pytest.approx(SOLARIS_23.initial_rto)
        assert estimator.rto() < adapted

    def test_premature_on_long_rtt_path(self):
        # The §8.6 pathology: RTO stays below a 680 ms path RTT because
        # every retransmission ack collapses it.
        estimator = SolarisEstimator(SOLARIS_23)
        for _ in range(30):
            estimator.sample(0.68)                       # one good sample
            estimator.sample(0.0, for_retransmitted=True)  # then a collapse
        assert estimator.rto() < 0.68


class TestLinux10:
    def test_no_variance_term_fires_early(self):
        estimator = Linux10Estimator(LINUX_10)
        for rtt in [0.2, 0.5, 0.2, 0.5] * 5:
            estimator.sample(rtt)
        # Mean ~0.35 * 1.125 < the 0.5s peaks: premature retransmission.
        assert estimator.rto() < 0.5

    def test_weak_backoff(self):
        estimator = Linux10Estimator(LINUX_10)
        estimator.sample(1.0)
        base = estimator.rto()
        estimator.back_off()
        assert estimator.rto() == pytest.approx(base * 1.5)  # not doubling


class TestTrumpet:
    def test_never_adapts(self):
        estimator = TrumpetEstimator(TRUMPET)
        for _ in range(100):
            estimator.sample(5.0)
        assert estimator.rto() == pytest.approx(TRUMPET.initial_rto)
