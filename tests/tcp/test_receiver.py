"""Receiver acking policies, observed through traces (§9.1)."""

import pytest

from repro.netsim.link import DeterministicLoss
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte

from tests.conftest import cached_transfer


def outbound_acks(trace):
    flow = trace.primary_flow()
    reverse = flow.reversed()
    return [r for r in trace
            if r.flow == reverse and r.has_ack and not r.is_syn]


def data_arrivals(trace):
    flow = trace.primary_flow()
    return [r for r in trace if r.flow == flow and r.payload > 0]


class TestBSDHeartbeat:
    def test_acks_roughly_every_two_segments(self):
        trace = cached_transfer("reno").receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        # ~1 ack per 2 packets, plus handshake/FIN bookkeeping
        assert len(arrivals) / 2.6 <= len(acks) <= len(arrivals) / 1.5

    def test_delayed_ack_bounded_by_heartbeat(self):
        trace = cached_transfer("reno").receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        for ack in acks:
            prior = [a for a in arrivals if a.timestamp <= ack.timestamp]
            if prior:
                assert ack.timestamp - prior[-1].timestamp <= 0.210

    def test_single_segment_gets_delayed_ack(self):
        # One lone segment: only the heartbeat can ack it.
        result = run_bulk_transfer(get_behavior("reno"), data_size=512)
        assert result.completed


class TestLinuxEveryPacket:
    def test_one_ack_per_arrival(self):
        trace = cached_transfer("linux-1.0").receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        # every data packet acked individually (+ FIN ack)
        assert len(acks) >= len(arrivals)

    def test_acks_generated_within_a_millisecond(self):
        trace = cached_transfer("linux-1.0").receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        arrival_times = [a.timestamp for a in arrivals]
        for ack in acks[1:-1]:
            gap = min(abs(ack.timestamp - t) for t in arrival_times)
            assert gap <= 0.001


class TestSolarisIntervalTimer:
    def test_two_segments_still_ack_normally_on_fast_link(self):
        trace = cached_transfer("solaris-2.4", "wan").receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        assert len(acks) <= len(arrivals) * 0.7

    def test_slow_link_acks_every_packet(self):
        """§9.1: on a 56 kbit/s link two 512-byte packets cannot arrive
        within 50 ms, so every in-sequence ack is a delayed ack."""
        trace = cached_transfer("solaris-2.4", "modem-56k",
                                data_size=20480).receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        assert len(acks) >= len(arrivals) * 0.95

    def test_bsd_200ms_timer_acks_pairs_on_same_link(self):
        """The contrast the paper draws: a 200 ms timer still lets
        pairs accumulate at 56 kbit/s."""
        trace = cached_transfer("reno", "modem-56k",
                                data_size=20480).receiver_trace
        acks = outbound_acks(trace)
        arrivals = data_arrivals(trace)
        assert len(acks) <= len(arrivals) * 0.7


class TestOutOfSequence:
    def test_dup_acks_on_hole(self):
        result_trace = None
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        engine = Engine()
        path = build_path(engine,
                          forward_loss=DeterministicLoss(drop_nth=[10]))
        packet_filter = PacketFilter(vantage="receiver")
        attach_at_host(path.receiver, packet_filter)
        run_bulk_transfer(get_behavior("reno"), data_size=kbyte(30),
                          path=path)
        trace = packet_filter.trace()
        acks = outbound_acks(trace)
        values = [a.ack for a in acks]
        # at least 3 consecutive identical acks (the dup-ack train)
        runs = max(sum(1 for v in values[i:] if v == values[i])
                   for i in range(len(values)))
        assert runs >= 3

    def test_hole_fill_acked_immediately_on_24(self):
        assert _hole_fill_trace("solaris-2.4") < 0.010

    def test_hole_fill_ack_delayed_on_23(self):
        """§8.6: the minor 2.3 acking bug — when a hole fill advances
        rcv_nxt by less than two full segments, 2.3 treats the ack as
        optional (it waits for its 50 ms timer) while 2.4 acks at once."""
        fast = _hole_fill_small_advance("solaris-2.4")
        slow = _hole_fill_small_advance("solaris-2.3")
        assert fast < 0.010
        assert slow >= 0.045   # waited for the 50 ms interval timer
        assert fast < slow


def _hole_fill_trace(implementation: str) -> float:
    """Time from retransmission arrival to the ack covering it."""
    from repro.capture.filter import PacketFilter, attach_at_host
    from repro.netsim.engine import Engine
    from repro.netsim.network import build_path
    from repro.units import seq_gt
    engine = Engine()
    path = build_path(engine, forward_loss=DeterministicLoss(drop_nth=[10]))
    packet_filter = PacketFilter(vantage="receiver")
    attach_at_host(path.receiver, packet_filter)
    run_bulk_transfer(get_behavior(implementation), data_size=kbyte(30),
                      path=path)
    trace = packet_filter.trace()
    flow = trace.primary_flow()
    highest_end = None
    for i, record in enumerate(trace.records):
        if record.flow == flow and record.payload > 0:
            if highest_end is not None and seq_gt(highest_end, record.seq):
                # the hole-filling retransmission arrival; find the ack
                # advancing past it
                for later in trace.records[i + 1:]:
                    if (later.flow == flow.reversed() and later.has_ack
                            and seq_gt(later.ack, record.seq)):
                        return later.timestamp - record.timestamp
            if highest_end is None or seq_gt(record.seq_end, highest_end):
                highest_end = record.seq_end
    raise AssertionError("no retransmission found in trace")


def _hole_fill_small_advance(implementation: str) -> float:
    """Hand-drive a receiver: in-sequence, a short out-of-order
    fragment, then the hole fill (advance < 2 MSS).  Returns the time
    from the hole-filling arrival to the covering ack."""
    from repro.netsim.engine import Engine
    from repro.netsim.node import Host
    from repro.packets import ACK, SYN, Endpoint, Segment
    from repro.tcp.receiver import TCPReceiver
    from repro.units import seq_gt

    engine = Engine()
    host = Host(engine, "rcv")
    acks = []
    host.send = lambda segment: acks.append((engine.now, segment))
    local = Endpoint("rcv", 80)
    remote = Endpoint("snd", 1024)
    receiver = TCPReceiver(engine, host, get_behavior(implementation),
                           local, remote, mss=512)
    receiver.listen()

    def arrives(delay, **kwargs):
        segment = Segment(src=remote, dst=local, **kwargs)
        engine.schedule(delay, lambda: receiver.receive(segment))

    arrives(0.0, seq=0, ack=0, flags=SYN, mss_option=512)
    arrives(0.1, seq=1, ack=1, flags=ACK, payload=512)       # in sequence
    arrives(0.2, seq=1025, ack=1, flags=ACK, payload=300)    # above a hole
    arrives(0.3, seq=513, ack=1, flags=ACK, payload=512)     # fills it
    engine.run(until=1.0)
    covering = [t for t, segment in acks
                if segment.has_ack and seq_gt(segment.ack, 513)]
    assert covering, f"no covering ack from {implementation}"
    return covering[0] - 0.3


class TestWindowAndConsumption:
    def test_window_constant_with_instant_consumption(self):
        trace = cached_transfer("reno").receiver_trace
        acks = outbound_acks(trace)
        assert len({a.window for a in acks}) == 1

    def test_slow_consumer_shrinks_window(self):
        result = run_bulk_transfer(get_behavior("reno"),
                                   data_size=kbyte(50),
                                   receiver_buffer=8192,
                                   consume_rate=20000.0)
        assert result.completed

    def test_slow_consumer_limits_throughput(self):
        fast = run_bulk_transfer(get_behavior("reno"), data_size=kbyte(50))
        slow = run_bulk_transfer(get_behavior("reno"), data_size=kbyte(50),
                                 receiver_buffer=8192, consume_rate=20000.0)
        assert slow.duration > fast.duration
