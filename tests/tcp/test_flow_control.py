"""Zero-window probing, window promises, and connection abandonment."""

from dataclasses import replace

import pytest

from repro.core import analyze_receiver, analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.netsim.link import DeterministicLoss
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer


def slow_consumer_transfer(behavior=None, persist_interval=None, **kwargs):
    behavior = behavior or get_behavior("reno")
    if persist_interval is not None:
        behavior = replace(behavior, persist_interval=persist_interval)
    defaults = dict(data_size=8192, receiver_buffer=2048,
                    consume_rate=800.0, max_duration=120)
    defaults.update(kwargs)
    return traced_transfer(behavior, "lan", **defaults)


class TestZeroWindowProbing:
    def test_transfer_completes_despite_closed_window(self):
        transfer = slow_consumer_transfer()
        assert transfer.result.completed

    def test_window_reaches_zero(self):
        transfer = slow_consumer_transfer()
        acks = transfer.sender_trace.acks()
        assert any(a.window == 0 for a in acks)

    def test_persist_timer_probes_when_updates_are_slow(self):
        transfer = slow_consumer_transfer(persist_interval=0.4)
        sender = transfer.result.sender
        assert sender.stats_window_probes >= 3
        # Probes carry exactly one byte.
        flow = transfer.sender_trace.primary_flow()
        probes = [r for r in transfer.sender_trace
                  if r.flow == flow and r.payload == 1]
        assert len(probes) == sender.stats_window_probes

    def test_probes_rejected_but_acked(self):
        transfer = slow_consumer_transfer(persist_interval=0.4)
        receiver = transfer.result.receiver
        assert receiver.stats_probes_rejected >= \
            transfer.result.sender.stats_window_probes
        assert transfer.result.completed

    def test_probe_backoff(self):
        transfer = slow_consumer_transfer(persist_interval=0.4,
                                          consume_rate=200.0,
                                          max_duration=300)
        flow = transfer.sender_trace.primary_flow()
        probes = [r.timestamp for r in transfer.sender_trace
                  if r.flow == flow and r.payload == 1]
        if len(probes) >= 3:
            gaps = [b - a for a, b in zip(probes, probes[1:])]
            # consecutive probes in the same stall back off
            assert any(later > earlier * 1.5
                       for earlier, later in zip(gaps, gaps[1:])) or \
                len(set(round(g, 1) for g in gaps)) > 1

    def test_sender_analysis_explains_probes(self):
        transfer = slow_consumer_transfer(persist_interval=0.4)
        analysis = analyze_sender(transfer.sender_trace,
                                  replace(get_behavior("reno"),
                                          persist_interval=0.4))
        assert analysis.violation_count == 0
        assert analysis.counts_by_kind().get("window_probe", 0) >= 3

    def test_receiver_analysis_no_gratuitous_acks(self):
        transfer = slow_consumer_transfer(persist_interval=0.4)
        analysis = analyze_receiver(transfer.receiver_trace,
                                    get_behavior("reno"))
        assert analysis.gratuitous == []

    def test_no_reneging_on_advertised_window(self):
        """Data within a previously advertised window is accepted even
        if the buffer has since shrunk."""
        transfer = slow_consumer_transfer()
        # All 8 KB arrive despite the 2 KB buffer and slow consumer.
        assert transfer.result.receiver.stats_data_received == 8192


class TestAbort:
    def drop_after(self, boundary):
        return DeterministicLoss(
            predicate=lambda s: "drop" if s.payload > 0
            and s.seq > boundary else "deliver")

    def test_gives_up_after_max_retries(self):
        result = run_bulk_transfer(
            replace(get_behavior("reno"), max_data_retries=4),
            data_size=20480, forward_loss=self.drop_after(2048),
            max_duration=4000)
        assert result.sender.aborted
        assert result.sender.state == "CLOSED_DONE"
        assert not result.completed

    def test_abort_sends_rst(self):
        behavior = replace(get_behavior("reno"), max_data_retries=4)
        transfer = traced_transfer(behavior, "wan", data_size=20480,
                                   max_duration=4000)
        # rebuild with loss via run_bulk_transfer against a tapped path
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        engine = Engine()
        path = build_path(engine, forward_loss=self.drop_after(2048))
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        result = run_bulk_transfer(behavior, data_size=20480, path=path,
                                   max_duration=4000)
        assert result.sender.aborted
        trace = packet_filter.trace()
        assert any(r.is_rst for r in trace)

    def test_djm97_no_rst_variant(self):
        """[DJM97]: some TCPs fail to terminate with a RST."""
        behavior = replace(get_behavior("reno"), max_data_retries=4,
                           sends_rst_on_abort=False)
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        engine = Engine()
        path = build_path(engine, forward_loss=self.drop_after(2048))
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        result = run_bulk_transfer(behavior, data_size=20480, path=path,
                                   max_duration=4000)
        assert result.sender.aborted
        assert not any(r.is_rst for r in packet_filter.trace())

    def test_retry_counter_resets_on_progress(self):
        """Occasional successes keep the connection alive far past
        max_data_retries total timeouts."""
        result = run_bulk_transfer(
            replace(get_behavior("reno"), max_data_retries=6),
            data_size=30720,
            forward_loss=DeterministicLoss(
                drop_nth=[10, 20, 30, 40, 50, 60, 70, 80]),
            max_duration=600)
        assert result.completed
        assert not result.sender.aborted
