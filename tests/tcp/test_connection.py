"""TransferResult wiring and properties."""

import pytest

from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte

from tests.conftest import cached_transfer


class TestTransferResult:
    def test_throughput_is_goodput(self):
        result = cached_transfer("reno").result
        assert result.throughput == pytest.approx(
            51200 / result.duration)

    def test_retransmission_fraction_zero_when_clean(self):
        result = cached_transfer("reno").result
        assert result.retransmission_fraction == 0.0

    def test_retransmission_fraction_positive_under_loss(self):
        result = cached_transfer("reno", "wan-lossy", seed=1).result
        assert 0.0 < result.retransmission_fraction < 0.5

    def test_duration_uses_sender_finish_time(self):
        result = cached_transfer("reno").result
        assert result.duration == result.sender.finish_time

    def test_receiver_behavior_defaults_to_sender(self):
        result = run_bulk_transfer(get_behavior("linux-1.0"),
                                   data_size=kbyte(10))
        assert result.receiver.behavior.name == "linux"

    def test_mixed_sender_receiver(self):
        result = run_bulk_transfer(get_behavior("reno"),
                                   get_behavior("linux-1.0"),
                                   data_size=kbyte(10))
        assert result.completed
        # Linux receiver acks every packet: one ack per data packet.
        assert (result.receiver.stats_acks_sent
                >= result.sender.stats_data_packets)

    def test_small_transfer_single_segment(self):
        result = run_bulk_transfer(get_behavior("reno"), data_size=100)
        assert result.completed
        assert result.sender.stats_data_packets == 1

    def test_zero_wait_on_max_duration(self):
        # A transfer that cannot complete (100% loss) stops at the cap.
        from repro.netsim.link import RandomLoss
        result = run_bulk_transfer(get_behavior("reno"), data_size=kbyte(10),
                                   forward_loss=RandomLoss(1.0, seed=0),
                                   max_duration=30.0)
        assert not result.completed

    @pytest.mark.parametrize("mss", [256, 512, 1024, 1460])
    def test_various_mss_values(self, mss):
        result = run_bulk_transfer(get_behavior("reno"), data_size=kbyte(20),
                                   mss=mss, receiver_mss=1460)
        assert result.completed
