"""Consumption-based acking (§9.1) and heartbeat phase."""

import pytest

from repro.core import analyze_receiver
from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import CATALOG, get_behavior
from repro.tcp.params import Lineage
from repro.units import mbit

QUIET = Scenario("quiet-test", bottleneck_bandwidth=mbit(10.0),
                 bottleneck_delay=0.010)


class TestCatalogFlags:
    def test_bsd_derived_ack_on_consumption(self):
        for label, behavior in CATALOG.items():
            if behavior.lineage in (Lineage.RENO, Lineage.TAHOE):
                assert behavior.ack_on_consumption, label

    def test_independent_stacks_ack_on_arrival(self):
        for label in ("linux-1.0", "solaris-2.3", "trumpet-2.0b"):
            assert not CATALOG[label].ack_on_consumption


class TestConsumptionAcking:
    def kwargs(self):
        return dict(data_size=20480, sender_window=1024,
                    receiver_buffer=16384)

    def ack_gap_after_pair(self, consume_rate):
        """Time from the pair's second arrival to the covering ack."""
        transfer = traced_transfer(get_behavior("reno"), QUIET,
                                   consume_rate=consume_rate,
                                   **self.kwargs())
        trace = transfer.receiver_trace
        flow = trace.primary_flow()
        gaps = []
        last_data = None
        for record in trace:
            if record.flow == flow and record.payload > 0:
                last_data = record.timestamp
            elif record.flow == flow.reversed() and record.has_ack \
                    and not record.is_syn and last_data is not None:
                gaps.append(record.timestamp - last_data)
                last_data = None
        return sorted(gaps)[len(gaps) // 2]

    def test_prompt_reader_acks_promptly(self):
        assert self.ack_gap_after_pair(None) < 0.002

    def test_slow_reader_delays_the_threshold_ack(self):
        """§9.1: the ack waits for the application to consume two
        segments' worth."""
        prompt = self.ack_gap_after_pair(None)
        slow = self.ack_gap_after_pair(40000.0)
        # 1024 bytes at 40 KB/s = ~25.6 ms of reader schedule.
        assert slow > prompt + 0.010
        assert slow == pytest.approx(0.0256, abs=0.010)

    def test_transfer_still_completes(self):
        transfer = traced_transfer(get_behavior("reno"), QUIET,
                                   consume_rate=40000.0, **self.kwargs())
        assert transfer.result.completed

    def test_receiver_analysis_stays_clean(self):
        transfer = traced_transfer(get_behavior("reno"), QUIET,
                                   consume_rate=40000.0, **self.kwargs())
        analysis = analyze_receiver(transfer.receiver_trace,
                                    get_behavior("reno"))
        assert analysis.gratuitous == []
        assert analysis.delay_ceiling_violations == []


class TestHeartbeatPhase:
    def test_phase_shifts_delayed_acks(self):
        def first_delayed_ack_time(phase):
            transfer = traced_transfer(get_behavior("reno"), QUIET,
                                       data_size=2048, sender_window=512,
                                       heartbeat_phase=phase)
            acks = transfer.receiver_trace.acks()
            return acks[0].timestamp

        t0 = first_delayed_ack_time(0.0)
        t1 = first_delayed_ack_time(0.095)
        assert t0 != t1

    def test_phase_wraps_modulo_timeout(self):
        from repro.netsim.engine import Engine
        from repro.netsim.node import Host
        from repro.packets import Endpoint
        from repro.tcp.receiver import TCPReceiver
        engine = Engine()
        host = Host(engine, "r")
        receiver = TCPReceiver(engine, host, get_behavior("reno"),
                               Endpoint("r", 1), Endpoint("s", 2),
                               heartbeat_phase=0.45)
        assert receiver.heartbeat_phase == pytest.approx(0.05)
