"""Sender stack behavior, observed through its packet traces."""

import pytest

from repro.harness.scenarios import traced_transfer
from repro.netsim.link import DeterministicLoss
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte, seq_diff

from tests.conftest import cached_transfer


def data_records(trace):
    flow = trace.primary_flow()
    return [r for r in trace if r.flow == flow and r.payload > 0]


class TestHandshake:
    def test_syn_carries_mss_option(self):
        trace = cached_transfer("reno").sender_trace
        syn = trace.records[0]
        assert syn.is_syn and not syn.has_ack
        assert syn.mss_option == 512

    def test_negotiated_mss_bounds_segments(self):
        trace = cached_transfer("reno").sender_trace
        assert all(r.payload <= 512 for r in data_records(trace))

    def test_syn_retransmitted_on_silence(self):
        # A receiver that never answers: the SYN should be retried with
        # backoff, then the connection abandoned.
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        from repro.packets import Endpoint
        from repro.tcp.sender import TCPSender
        engine = Engine()
        path = build_path(engine)
        sender = TCPSender(engine, path.sender, get_behavior("reno"),
                           Endpoint("sender", 1024),
                           Endpoint("receiver", 9000), data_size=1024)
        syns = []
        path.sender.send_taps.append(lambda s, t: syns.append(t))
        sender.open()
        engine.run(until=600)
        assert len(syns) >= 4                 # initial + retries
        assert sender.state == "CLOSED_DONE"  # gave up eventually
        gaps = [b - a for a, b in zip(syns, syns[1:])]
        assert all(later > earlier for earlier, later in zip(gaps, gaps[1:]))


class TestSlowStart:
    def test_first_flight_is_one_segment(self):
        trace = cached_transfer("reno").sender_trace
        records = data_records(trace)
        first_burst = [r for r in records
                       if r.timestamp - records[0].timestamp < 0.01]
        assert len(first_burst) == 1

    def test_window_grows_exponentially_initially(self):
        result = cached_transfer("reno").result
        # completing 100 packets in ~13 round trips implies doubling
        rtt = 0.071
        assert result.duration < 20 * rtt

    def test_linux10_initial_ssthresh_cripples_growth(self):
        """§8.5: initializing ssthresh to one MSS 'considerably
        impedes performance' — Linux leaves slow start immediately."""
        linux = cached_transfer("linux-1.0", "wan").result
        reno = cached_transfer("reno", "wan").result
        assert linux.duration > reno.duration


class TestCompletion:
    @pytest.mark.parametrize("implementation", [
        "reno", "tahoe", "net3", "sunos-4.1.3", "linux-1.0",
        "solaris-2.4", "trumpet-2.0b", "windows-95", "linux-2.0.30",
    ])
    def test_transfer_completes(self, implementation):
        result = cached_transfer(implementation, "wan").result
        assert result.completed

    @pytest.mark.parametrize("implementation",
                             ["reno", "linux-1.0", "solaris-2.4"])
    def test_transfer_completes_under_loss(self, implementation):
        result = cached_transfer(implementation, "wan-lossy", seed=1).result
        assert result.completed

    def test_receiver_gets_every_byte(self):
        transfer = cached_transfer("reno", "wan-lossy", seed=2)
        assert transfer.result.receiver.stats_data_received == 51200

    def test_fin_ends_connection(self):
        trace = cached_transfer("reno").sender_trace
        flow = trace.primary_flow()
        assert any(r.is_fin for r in trace if r.flow == flow)


class TestRetransmission:
    def test_fast_retransmit_after_three_dups(self):
        # Drop one mid-stream packet; Reno should recover without a
        # timeout (fast retransmit), Tahoe with a window collapse.
        result = run_bulk_transfer(
            get_behavior("reno"), data_size=kbyte(50),
            forward_loss=DeterministicLoss(drop_nth=[20]))
        assert result.completed
        assert result.sender.stats_fast_retransmits == 1
        assert result.sender.stats_timeouts == 0

    def test_tahoe_recovers_from_same_loss(self):
        result = run_bulk_transfer(
            get_behavior("tahoe"), data_size=kbyte(50),
            forward_loss=DeterministicLoss(drop_nth=[20]))
        assert result.completed
        assert result.sender.stats_fast_retransmits == 1

    def test_tahoe_resends_more_than_reno_after_loss(self):
        """Fast recovery's point: Reno does not go back to slow start."""
        reno = run_bulk_transfer(
            get_behavior("reno"), data_size=kbyte(50),
            forward_loss=DeterministicLoss(drop_nth=[20]))
        tahoe = run_bulk_transfer(
            get_behavior("tahoe"), data_size=kbyte(50),
            forward_loss=DeterministicLoss(drop_nth=[20]))
        assert (tahoe.sender.stats_retransmissions
                >= reno.sender.stats_retransmissions)

    def test_timeout_when_no_dup_acks_possible(self):
        # Drop the very last data packet: no further data elicits dups,
        # so recovery must come from the retransmission timer.
        result = run_bulk_transfer(
            get_behavior("reno"), data_size=kbyte(10),
            forward_loss=DeterministicLoss(drop_nth=[21]))
        assert result.completed
        assert result.sender.stats_timeouts >= 1

    def test_linux10_flight_retransmission_storm(self):
        """§8.5: Linux 1.0 re-sends entire flights; under the same loss
        it retransmits far more than Reno."""
        linux = cached_transfer("linux-1.0", "wan-lossy", seed=3).result
        reno = cached_transfer("reno", "wan-lossy", seed=3).result
        assert (linux.sender.stats_retransmissions
                > 5 * max(reno.sender.stats_retransmissions, 1))

    def test_solaris_premature_retransmissions_at_high_rtt(self):
        """§8.6 / Figure 5: on a 680 ms path every early packet is
        retransmitted needlessly; load roughly doubles."""
        solaris = cached_transfer("solaris-2.4", "transatlantic").result
        reno = cached_transfer("reno", "transatlantic").result
        assert reno.sender.stats_retransmissions == 0
        assert solaris.sender.stats_retransmissions >= 30
        ratio = (solaris.sender.stats_data_packets
                 / reno.sender.stats_data_packets)
        assert ratio >= 1.3

    def test_no_retransmissions_on_clean_path(self):
        for implementation in ("reno", "tahoe", "linux-1.0"):
            result = cached_transfer(implementation, "wan").result
            assert result.sender.stats_retransmissions == 0


class TestNet3Bug:
    """§8.4: SYN-ack without an MSS option leaves cwnd huge."""

    def test_burst_fills_offered_window_immediately(self):
        behavior = get_behavior("net3")
        plain_receiver = get_behavior("reno")
        from dataclasses import replace
        no_option = replace(plain_receiver, offers_mss_option=False)
        result = run_bulk_transfer(behavior, no_option,
                                   data_size=kbyte(50),
                                   receiver_buffer=16384)
        trace_burst = result.sender.stats_data_packets
        # The first flight should be ~16384/536 = 30 packets (Figure 3).
        assert result.completed

    def test_first_flight_counts(self):
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        from dataclasses import replace
        engine = Engine()
        path = build_path(engine)
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        no_option = replace(get_behavior("reno"), offers_mss_option=False)
        run_bulk_transfer(get_behavior("net3"), no_option,
                          data_size=kbyte(50), receiver_buffer=16384,
                          path=path)
        trace = packet_filter.trace()
        records = data_records(trace)
        burst = [r for r in records
                 if r.timestamp - records[0].timestamp < 0.005]
        assert len(burst) >= 25   # ~30 packets blasted at once

    def test_no_burst_when_mss_option_offered(self):
        from repro.capture.filter import PacketFilter, attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        engine = Engine()
        path = build_path(engine)
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        run_bulk_transfer(get_behavior("net3"), get_behavior("reno"),
                          data_size=kbyte(50), receiver_buffer=16384,
                          path=path)
        records = data_records(packet_filter.trace())
        burst = [r for r in records
                 if r.timestamp - records[0].timestamp < 0.005]
        assert len(burst) == 1


class TestSenderWindow:
    def test_sender_window_caps_flight(self):
        transfer = cached_transfer("reno", "wan", sender_window=4096)
        trace = transfer.sender_trace
        flow = trace.primary_flow()
        highest_ack = 1
        max_flight = 0
        for record in trace:
            if record.flow == flow and record.payload > 0:
                max_flight = max(max_flight,
                                 seq_diff(record.seq_end, highest_ack))
            elif record.flow == flow.reversed() and record.has_ack:
                highest_ack = max(highest_ack, record.ack)
        assert max_flight <= 4096


class TestSourceQuench:
    def test_bsd_quench_triggers_slow_start(self):
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(100), quench_threshold=4)
        assert transfer.result.sender.stats_quenches_seen >= 1
        assert transfer.result.completed

    def test_linux_quench_only_decrements(self):
        transfer = traced_transfer(get_behavior("linux-1.0"), "wan",
                                   data_size=kbyte(100), quench_threshold=4)
        assert transfer.result.completed
