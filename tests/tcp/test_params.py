"""The behavior catalog's shared congestion arithmetic (§8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcp import params as P
from repro.tcp.catalog import LINUX_10, RENO, SOLARIS_23, TAHOE
from repro.tcp.params import (
    HUGE_WINDOW,
    SsthreshRounding,
)

MSS = 512


class TestEffectiveMSS:
    def test_plain(self):
        assert P.effective_mss(RENO, MSS) == MSS

    def test_mss_confusion_counts_option_bytes(self):
        from dataclasses import replace
        confused = replace(RENO, mss_confusion=True)
        assert P.effective_mss(confused, MSS) == MSS + 4


class TestInitialWindows:
    def test_default_one_segment(self):
        assert P.initial_cwnd(RENO, MSS, MSS, True) == MSS

    def test_net3_bug_without_peer_mss_option(self):
        from repro.tcp.catalog import NET3
        assert P.initial_cwnd(NET3, MSS, MSS, False) == HUGE_WINDOW
        assert P.initial_ssthresh(NET3, MSS, False) == HUGE_WINDOW

    def test_net3_bug_dormant_with_mss_option(self):
        from repro.tcp.catalog import NET3
        assert P.initial_cwnd(NET3, MSS, MSS, True) == MSS

    def test_cwnd_from_offered_mss(self):
        from dataclasses import replace
        buggy = replace(RENO, cwnd_init_from_offered_mss=True)
        assert P.initial_cwnd(buggy, 512, 1460, True) == 1460

    def test_linux_ssthresh_one_segment(self):
        assert P.initial_ssthresh(LINUX_10, MSS, True) == MSS

    def test_default_ssthresh_huge(self):
        assert P.initial_ssthresh(RENO, MSS, True) == HUGE_WINDOW


class TestSlowStartTest:
    def test_strict_test(self):
        # Tahoe: CA only when cwnd strictly exceeds ssthresh.
        assert not P.in_congestion_avoidance(TAHOE, 1024, 1024)
        assert P.in_congestion_avoidance(TAHOE, 1025, 1024)

    def test_equal_test(self):
        assert P.in_congestion_avoidance(RENO, 1024, 1024)


class TestIncrease:
    def test_slow_start_adds_mss(self):
        assert P.increase_cwnd(RENO, MSS, HUGE_WINDOW, MSS, 65535) == 2 * MSS

    def test_eqn1_congestion_avoidance(self):
        cwnd = 4 * MSS
        new = P.increase_cwnd(TAHOE, cwnd, MSS, MSS, 65535)
        assert new == cwnd + (MSS * MSS) // cwnd

    def test_eqn2_adds_extra_term(self):
        cwnd = 4 * MSS
        new = P.increase_cwnd(RENO, cwnd, MSS, MSS, 65535)
        assert new == cwnd + (MSS * MSS) // cwnd + MSS // 8

    def test_capped_at_max_window(self):
        assert P.increase_cwnd(RENO, 65535, HUGE_WINDOW, MSS, 65535) == 65535

    @given(st.integers(min_value=512, max_value=65535))
    def test_increase_is_monotone(self, cwnd):
        assert P.increase_cwnd(RENO, cwnd, HUGE_WINDOW, MSS, 10**9) > cwnd

    def test_eqn2_superlinear_vs_eqn1(self):
        cwnd = 16 * MSS
        eqn1 = P.increase_cwnd(TAHOE, cwnd, MSS, MSS, 10**9)
        eqn2 = P.increase_cwnd(RENO, cwnd, MSS, MSS, 10**9)
        assert eqn2 - eqn1 == MSS // 8


class TestSsthreshCut:
    def test_halves_and_rounds_down(self):
        assert P.cut_ssthresh(RENO, 5 * MSS, 65535, MSS) == 2 * MSS

    def test_offered_window_binds(self):
        assert P.cut_ssthresh(RENO, 64 * MSS, 8 * MSS, MSS) == 4 * MSS

    def test_minimum_two_segments_reno(self):
        assert P.cut_ssthresh(RENO, MSS, 65535, MSS) == 2 * MSS

    def test_minimum_one_segment_tahoe(self):
        assert P.cut_ssthresh(TAHOE, MSS, 65535, MSS) == MSS

    def test_rounding_none_keeps_exact_half(self):
        from dataclasses import replace
        exact = replace(RENO, ssthresh_rounding=SsthreshRounding.NONE)
        assert P.cut_ssthresh(exact, 5 * MSS, 65535, MSS) == 5 * MSS // 2

    def test_rounding_up(self):
        from dataclasses import replace
        up = replace(RENO, ssthresh_rounding=SsthreshRounding.UP_TO_MSS)
        assert P.cut_ssthresh(up, 5 * MSS, 65535, MSS) == 3 * MSS

    @given(st.integers(min_value=512, max_value=10**6),
           st.integers(min_value=512, max_value=10**6))
    def test_cut_never_below_floor(self, cwnd, offered):
        cut = P.cut_ssthresh(RENO, cwnd, offered, MSS)
        assert cut >= RENO.ssthresh_min_segments * MSS

    @given(st.integers(min_value=4 * 512, max_value=10**6))
    def test_cut_at_most_half_when_above_floor(self, cwnd):
        cut = P.cut_ssthresh(RENO, cwnd, 10**9, MSS)
        assert cut <= cwnd // 2


class TestBehaviorLabels:
    def test_label_with_version(self):
        assert SOLARIS_23.label() == "solaris-2.3"

    def test_label_without_version(self):
        assert RENO.label() == "reno"

    def test_frozen(self):
        with pytest.raises(Exception):
            RENO.name = "other"
