"""Connection-establishment behavior (§2's [St96] observations)."""

from dataclasses import replace

import pytest

from repro.capture.filter import attach_filter_pair
from repro.netsim.engine import Engine
from repro.netsim.link import DeterministicLoss
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte


def handshake_run(behavior=None, forward_loss=None, reverse_loss=None,
                  data_size=4096, max_duration=120):
    engine = Engine()
    path = build_path(engine, forward_loss=forward_loss,
                      reverse_loss=reverse_loss)
    sender_filter, receiver_filter = attach_filter_pair(path)
    result = run_bulk_transfer(behavior or get_behavior("reno"),
                               data_size=data_size, path=path,
                               max_duration=max_duration)
    return result, sender_filter.trace(), receiver_filter.trace()


class TestSynAckLoss:
    def test_lost_synack_recovered_by_syn_retry(self):
        result, sender_trace, receiver_trace = handshake_run(
            reverse_loss=DeterministicLoss(drop_nth=[1]))
        assert result.completed
        # The server saw the retransmitted SYN and re-sent its SYN-ack.
        server_syns = [r for r in receiver_trace if r.is_syn
                       and not r.has_ack]
        assert len(server_syns) == 2
        synacks = [r for r in receiver_trace if r.is_syn and r.has_ack]
        assert len(synacks) == 2

    def test_two_lost_synacks(self):
        result, _, receiver_trace = handshake_run(
            reverse_loss=DeterministicLoss(drop_nth=[1, 2]))
        assert result.completed
        server_syns = [r for r in receiver_trace if r.is_syn
                       and not r.has_ack]
        assert len(server_syns) == 3

    def test_syn_retry_uses_exponential_backoff(self):
        _, sender_trace, _ = handshake_run(
            reverse_loss=DeterministicLoss(drop_nth=[1, 2]))
        syns = [r.timestamp for r in sender_trace
                if r.is_syn and not r.has_ack]
        gaps = [b - a for a, b in zip(syns, syns[1:])]
        assert len(gaps) == 2
        assert gaps[1] == pytest.approx(gaps[0] * 2, rel=0.05)


class TestBrokenSynTimer:
    def broken(self):
        return replace(get_behavior("trumpet-2.0b"),
                       initial_syn_timeout=0.040, syn_backoff_factor=1.0,
                       max_syn_retries=40)

    def test_storm_rate(self):
        """[St96]: storms of tens of SYNs per second."""
        result, sender_trace, _ = handshake_run(
            behavior=self.broken(),
            forward_loss=DeterministicLoss(predicate=lambda s: "drop"))
        syns = [r.timestamp for r in sender_trace if r.is_syn]
        rate = (len(syns) - 1) / (syns[-1] - syns[0])
        assert rate >= 20
        assert not result.completed

    def test_broken_timer_still_connects_on_good_path(self):
        result, _, _ = handshake_run(behavior=self.broken())
        assert result.completed

    def test_configured_retry_cap_respected(self):
        capped = replace(self.broken(), max_syn_retries=5)
        _, sender_trace, _ = handshake_run(
            behavior=capped,
            forward_loss=DeterministicLoss(predicate=lambda s: "drop"))
        syns = [r for r in sender_trace if r.is_syn]
        assert len(syns) == 1 + 5       # the initial SYN plus 5 retries


class TestAnalysisWithSynRetries:
    def test_analyzer_tolerates_duplicate_handshake(self):
        from repro.core import analyze_sender, analyze_receiver
        result, sender_trace, receiver_trace = handshake_run(
            reverse_loss=DeterministicLoss(drop_nth=[1]),
            data_size=kbyte(20))
        assert result.completed
        analysis = analyze_sender(sender_trace, get_behavior("reno"))
        assert analysis.violation_count == 0
        receiver_analysis = analyze_receiver(receiver_trace,
                                             get_behavior("reno"))
        assert receiver_analysis.gratuitous == []
