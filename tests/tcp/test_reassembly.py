"""Receiver reassembly under arbitrary arrival orders (hypothesis).

The receiver's out-of-order queue must deliver exactly the sent byte
stream whatever order (and however duplicated) segments arrive — and
its acks must never claim data it has not contiguously received.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.probing import Arrival, drive_receiver
from repro.packets import SYN
from repro.tcp.catalog import get_behavior
from repro.units import seq_le

MSS = 512
SEGMENTS = 6


def arrival_schedule(order, duplicates):
    """Build a probe script delivering SEGMENTS segments in *order*,
    with the indices in *duplicates* delivered twice."""
    script = [Arrival(0.0, seq=0, flags=SYN, mss_option=MSS)]
    time = 0.05
    sequence = list(order) + [order[i] for i in sorted(duplicates)]
    for index in sequence:
        script.append(Arrival(time, seq=1 + index * MSS, payload=MSS))
        time += 0.03
    return script


orders = st.permutations(range(SEGMENTS))
duplicate_sets = st.sets(st.integers(min_value=0, max_value=SEGMENTS - 1),
                         max_size=3)
behaviors = st.sampled_from(["reno", "linux-1.0", "solaris-2.4",
                             "sunos-4.1.3"])


@given(orders, duplicate_sets, behaviors)
@settings(max_examples=40, deadline=None)
def test_final_ack_covers_everything(order, duplicates, label):
    trace = drive_receiver(get_behavior(label),
                           arrival_schedule(order, duplicates),
                           duration=10.0)
    acks = [r for r in trace
            if r.src.addr == "receiver" and r.has_ack and not r.is_syn]
    assert acks, "receiver never acked"
    final = max(a.ack for a in acks)
    assert final == 1 + SEGMENTS * MSS


@given(orders, duplicate_sets, behaviors)
@settings(max_examples=40, deadline=None)
def test_acks_never_exceed_contiguous_data(order, duplicates, label):
    script = arrival_schedule(order, duplicates)
    trace = drive_receiver(get_behavior(label), script, duration=10.0)
    # Replay arrivals to know the contiguous boundary at each instant.
    arrivals = sorted(((a.at, a.seq, a.payload) for a in script[1:]),
                      key=lambda x: x[0])

    def contiguous_at(t):
        received = set()
        for at, seq, payload in arrivals:
            if at <= t and payload:
                received.add(seq)
        boundary = 1
        while boundary in received:
            boundary += MSS
        return boundary

    for record in trace:
        if record.src.addr == "receiver" and record.has_ack \
                and not record.is_syn:
            assert seq_le(record.ack, contiguous_at(record.timestamp)), (
                f"ack {record.ack} at {record.timestamp} exceeds "
                f"contiguous data")


@given(orders, behaviors)
@settings(max_examples=30, deadline=None)
def test_out_of_order_arrivals_elicit_immediate_dup_acks(order, label):
    """§7: any out-of-sequence arrival is a mandatory ack obligation."""
    trace = drive_receiver(get_behavior(label),
                           arrival_schedule(order, set()), duration=10.0)
    records = trace.records
    for i, record in enumerate(records):
        if record.src.addr != "receiver" and record.payload > 0:
            # find the receiver state: is this above a hole?
            seen = {r.seq for r in records[:i]
                    if r.src.addr != "receiver" and r.payload > 0}
            boundary = 1
            while boundary in seen:
                boundary += MSS
            if record.seq > boundary:
                # must be acked within the response delay window
                followers = [r for r in records[i + 1:i + 4]
                             if r.src.addr == "receiver" and r.has_ack]
                assert followers, "no ack after out-of-order arrival"
                assert followers[0].timestamp - record.timestamp < 0.005
