"""Catalog contents reflect the paper's documented behaviors."""

import pytest

from repro.tcp.catalog import (
    CATALOG,
    CORE_STUDY,
    SECOND_GROUP,
    LINUX_10,
    LINUX_20,
    NET3,
    RENO,
    SOLARIS_23,
    SOLARIS_24,
    SUNOS_413,
    TAHOE,
    TRUMPET,
    get_behavior,
    implementation_names,
)
from repro.tcp.params import (
    AckPolicy,
    IncreaseRule,
    Lineage,
    QuenchResponse,
    RTOStyle,
)


class TestRegistry:
    def test_all_core_study_implementations_present(self):
        for label in CORE_STUDY:
            assert label in CATALOG

    def test_second_group_present(self):
        for label in SECOND_GROUP:
            assert label in CATALOG

    def test_get_behavior_by_label(self):
        assert get_behavior("solaris-2.4") is SOLARIS_24

    def test_unknown_label_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_behavior("freebsd-99")

    def test_names_sorted(self):
        names = implementation_names()
        assert names == sorted(names)

    def test_labels_are_keys(self):
        for label, behavior in CATALOG.items():
            assert behavior.label() == label


class TestGenericBases:
    """§8.1, §8.2: the Tahoe and Reno reference behaviors."""

    def test_tahoe_has_no_fast_recovery(self):
        assert TAHOE.fast_retransmit and not TAHOE.fast_recovery

    def test_tahoe_uses_eqn1(self):
        assert TAHOE.increase_rule is IncreaseRule.EQN1

    def test_tahoe_ssthresh_floor_one_mss(self):
        assert TAHOE.ssthresh_min_segments == 1

    def test_tahoe_strict_ca_test(self):
        assert not TAHOE.ca_on_equal

    def test_reno_has_fast_recovery(self):
        assert RENO.fast_recovery

    def test_reno_uses_eqn2(self):
        assert RENO.increase_rule is IncreaseRule.EQN2

    def test_reno_carries_deflation_bugs(self):
        assert RENO.header_prediction_bug and RENO.fencepost_bug


class TestDocumentedBehaviors:
    """The major per-implementation findings of §§8.4-8.6, §10."""

    def test_net3_uninitialized_cwnd_bug(self):
        assert NET3.uninitialized_cwnd_bug

    def test_sunos_is_tahoe_derived(self):
        assert SUNOS_413.lineage is Lineage.TAHOE
        assert not SUNOS_413.fast_recovery

    def test_linux10_broken_retransmission(self):
        assert LINUX_10.retransmit_whole_flight
        assert LINUX_10.dup_ack_triggers_flight_retransmit
        assert not LINUX_10.fast_retransmit

    def test_linux10_acks_every_packet(self):
        assert LINUX_10.ack_policy is AckPolicy.EVERY_PACKET

    def test_linux10_ssthresh_init_one_segment(self):
        assert LINUX_10.initial_ssthresh_segments == 1

    def test_linux10_quench_decrements_cwnd(self):
        assert LINUX_10.quench_response is QuenchResponse.DECREMENT_CWND

    def test_linux10_backoff_not_fully_doubling(self):
        assert LINUX_10.backoff_factor < 2.0

    def test_solaris_low_initial_rto(self):
        assert SOLARIS_23.initial_rto == pytest.approx(0.3)

    def test_solaris_rto_collapse_bug(self):
        assert SOLARIS_23.rto_collapse_on_rexmit_ack

    def test_solaris_fast_recovery_disabled_by_bug(self):
        assert SOLARIS_23.fast_recovery
        assert SOLARIS_23.fast_recovery_disabled_by_bug

    def test_solaris_50ms_ack_timer(self):
        assert SOLARIS_23.ack_policy is AckPolicy.INTERVAL_50MS
        assert SOLARIS_23.delayed_ack_timeout == pytest.approx(0.050)

    def test_solaris_quench_halves_ssthresh(self):
        assert (SOLARIS_23.quench_response
                is QuenchResponse.SLOW_START_HALVE_SSTHRESH)

    def test_solaris_24_fixes_only_acking_bug(self):
        """§8.6: 'The only difference we observed between the two is
        that 2.4 fixes a relatively minor bug in 2.3's acking policy.'"""
        from dataclasses import asdict
        d23, d24 = asdict(SOLARIS_23), asdict(SOLARIS_24)
        differing = {k for k in d23
                     if d23[k] != d24[k] and k != "version"}
        assert differing == {"immediate_ack_on_hole_fill"}

    def test_linux20_fixes_retransmission(self):
        assert not LINUX_20.retransmit_whole_flight
        assert not LINUX_20.dup_ack_triggers_flight_retransmit
        assert LINUX_20.fast_retransmit
        assert LINUX_20.rto_style is RTOStyle.JACOBSON

    def test_trumpet_severe_deficiencies(self):
        assert TRUMPET.retransmit_whole_flight
        assert not TRUMPET.fast_retransmit
        assert TRUMPET.rto_style is RTOStyle.TRUMPET

    def test_independent_lineages(self):
        for label in ("linux-1.0", "solaris-2.3", "trumpet-2.0b",
                      "windows-95"):
            assert CATALOG[label].lineage is Lineage.INDEPENDENT

    def test_variation_axes_all_represented(self):
        """Every §8.3 minor-variation axis appears in some entry."""
        values = list(CATALOG.values())
        assert any(b.mss_confusion for b in values)
        assert any(b.cwnd_init_from_offered_mss for b in values)
        assert any(not b.clear_dupacks_on_timeout for b in values)
        assert any(b.dupack_updates_cwnd for b in values)
        assert any(b.uninitialized_cwnd_bug for b in values)
        rules = {b.increase_rule for b in values}
        assert rules == {IncreaseRule.EQN1, IncreaseRule.EQN2}
        from repro.tcp.params import SsthreshRounding
        roundings = {b.ssthresh_rounding for b in values}
        assert len(roundings) >= 2
