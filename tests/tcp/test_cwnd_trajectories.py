"""Exact congestion-window trajectories.

[BP95] showed the *integer* details of BSD's window arithmetic have
observable consequences, and the whole analyzer depends on
reproducing them exactly.  These tests pin the byte-exact cwnd
evolution of each increase rule and loss response, driving the
analyzer's SenderModel (the shared arithmetic) through scripted ack
sequences.
"""

import pytest

from repro.core.sender.windows import SenderModel
from repro.packets import ACK, Endpoint
from repro.tcp.catalog import RENO, SOLARIS_23, TAHOE, get_behavior
from repro.trace.record import TraceRecord

MSS = 512


def ack_record(t, ack, window=65535):
    return TraceRecord(timestamp=t, src=Endpoint("receiver", 9000),
                       dst=Endpoint("sender", 1024), seq=1, ack=ack,
                       flags=ACK, payload=0, window=window)


def data_record(t, seq, payload=MSS):
    return TraceRecord(timestamp=t, src=Endpoint("sender", 1024),
                       dst=Endpoint("receiver", 9000), seq=seq, ack=1,
                       flags=ACK, payload=payload, window=65535)


def make_model(behavior):
    return SenderModel(behavior, MSS, iss=0, offered_mss=MSS,
                       peer_offered_mss_option=True, start_time=0.0,
                       initial_offered_window=65535)


def drive(model, acks, send_all=True):
    """Feed an alternating send/ack schedule; return cwnd after each ack."""
    trajectory = []
    time = 0.0
    seq = 1
    for ack in acks:
        while send_all and seq < ack:
            model.observe_send(data_record(time, seq), False)
            seq += MSS
            time += 0.001
        model.process_ack(ack_record(time, ack))
        trajectory.append(model.cwnd)
        time += 0.01
    return trajectory


class TestSlowStart:
    def test_cwnd_doubles_per_ack_batch(self):
        model = make_model(RENO)
        acks = [1 + MSS, 1 + 2 * MSS, 1 + 4 * MSS, 1 + 8 * MSS]
        trajectory = drive(model, acks)
        # Each advancing ack adds exactly one MSS in slow start.
        assert trajectory == [2 * MSS, 3 * MSS, 4 * MSS, 5 * MSS]

    def test_every_implementation_starts_at_one_segment(self):
        for label in ("reno", "tahoe", "linux-1.0", "solaris-2.4"):
            model = make_model(get_behavior(label))
            assert model.cwnd == model.cwnd_mss


class TestCongestionAvoidanceArithmetic:
    """Byte-exact Eqn 1 vs Eqn 2 evolution (§8.1, §8.2)."""

    def force_ca(self, behavior, cwnd):
        model = make_model(behavior)
        model.cwnd = cwnd
        model.ssthresh = MSS          # below cwnd: CA applies
        return model

    def test_eqn1_sequence(self):
        model = self.force_ca(TAHOE, 4 * MSS)
        expected = []
        cwnd = 4 * MSS
        for _ in range(5):
            cwnd = cwnd + (MSS * MSS) // cwnd
            expected.append(cwnd)
        trajectory = drive(model, [1 + (k + 1) * MSS for k in range(5)])
        assert trajectory == expected

    def test_eqn2_sequence(self):
        model = self.force_ca(RENO, 4 * MSS)
        expected = []
        cwnd = 4 * MSS
        for _ in range(5):
            cwnd = cwnd + (MSS * MSS) // cwnd + MSS // 8
            expected.append(cwnd)
        trajectory = drive(model, [1 + (k + 1) * MSS for k in range(5)])
        assert trajectory == expected

    def test_eqn2_exceeds_eqn1_cumulatively(self):
        tahoe_model = self.force_ca(TAHOE, 4 * MSS)
        reno_model = self.force_ca(RENO, 4 * MSS)
        acks = [1 + (k + 1) * MSS for k in range(20)]
        tahoe_trajectory = drive(tahoe_model, acks)
        reno_trajectory = drive(reno_model, acks)
        gaps = [r - t for r, t in zip(reno_trajectory, tahoe_trajectory)]
        # Eqn 2's extra MSS/8 keeps Reno strictly ahead, and the gap
        # widens over the run (super-linear vs linear growth, §8.2).
        assert all(g > 0 for g in gaps)
        assert gaps[-1] > gaps[4]
        assert gaps[-1] >= 15 * (MSS // 8)

    def test_integer_truncation_matters(self):
        # 3 segments: MSS*MSS//cwnd = 512*512//1536 = 170, not 170.67
        model = self.force_ca(TAHOE, 3 * MSS)
        trajectory = drive(model, [1 + MSS])
        assert trajectory == [3 * MSS + 170]


class TestLossResponses:
    def prime(self, behavior, packets=8):
        """Model with `packets` outstanding and cwnd grown accordingly."""
        model = make_model(behavior)
        time = 0.0
        for k in range(packets):
            model.observe_send(data_record(time, 1 + k * MSS), False)
            time += 0.001
        model.cwnd = packets * MSS
        return model, time

    def test_reno_fast_retransmit_halves_and_inflates(self):
        model, time = self.prime(RENO)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        # ssthresh = floor(8*512/2 to MSS) = 2048; cwnd = 2048 + 3*512
        assert model.ssthresh == 4 * MSS // 2 * 2  # 2048
        assert model.cwnd == model.ssthresh + 3 * MSS
        assert model.in_fast_recovery

    def test_tahoe_fast_retransmit_collapses(self):
        model, time = self.prime(TAHOE)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        assert model.cwnd == MSS
        assert not model.in_fast_recovery

    def test_recovery_exit_deflates_without_bugs(self):
        from dataclasses import replace
        clean = replace(RENO, header_prediction_bug=False,
                        fencepost_bug=False)
        model, time = self.prime(clean)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        ssthresh = model.ssthresh
        model.process_ack(ack_record(time + 0.1, 1 + 4 * MSS))
        assert model.cwnd == ssthresh

    def test_header_prediction_bug_skips_deflation(self):
        """[BP95]: the fast path forgets to shrink the window when the
        exiting ack covers everything outstanding."""
        model, time = self.prime(RENO)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        inflated = model.cwnd
        # Ack for ALL outstanding data -> header-prediction path.
        model.process_ack(ack_record(time + 0.1, model.highest_sent))
        assert model.cwnd == inflated   # never deflated

    def test_fencepost_bug_spares_one_segment(self):
        from dataclasses import replace
        fencepost = replace(RENO, header_prediction_bug=False)
        model, time = self.prime(fencepost)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        # Deflate cwnd manually into the fencepost's blind spot.
        model.cwnd = model.ssthresh + MSS
        model.process_ack(ack_record(time + 0.1, 1 + 4 * MSS))
        # Within one MSS above ssthresh: the buggy test skips deflation
        # (and the ack's own increase may then apply).
        assert model.cwnd >= model.ssthresh + MSS

    def test_solaris_recovery_bug_collapses_instead(self):
        model, time = self.prime(SOLARIS_23)
        model.process_ack(ack_record(time, 1 + MSS))
        for i in range(3):
            model.process_ack(ack_record(time + 0.01 * (i + 1), 1 + MSS))
        assert not model.in_fast_recovery
        assert model.cwnd == model.cwnd_mss

    def test_timeout_response(self):
        model, time = self.prime(RENO)
        model.process_ack(ack_record(time, 1 + MSS))
        before = model.ssthresh
        model.apply_timeout(time + 2.0)
        assert model.cwnd == MSS
        assert model.ssthresh <= max(before, model.cwnd_mss * 2)
        assert model.snd_nxt == model.snd_una


class TestMssConfusion:
    def test_option_bytes_counted(self):
        """[BP95]'s MSS-confusion: window arithmetic uses MSS+4."""
        confused = get_behavior("hpux-9.05")
        model = make_model(confused)
        assert model.cwnd_mss == MSS + 4
        assert model.cwnd == MSS + 4   # initial cwnd too

    def test_offered_mss_init(self):
        behavior = get_behavior("bsdi-1.1")
        model = SenderModel(behavior, MSS, iss=0, offered_mss=1460,
                            peer_offered_mss_option=True, start_time=0.0,
                            initial_offered_window=65535)
        assert model.cwnd == 1460      # from the offered, not negotiated
