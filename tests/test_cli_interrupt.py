"""Ctrl-C during a batch run: clean exit 130, resumable journal.

Runs the real CLI in a subprocess and delivers a real SIGINT mid-batch,
because KeyboardInterrupt handling cannot be faithfully exercised
in-process (pytest would catch it first).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.corpus import write_corpus

# Big enough that analyzing the whole corpus takes several seconds —
# the interrupt must land while the batch is genuinely mid-flight.
TRACE_BYTES = 786432
COPIES = 8


def run_cli(args, **kwargs):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, **kwargs)


@pytest.fixture(scope="module")
def slow_corpus(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("interrupt-corpus")
    write_corpus(outdir, implementations=["reno"],
                 traces_per_implementation=1, data_size=TRACE_BYTES)
    donor = sorted(outdir.glob("*-sender.pcap"))[0]
    for extra in range(COPIES - 1):
        shutil.copy(donor, outdir / f"reno-{extra + 1:04d}-sender.pcap")
    for receiver in outdir.glob("*-receiver.pcap"):
        receiver.unlink()
    return outdir


class TestBatchInterrupt:
    def test_sigint_exits_130_with_resume_hint(self, slow_corpus, tmp_path):
        out = tmp_path / "out.jsonl"
        journal = tmp_path / "journal.jsonl"
        proc = run_cli(["batch", str(slow_corpus), "--jsonl", str(out),
                        "--jobs", "2", "--journal", str(journal)])
        time.sleep(1.5)
        assert proc.poll() is None, \
            "batch finished before the interrupt landed; corpus too small"
        proc.send_signal(signal.SIGINT)
        _stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130
        assert "interrupted" in stderr
        assert "resume with --resume" in stderr
        assert "Traceback" not in stderr

        # The journal checkpointed some completed work before the
        # interrupt, and a --resume run finishes the rest cleanly.
        completed = max(len(journal.read_text().splitlines()) - 1, 0)
        resumed = run_cli(["batch", str(slow_corpus), "--jsonl", str(out),
                           "--jobs", "2", "--journal", str(journal),
                           "--resume"])
        stdout, stderr = resumed.communicate(timeout=300)
        assert resumed.returncode == 0, stderr
        if completed:
            assert f"resuming from {journal}: {completed} item(s)" in stdout
            assert f"resumed {completed} item(s) from journal" in stdout
        lines = out.read_text().splitlines()
        assert len(lines) == COPIES
        assert all("error" not in json.loads(line) for line in lines)

    def test_interrupt_outside_batch_has_no_resume_hint(self, slow_corpus):
        capture = sorted(slow_corpus.glob("*.pcap"))[0]
        proc = run_cli(["demux", str(capture), "--identify"])
        time.sleep(0.5)
        if proc.poll() is not None:
            pytest.skip("demux finished before the interrupt landed")
        proc.send_signal(signal.SIGINT)
        _stdout, stderr = proc.communicate(timeout=60)
        startup_casualty = proc.returncode == -signal.SIGINT \
            or "KeyboardInterrupt" in stderr
        if proc.returncode != 130 and startup_casualty \
                and "interrupted" not in stderr:
            # On a loaded machine 0.5s can still be interpreter
            # startup: the CLI's clean-exit handling wasn't reached
            # (default disposition kill, rc -SIGINT, or a bare
            # KeyboardInterrupt traceback mid-import).
            pytest.skip("interrupt landed during interpreter startup")
        assert proc.returncode == 130
        assert "interrupted" in stderr
        assert "--resume" not in stderr
        assert "Traceback" not in stderr
