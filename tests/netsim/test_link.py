"""Link timing, queueing, and loss models."""

import pytest

from repro.netsim.engine import Engine
from repro.netsim.link import DeterministicLoss, Link, NoLoss, RandomLoss
from repro.packets import ACK, Endpoint, Segment

A = Endpoint("a", 1)
B = Endpoint("b", 2)


def data_segment(payload=460):
    # wire_size = payload + 40 = 500 bytes for the default
    return Segment(src=A, dst=B, seq=0, ack=0, flags=ACK, payload=payload)


def build_link(engine, bandwidth=1e6, delay=0.01, **kwargs):
    link = Link(engine, bandwidth, delay, **kwargs)
    arrivals = []
    link.deliver = lambda s: arrivals.append((engine.now, s))
    return link, arrivals


class TestTiming:
    def test_single_packet_arrival_time(self):
        engine = Engine()
        link, arrivals = build_link(engine, bandwidth=1e6, delay=0.01)
        link.send(data_segment())  # 500 bytes at 1e6 B/s = 0.5 ms
        engine.run()
        assert arrivals[0][0] == pytest.approx(0.0105)

    def test_serialization_spaces_arrivals(self):
        engine = Engine()
        link, arrivals = build_link(engine, bandwidth=1e6, delay=0.0)
        link.send(data_segment())
        link.send(data_segment())
        engine.run()
        gap = arrivals[1][0] - arrivals[0][0]
        assert gap == pytest.approx(0.0005)

    def test_departure_tap_sees_wire_time(self):
        engine = Engine()
        link, _ = build_link(engine, bandwidth=1e6, delay=0.01)
        taps = []
        link.departure_taps.append(lambda s, t: taps.append(t))
        link.send(data_segment())
        link.send(data_segment())
        engine.run()
        assert taps[0] == pytest.approx(0.0)
        assert taps[1] == pytest.approx(0.0005)  # waits for the transmitter

    def test_transmitter_idles_then_resumes(self):
        engine = Engine()
        link, arrivals = build_link(engine, bandwidth=1e6, delay=0.0)
        link.send(data_segment())
        engine.run()
        engine.schedule(0.0, lambda: link.send(data_segment()))
        engine.run()
        assert len(arrivals) == 2


class TestQueueing:
    def test_queue_overflow_drops(self):
        engine = Engine()
        link, arrivals = build_link(engine, queue_limit=2)
        for _ in range(5):
            link.send(data_segment())
        engine.run()
        # 1 transmitting + 2 queued; the other 2 dropped.
        assert len(arrivals) == 3
        assert link.stats_queue_drops == 2

    def test_queue_length_reports_waiting(self):
        engine = Engine()
        link, _ = build_link(engine, queue_limit=10)
        for _ in range(4):
            link.send(data_segment())
        assert link.queue_length == 3  # one in flight

    def test_rejects_bad_parameters(self):
        engine = Engine()
        with pytest.raises(ValueError):
            Link(engine, bandwidth=0, delay=0.01)
        with pytest.raises(ValueError):
            Link(engine, bandwidth=1e6, delay=-1)
        with pytest.raises(ValueError):
            Link(engine, bandwidth=1e6, delay=0, queue_limit=0)


class TestLossModels:
    def test_no_loss_delivers_everything(self):
        engine = Engine()
        link, arrivals = build_link(engine, loss=NoLoss())
        for _ in range(10):
            link.send(data_segment())
        engine.run()
        assert len(arrivals) == 10

    def test_random_loss_drops_roughly_at_rate(self):
        engine = Engine()
        link, arrivals = build_link(engine, loss=RandomLoss(0.3, seed=1),
                                    queue_limit=2000)
        for _ in range(1000):
            link.send(data_segment())
        engine.run()
        assert 600 <= len(arrivals) <= 800

    def test_random_loss_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RandomLoss(drop_rate=1.5)

    def test_deterministic_loss_drops_exact_packets(self):
        engine = Engine()
        link, arrivals = build_link(
            engine, loss=DeterministicLoss(drop_nth=[2, 4]), queue_limit=100)
        segments = [data_segment() for _ in range(5)]
        for segment in segments:
            link.send(segment)
        engine.run()
        delivered_ids = {s.packet_id for _, s in arrivals}
        assert segments[0].packet_id in delivered_ids
        assert segments[1].packet_id not in delivered_ids
        assert segments[3].packet_id not in delivered_ids
        assert len(arrivals) == 3

    def test_corruption_marks_but_delivers(self):
        engine = Engine()
        link, arrivals = build_link(
            engine, loss=DeterministicLoss(corrupt_nth=[1]), queue_limit=100)
        link.send(data_segment())
        link.send(data_segment())
        engine.run()
        assert len(arrivals) == 2
        assert arrivals[0][1].corrupted
        assert not arrivals[1][1].corrupted

    def test_stats_accounting(self):
        engine = Engine()
        link, _ = build_link(
            engine, loss=DeterministicLoss(drop_nth=[1], corrupt_nth=[2]),
            queue_limit=100)
        for _ in range(3):
            link.send(data_segment())
        engine.run()
        assert link.stats_offered == 3
        assert link.stats_loss_drops == 1
        assert link.stats_corrupted == 1
        assert link.stats_delivered == 2
