"""Cross-traffic sources and analysis robustness under contention."""

import pytest

from repro.core import analyze_sender, calibrate_trace
from repro.capture.filter import attach_filter_pair
from repro.netsim.crosstraffic import CrossTrafficSource
from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte, mbit


class TestSource:
    def test_rate_approximated(self):
        engine = Engine()
        link = Link(engine, mbit(10), 0.001, queue_limit=1000)
        delivered = []
        link.deliver = delivered.append
        source = CrossTrafficSource(engine, link, rate=100_000,
                                    packet_size=500)
        source.start()
        engine.run(until=1.0)
        bytes_sent = sum(s.wire_size for s in delivered)
        assert bytes_sent == pytest.approx(100_000, rel=0.05)

    def test_on_off_modulation(self):
        engine = Engine()
        link = Link(engine, mbit(10), 0.001, queue_limit=1000)
        arrivals = []
        link.deliver = lambda s: arrivals.append(engine.now)
        source = CrossTrafficSource(engine, link, rate=100_000,
                                    packet_size=500,
                                    on_time=0.1, off_time=0.1)
        source.start()
        engine.run(until=1.0)
        in_off_period = [t for t in arrivals if 0.11 < (t % 0.2) < 0.19]
        assert len(in_off_period) < len(arrivals) * 0.1

    def test_stop(self):
        engine = Engine()
        link = Link(engine, mbit(10), 0.001)
        link.deliver = lambda s: None
        source = CrossTrafficSource(engine, link, rate=50_000)
        source.start()
        engine.run(until=0.5)
        count = source.packets_sent
        source.stop()
        engine.run(until=1.0)
        assert source.packets_sent == count

    def test_parameter_validation(self):
        engine = Engine()
        link = Link(engine, mbit(10), 0.001)
        with pytest.raises(ValueError):
            CrossTrafficSource(engine, link, rate=0)
        with pytest.raises(ValueError):
            CrossTrafficSource(engine, link, rate=1000, packet_size=20)


def contended_transfer(implementation: str, load_fraction: float):
    """A transfer sharing its bottleneck with on/off cross-traffic."""
    engine = Engine()
    path = build_path(engine, bottleneck_bandwidth=mbit(1.0),
                      bottleneck_delay=0.030, queue_limit=40)
    sender_filter, receiver_filter = attach_filter_pair(path)
    source = CrossTrafficSource(
        engine, path.forward_bottleneck,
        rate=mbit(1.0) * load_fraction, packet_size=512,
        on_time=0.25, off_time=0.25)
    source.start()
    result = run_bulk_transfer(get_behavior(implementation),
                               data_size=kbyte(60), path=path,
                               max_duration=300)
    return result, sender_filter.trace(), receiver_filter.trace()


class TestAnalysisUnderContention:
    """The analyzer and calibration must hold up when queueing noise
    comes from competing flows, not just the transfer's own bursts."""

    @pytest.mark.parametrize("implementation", ["reno", "solaris-2.4"])
    def test_self_analysis_stays_clean(self, implementation):
        result, sender_trace, _ = contended_transfer(implementation, 0.4)
        assert result.completed
        analysis = analyze_sender(sender_trace,
                                  get_behavior(implementation))
        assert analysis.violation_count == 0

    def test_no_false_calibration_findings(self):
        result, sender_trace, receiver_trace = contended_transfer("reno",
                                                                  0.4)
        report = calibrate_trace(sender_trace, get_behavior("reno"),
                                 peer_trace=receiver_trace)
        assert report.clean, report.summary()

    def test_contention_actually_bites(self):
        quiet, _, _ = contended_transfer("reno", 0.0001)
        loaded, _, _ = contended_transfer("reno", 0.6)
        assert loaded.duration > quiet.duration
