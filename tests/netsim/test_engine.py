"""Event-engine semantics: ordering, cancellation, bounds."""

import pytest

from repro.netsim.engine import Engine


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(0.3, lambda: log.append("c"))
        engine.schedule(0.1, lambda: log.append("a"))
        engine.schedule(0.2, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        engine = Engine()
        log = []
        for name in "abcd":
            engine.schedule(1.0, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c", "d"]

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(0.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.5]
        assert engine.now == 0.5

    def test_nested_scheduling(self):
        engine = Engine()
        log = []
        engine.schedule(0.1, lambda: engine.schedule(
            0.1, lambda: log.append(engine.now)))
        engine.run()
        assert log == [pytest.approx(0.2)]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        engine = Engine()
        log = []
        timer = engine.schedule(0.1, lambda: log.append("x"))
        timer.cancel()
        engine.run()
        assert log == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        timer = engine.schedule(0.1, lambda: None)
        timer.cancel()
        timer.cancel()
        engine.run()

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        engine.schedule(0.1, lambda: None)
        timer = engine.schedule(0.2, lambda: None)
        timer.cancel()
        assert engine.pending() == 1


class TestRunBounds:
    def test_until_stops_the_clock(self):
        engine = Engine()
        log = []
        engine.schedule(1.0, lambda: log.append("early"))
        engine.schedule(3.0, lambda: log.append("late"))
        engine.run(until=2.0)
        assert log == ["early"]
        assert engine.now == 2.0

    def test_until_includes_exact_time(self):
        engine = Engine()
        log = []
        engine.schedule(2.0, lambda: log.append("edge"))
        engine.run(until=2.0)
        assert log == ["edge"]

    def test_resume_after_until(self):
        engine = Engine()
        log = []
        engine.schedule(3.0, lambda: log.append("late"))
        engine.run(until=1.0)
        engine.run()
        assert log == ["late"]

    def test_max_events_bound(self):
        engine = Engine()
        count = [0]

        def reschedule():
            count[0] += 1
            engine.schedule(0.001, reschedule)

        engine.schedule(0.001, reschedule)
        engine.run(max_events=50)
        assert count[0] == 50

    def test_events_run_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(0.1, lambda: None)
        engine.run()
        assert engine.events_run == 5

    def test_until_advances_clock_even_with_empty_queue(self):
        engine = Engine()
        engine.run(until=7.5)
        assert engine.now == 7.5
