"""Host demux, routing, and router source-quench behavior."""

import pytest

from repro.netsim.engine import Engine
from repro.netsim.link import Link
from repro.netsim.node import Host, Router
from repro.packets import ACK, Endpoint, FlowKey, Segment, SourceQuench


class Sink:
    """Minimal connection object for demux tests."""

    def __init__(self):
        self.segments = []
        self.quenches = []

    def receive(self, segment):
        self.segments.append(segment)

    def receive_quench(self, quench):
        self.quenches.append(quench)


def wire_pair(engine):
    """Two hosts joined by a pair of links."""
    a = Host(engine, "a")
    b = Host(engine, "b")
    ab = Link(engine, 1e6, 0.001)
    ba = Link(engine, 1e6, 0.001)
    a.add_route("b", ab)
    b.add_route("a", ba)
    b.attach_inbound(ab)
    a.attach_inbound(ba)
    return a, b


class TestHost:
    def test_demux_to_registered_flow(self):
        engine = Engine()
        a, b = wire_pair(engine)
        local = Endpoint("b", 80)
        remote = Endpoint("a", 1024)
        sink = Sink()
        b.register(FlowKey(local, remote), sink)
        a.send(Segment(src=remote, dst=local, seq=0, ack=0, flags=ACK,
                       payload=10))
        engine.run()
        assert len(sink.segments) == 1

    def test_unregistered_flow_discarded(self):
        engine = Engine()
        a, b = wire_pair(engine)
        a.send(Segment(src=Endpoint("a", 1), dst=Endpoint("b", 2),
                       seq=0, ack=0, flags=ACK))
        engine.run()  # no exception, packet silently dropped

    def test_duplicate_registration_rejected(self):
        engine = Engine()
        host = Host(engine, "h")
        key = FlowKey(Endpoint("h", 1), Endpoint("x", 2))
        host.register(key, Sink())
        with pytest.raises(ValueError):
            host.register(key, Sink())

    def test_unregister_then_reregister(self):
        engine = Engine()
        host = Host(engine, "h")
        key = FlowKey(Endpoint("h", 1), Endpoint("x", 2))
        host.register(key, Sink())
        host.unregister(key)
        host.register(key, Sink())

    def test_send_enforces_source_address(self):
        engine = Engine()
        host = Host(engine, "h")
        with pytest.raises(ValueError):
            host.send(Segment(src=Endpoint("other", 1),
                              dst=Endpoint("x", 2), seq=0, ack=0, flags=ACK))

    def test_send_without_route_rejected(self):
        engine = Engine()
        host = Host(engine, "h")
        with pytest.raises(ValueError):
            host.send(Segment(src=Endpoint("h", 1), dst=Endpoint("x", 2),
                              seq=0, ack=0, flags=ACK))

    def test_corrupted_packet_dropped_after_tap(self):
        engine = Engine()
        a, b = wire_pair(engine)
        local = Endpoint("b", 80)
        remote = Endpoint("a", 1024)
        sink = Sink()
        b.register(FlowKey(local, remote), sink)
        tapped = []
        b.recv_taps.append(lambda s, t: tapped.append(s))
        segment = Segment(src=remote, dst=local, seq=0, ack=0, flags=ACK,
                          payload=10, corrupted=True)
        a.send(segment)
        engine.run()
        assert len(tapped) == 1       # the filter saw it ...
        assert sink.segments == []    # ... but TCP never did

    def test_send_taps_see_outbound(self):
        engine = Engine()
        a, b = wire_pair(engine)
        tapped = []
        a.send_taps.append(lambda s, t: tapped.append((s, t)))
        a.send(Segment(src=Endpoint("a", 1), dst=Endpoint("b", 2),
                       seq=0, ack=0, flags=ACK))
        assert len(tapped) == 1

    def test_quench_not_recorded_by_taps(self):
        engine = Engine()
        host = Host(engine, "h")
        tapped = []
        host.recv_taps.append(lambda s, t: tapped.append(s))
        local = Endpoint("h", 1)
        remote = Endpoint("x", 2)
        sink = Sink()
        host.register(FlowKey(local, remote), sink)
        host.deliver_quench(SourceQuench(target=local,
                                         flow=FlowKey(local, remote)))
        assert sink.quenches and not tapped


class TestRouter:
    def test_forwards_by_destination(self):
        engine = Engine()
        router = Router(engine)
        out = Link(engine, 1e6, 0.001)
        arrivals = []
        out.deliver = lambda s: arrivals.append(s)
        router.add_route("b", out)
        router.forward(Segment(src=Endpoint("a", 1), dst=Endpoint("b", 2),
                               seq=0, ack=0, flags=ACK))
        engine.run()
        assert len(arrivals) == 1
        assert router.stats_forwarded == 1

    def test_unroutable_silently_discarded(self):
        engine = Engine()
        router = Router(engine)
        router.forward(Segment(src=Endpoint("a", 1), dst=Endpoint("zz", 2),
                               seq=0, ack=0, flags=ACK))
        assert router.stats_forwarded == 0

    def test_quench_fires_on_queue_buildup(self):
        engine = Engine()
        router = Router(engine, quench_threshold=3)
        sender = Host(engine, "a")
        router.quench_target = sender
        local = Endpoint("a", 1)
        remote = Endpoint("b", 2)
        sink = Sink()
        sender.register(FlowKey(local, remote), sink)
        out = Link(engine, 1e5, 0.001, queue_limit=100)
        out.deliver = lambda s: None
        router.add_route("b", out)
        for _ in range(10):
            router.forward(Segment(src=local, dst=remote, seq=0, ack=0,
                                   flags=ACK, payload=500))
        engine.run()
        assert router.stats_quenches == 1
        assert len(sink.quenches) == 1

    def test_quench_rearms_after_drain(self):
        engine = Engine()
        router = Router(engine, quench_threshold=3)
        sender = Host(engine, "a")
        router.quench_target = sender
        local = Endpoint("a", 1)
        remote = Endpoint("b", 2)
        sink = Sink()
        sender.register(FlowKey(local, remote), sink)
        out = Link(engine, 1e6, 0.0, queue_limit=100)
        out.deliver = lambda s: None
        router.add_route("b", out)

        def burst():
            for _ in range(6):
                router.forward(Segment(src=local, dst=remote, seq=0, ack=0,
                                       flags=ACK, payload=500))

        burst()
        engine.run()          # queue drains fully -> re-arm
        engine.schedule(0.0, burst)
        engine.run()
        assert router.stats_quenches == 2
