"""Topology builder wiring."""

import pytest

from repro.netsim.engine import Engine
from repro.netsim.link import RandomLoss
from repro.netsim.network import build_path
from repro.packets import ACK, Endpoint, FlowKey, Segment
from repro.units import mbit


class Sink:
    def __init__(self):
        self.segments = []

    def receive(self, segment):
        self.segments.append(segment)

    def receive_quench(self, quench):
        pass


class TestBuildPath:
    def test_forward_delivery(self):
        engine = Engine()
        path = build_path(engine)
        local = Endpoint("receiver", 80)
        remote = Endpoint("sender", 1024)
        sink = Sink()
        path.receiver.register(FlowKey(local, remote), sink)
        path.sender.send(Segment(src=remote, dst=local, seq=0, ack=0,
                                 flags=ACK, payload=100))
        engine.run()
        assert len(sink.segments) == 1

    def test_reverse_delivery(self):
        engine = Engine()
        path = build_path(engine)
        local = Endpoint("sender", 1024)
        remote = Endpoint("receiver", 80)
        sink = Sink()
        path.sender.register(FlowKey(local, remote), sink)
        path.receiver.send(Segment(src=remote, dst=local, seq=0, ack=0,
                                   flags=ACK))
        engine.run()
        assert len(sink.segments) == 1

    def test_rtt_property(self):
        engine = Engine()
        path = build_path(engine, access_delay=0.001,
                          bottleneck_delay=0.030)
        assert path.rtt == pytest.approx(0.062)

    def test_arrival_time_matches_path_delays(self):
        engine = Engine()
        path = build_path(engine, access_bandwidth=mbit(10),
                          access_delay=0.001, bottleneck_bandwidth=mbit(1),
                          bottleneck_delay=0.030)
        local = Endpoint("receiver", 80)
        remote = Endpoint("sender", 1024)
        sink = Sink()
        arrival = []
        path.receiver.recv_taps.append(lambda s, t: arrival.append(t))
        path.receiver.register(FlowKey(local, remote), sink)
        path.sender.send(Segment(src=remote, dst=local, seq=0, ack=0,
                                 flags=ACK, payload=472))  # 512 on the wire
        engine.run()
        # access: 512/1.25e6 + 1ms; bottleneck: 512/1.25e5 + 30ms
        expected = 512 / 1.25e6 + 0.001 + 512 / 1.25e5 + 0.030
        assert arrival[0] == pytest.approx(expected)

    def test_forward_loss_only_affects_data_direction(self):
        engine = Engine()
        path = build_path(engine, forward_loss=RandomLoss(1.0, seed=0))
        data_sink, ack_sink = Sink(), Sink()
        path.receiver.register(
            FlowKey(Endpoint("receiver", 80), Endpoint("sender", 1024)),
            data_sink)
        path.sender.register(
            FlowKey(Endpoint("sender", 1024), Endpoint("receiver", 80)),
            ack_sink)
        path.sender.send(Segment(src=Endpoint("sender", 1024),
                                 dst=Endpoint("receiver", 80),
                                 seq=0, ack=0, flags=ACK, payload=10))
        path.receiver.send(Segment(src=Endpoint("receiver", 80),
                                   dst=Endpoint("sender", 1024),
                                   seq=0, ack=0, flags=ACK))
        engine.run()
        assert data_sink.segments == []     # dropped at the bottleneck
        assert len(ack_sink.segments) == 1  # reverse path unaffected

    def test_quench_threshold_configures_router(self):
        engine = Engine()
        path = build_path(engine, quench_threshold=5)
        assert path.router.quench_threshold == 5
        assert path.router.quench_target is path.sender
