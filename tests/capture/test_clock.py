"""Clock models (§3.1.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capture.clock import PerfectClock, SkewedClock, SteppingClock

times = st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)


class TestPerfectClock:
    @given(times)
    def test_identity(self, t):
        assert PerfectClock().read(t) == t


class TestSkewedClock:
    def test_rate_scales(self):
        clock = SkewedClock(rate=1.001)
        assert clock.read(1000.0) == pytest.approx(1001.0)

    def test_offset_shifts(self):
        clock = SkewedClock(offset=5.0)
        assert clock.read(1.0) == pytest.approx(6.0)

    @given(times, times)
    def test_monotone_when_rate_positive(self, a, b):
        clock = SkewedClock(rate=1.0001, offset=3.0)
        earlier, later = sorted((a, b))
        assert clock.read(earlier) <= clock.read(later)


class TestSteppingClock:
    def test_no_steps_behaves_like_skewed(self):
        clock = SteppingClock(rate=1.0, offset=2.0)
        assert clock.read(10.0) == pytest.approx(12.0)

    def test_backward_step_applies_after_time(self):
        clock = SteppingClock(steps=[(5.0, -1.0)])
        assert clock.read(4.9) == pytest.approx(4.9)
        assert clock.read(5.0) == pytest.approx(4.0)
        assert clock.read(6.0) == pytest.approx(5.0)

    def test_backward_step_causes_time_travel(self):
        clock = SteppingClock(steps=[(5.0, -1.0)])
        assert clock.read(5.1) < clock.read(4.9)

    def test_multiple_steps_accumulate(self):
        clock = SteppingClock(steps=[(1.0, -0.5), (2.0, -0.5)])
        assert clock.read(3.0) == pytest.approx(2.0)

    def test_forward_step(self):
        clock = SteppingClock(steps=[(1.0, +2.0)])
        assert clock.read(1.5) == pytest.approx(3.5)

    def test_models_periodic_hard_sync(self):
        """The paper's BSDI/NetBSD scenario: a fast clock yanked back
        periodically — each yank is a time-travel opportunity."""
        clock = SteppingClock(rate=1.01,
                              steps=[(10.0, -0.1), (20.0, -0.1)])
        assert clock.read(10.0) < clock.read(9.999)
