"""Packet filters and vantage attachment."""

import pytest

from repro.capture.clock import SkewedClock, SteppingClock
from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)
from repro.capture.filter import PacketFilter
from repro.packets import ACK, Endpoint, Segment

from tests.conftest import cached_transfer


def make_segment(seq=0, payload=100):
    return Segment(src=Endpoint("a", 1), dst=Endpoint("b", 2), seq=seq,
                   ack=0, flags=ACK, payload=payload)


class TestBasicRecording:
    def test_records_in_order(self):
        packet_filter = PacketFilter()
        for i in range(5):
            packet_filter.observe_outbound(make_segment(seq=i * 100),
                                           float(i))
        trace = packet_filter.trace()
        assert [r.timestamp for r in trace] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_records_snapshot_fields(self):
        packet_filter = PacketFilter()
        segment = make_segment(seq=500, payload=99)
        packet_filter.observe_inbound(segment, 1.5)
        record = packet_filter.trace().records[0]
        assert (record.seq, record.payload, record.timestamp) == (500, 99, 1.5)
        assert record.packet_id == segment.packet_id

    def test_perfect_filter_reports_zero_drops(self):
        packet_filter = PacketFilter()
        assert packet_filter.trace().reported_drops == 0

    def test_clock_applied_to_timestamps(self):
        packet_filter = PacketFilter(clock=SkewedClock(offset=100.0))
        packet_filter.observe_outbound(make_segment(), 1.0)
        assert packet_filter.trace().records[0].timestamp == 101.0


class TestErrorPipeline:
    def test_drop_injector_omits_records(self):
        packet_filter = PacketFilter(drops=DropInjector(rate=1.0))
        packet_filter.observe_outbound(make_segment(), 0.0)
        trace = packet_filter.trace()
        assert len(trace) == 0
        assert trace.reported_drops == 1

    def test_duplication_doubles_outbound_only(self):
        packet_filter = PacketFilter(duplication=DuplicationInjector())
        packet_filter.observe_outbound(make_segment(), 0.0)
        packet_filter.observe_inbound(make_segment(), 1.0)
        assert len(packet_filter.trace()) == 3

    def test_resequencing_reorders_records(self):
        injector = ResequencingInjector(outbound_lag=0.0001,
                                        inbound_lag=0.005, jitter=0.0)
        packet_filter = PacketFilter(resequencing=injector)
        packet_filter.observe_inbound(make_segment(seq=1), 1.0)    # ack first
        packet_filter.observe_outbound(make_segment(seq=2), 1.001)
        trace = packet_filter.trace()
        assert trace.records[0].seq == 2   # outbound overtook in the trace

    def test_backward_clock_step_produces_time_travel(self):
        clock = SteppingClock(steps=[(1.0, -0.5)])
        packet_filter = PacketFilter(clock=clock)
        packet_filter.observe_outbound(make_segment(), 0.9)
        packet_filter.observe_outbound(make_segment(), 1.1)
        records = packet_filter.trace().records
        assert records[1].timestamp < records[0].timestamp


class TestAttachment:
    def test_attach_at_host_sees_both_directions(self):
        transfer = cached_transfer("reno")
        trace = transfer.sender_trace
        flow = trace.primary_flow()
        flows = {r.flow for r in trace}
        assert flow in flows and flow.reversed() in flows

    def test_attach_filter_pair_vantages(self):
        transfer = cached_transfer("reno")
        assert transfer.sender_trace.vantage == "sender"
        assert transfer.receiver_trace.vantage == "receiver"

    def test_pair_traces_cover_same_connection(self):
        transfer = cached_transfer("reno")
        assert (transfer.sender_trace.primary_flow()
                == transfer.receiver_trace.primary_flow())

    def test_sender_records_sends_before_receiver_records_arrivals(self):
        transfer = cached_transfer("reno")
        flow = transfer.sender_trace.primary_flow()
        send_times = {r.packet_id: r.timestamp
                      for r in transfer.sender_trace if r.flow == flow}
        for record in transfer.receiver_trace:
            if record.flow == flow and record.packet_id in send_times:
                assert record.timestamp > send_times[record.packet_id]
