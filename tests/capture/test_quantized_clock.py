"""Finite-resolution timestamps (mid-1990s kernel clocks)."""

import pytest

from repro.capture.clock import QuantizedClock, SkewedClock
from repro.capture.filter import PacketFilter
from repro.core import analyze_sender, calibrate_trace
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior


class TestQuantization:
    def test_rounds_down_to_tick(self):
        clock = QuantizedClock(resolution=0.010)
        assert clock.read(1.2345) == pytest.approx(1.230)

    def test_exact_ticks_unchanged(self):
        clock = QuantizedClock(resolution=0.010)
        assert clock.read(1.230) == pytest.approx(1.230)

    def test_zero_resolution_passthrough(self):
        clock = QuantizedClock(resolution=0.0)
        assert clock.read(1.2345) == 1.2345

    def test_wraps_inner_clock(self):
        clock = QuantizedClock(inner=SkewedClock(offset=100.0),
                               resolution=0.010)
        assert clock.read(1.2345) == pytest.approx(101.230)

    def test_monotone(self):
        clock = QuantizedClock(resolution=0.010)
        values = [clock.read(t / 1000) for t in range(200)]
        assert values == sorted(values)


class TestAnalysisUnderQuantization:
    """The analyzer must tolerate tick-resolution timestamps: heavy
    ties and invisible sub-tick response delays."""

    @pytest.mark.parametrize("resolution", [0.001, 0.010])
    def test_self_analysis_survives(self, resolution):
        packet_filter = PacketFilter(
            vantage="sender", clock=QuantizedClock(resolution=resolution))
        transfer = traced_transfer(get_behavior("reno"), "wan-lossy",
                                   data_size=51200, seed=1,
                                   sender_filter=packet_filter)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert analysis.violation_count == 0

    def test_no_false_time_travel(self):
        packet_filter = PacketFilter(
            vantage="sender", clock=QuantizedClock(resolution=0.010))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=51200,
                                   sender_filter=packet_filter)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert report.time_travel == []

    def test_response_delays_quantized_not_negative(self):
        packet_filter = PacketFilter(
            vantage="sender", clock=QuantizedClock(resolution=0.010))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=51200,
                                   sender_filter=packet_filter)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert all(d >= 0 for d in analysis.response_delays)
        assert analysis.min_response_delay == 0.0  # sub-tick delays vanish
