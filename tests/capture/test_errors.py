"""Error injectors (§3.1)."""

import pytest

from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)
from repro.packets import ACK, Endpoint, Segment


def make_segment(payload=472):
    return Segment(src=Endpoint("a", 1), dst=Endpoint("b", 2), seq=0,
                   ack=0, flags=ACK, payload=payload)


class TestDropInjector:
    def test_zero_rate_drops_nothing(self):
        injector = DropInjector(rate=0.0)
        assert not any(injector.should_drop(make_segment(), True)
                       for _ in range(100))

    def test_rate_respected_roughly(self):
        injector = DropInjector(rate=0.2, seed=1)
        drops = sum(injector.should_drop(make_segment(), True)
                    for _ in range(1000))
        assert 150 <= drops <= 250
        assert injector.true_drops == drops

    def test_accurate_report(self):
        injector = DropInjector(rate=1.0, report_style="accurate")
        injector.should_drop(make_segment(), True)
        assert injector.reported_drops() == 1

    def test_none_report(self):
        injector = DropInjector(rate=1.0, report_style="none")
        injector.should_drop(make_segment(), True)
        assert injector.reported_drops() is None

    def test_lying_zero_report(self):
        injector = DropInjector(rate=1.0, report_style="zero")
        injector.should_drop(make_segment(), True)
        assert injector.reported_drops() == 0

    def test_stale_report_fixed_count(self):
        # The IRIX site reporting exactly 62 drops for 256 traces.
        injector = DropInjector(rate=0.0, report_style="stale")
        assert injector.reported_drops() == 62

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DropInjector(rate=2.0)
        with pytest.raises(ValueError):
            DropInjector(report_style="sometimes")


class TestDuplicationInjector:
    def test_two_timestamps_per_packet(self):
        injector = DuplicationInjector()
        stamps = injector.timestamps(make_segment(), 1.0)
        assert len(stamps) == 2
        assert stamps[0] < stamps[1] or stamps[0] == pytest.approx(stamps[1],
                                                                   abs=1e-3)

    def test_burst_shows_two_slopes(self):
        """Figure 1's signature: first copies at the OS rate, second
        copies at the (slower) wire rate."""
        injector = DuplicationInjector(os_rate=2.5e6, wire_rate=1.0e6)
        firsts, seconds = [], []
        for _ in range(20):
            first, second = injector.timestamps(make_segment(), 0.0)
            firsts.append(first)
            seconds.append(second)
        os_span = firsts[-1] - firsts[0]
        wire_span = seconds[-1] - seconds[0]
        assert wire_span > 2 * os_span

    def test_wire_copy_never_precedes_os_copy(self):
        injector = DuplicationInjector()
        for i in range(50):
            first, second = injector.timestamps(make_segment(), i * 0.001)
            assert second >= first


class TestResequencingInjector:
    def test_inbound_lags_more_than_outbound(self):
        injector = ResequencingInjector(outbound_lag=0.0001,
                                        inbound_lag=0.003, jitter=0.0)
        out = injector.process_time(1.0, outbound=True)
        inbound = injector.process_time(1.0, outbound=False)
        assert inbound - out == pytest.approx(0.0029)

    def test_each_path_preserves_order(self):
        injector = ResequencingInjector(jitter=0.002, seed=3)
        outs = [injector.process_time(i * 0.0001, outbound=True)
                for i in range(50)]
        ins = [injector.process_time(i * 0.0001, outbound=False)
               for i in range(50)]
        assert outs == sorted(outs)
        assert ins == sorted(ins)

    def test_cross_path_inversion_happens(self):
        """An ack arriving (wire) just before a data send can be
        stamped after it: the inversion that wrecks cause-and-effect."""
        injector = ResequencingInjector(outbound_lag=0.0001,
                                        inbound_lag=0.003, jitter=0.0)
        ack_stamp = injector.process_time(1.0, outbound=False)
        data_stamp = injector.process_time(1.0005, outbound=True)
        assert data_stamp < ack_stamp
