"""Fuzzer-found regressions, pinned.

Each test here reconstructs — via the fuzz manglers, exactly as the
fuzzer generates them — a wire shape that used to break the pipeline:

- a truncated MSS option escaped the option walk as a bare
  ``struct.error``, crashing streaming ingest instead of being
  counted as a decode error;
- a zero-length TCP option stalled the walk forever (guarded by the
  same fix);
- link-layer trailer padding leaked into checksum verification, so
  every padded frame was falsely reported corrupted;
- RST+ACK segments were counted as acknowledgments by
  ``Trace.acks()``, corrupting ack-policy analysis of aborted
  connections.
"""

import random

import pytest

from repro.fuzz.ingredients import (
    Frame,
    pad_frames,
    render_pcap,
    rst_abort,
    truncate_mss_frames,
    wrap_sequences,
    zero_length_options,
)
from repro.packets import ACK, RST, SYN, Endpoint
from repro.stream.demux import analyze_stream
from repro.stream.stats import IngestStats
from repro.trace.record import Trace, TraceRecord
from repro.trace.wire import (
    AddressMap,
    PacketDecodeError,
    decode_packet,
    encode_record,
)

from tests.fuzz.test_ingredients import transfer_trace


def syn_packet(addresses: AddressMap) -> bytes:
    record = TraceRecord(timestamp=0.0, src=Endpoint("sender", 1024),
                         dst=Endpoint("receiver", 9000), seq=100, ack=0,
                         flags=SYN, payload=0, window=8192,
                         mss_option=1460)
    return encode_record(record, addresses)


class TestTruncatedMssOption:
    """The minimized reproducer is a single SYN whose option area
    reads nop, nop, then an MSS option with no room for its body."""

    def test_decode_raises_classified_error_not_struct_error(self):
        addresses = AddressMap()
        frame, = truncate_mss_frames([Frame(0.0, syn_packet(addresses))],
                                     random.Random(0), 1.0)
        with pytest.raises(PacketDecodeError) as caught:
            decode_packet(frame.data, 0.0, addresses)
        assert caught.value.kind == "malformed"

    def test_bare_option_area_cut_mid_body(self):
        # The literal byte shape from the bug report: an MSS option
        # (kind=2, length=4) whose body runs past the option area —
        # the walk must not read beyond it.
        addresses = AddressMap()
        packet = bytearray(syn_packet(addresses))
        packet[40:44] = b"\x01\x02\x04\x05"  # nop, then MSS len 4 cut short
        with pytest.raises(PacketDecodeError):
            decode_packet(bytes(packet), 0.0, addresses)

    def test_streaming_ingest_counts_instead_of_crashing(self, tmp_path):
        addresses = AddressMap()
        frames = [Frame(r.timestamp, encode_record(r, addresses))
                  for r in transfer_trace()]
        mangled = truncate_mss_frames(frames, random.Random(0), 1.0)
        path = tmp_path / "truncated-mss.pcap"
        path.write_bytes(render_pcap(mangled))
        stats = IngestStats()
        # Pre-fix this raised struct.error out of the whole pipeline.
        list(analyze_stream(path, identify=False, tolerant=True,
                            stats=stats, addresses=addresses))
        assert stats.decode_errors == 2       # both option-carrying SYNs
        assert stats.records_decoded == len(frames) - 2


class TestZeroLengthOption:
    def test_decode_raises_instead_of_looping(self):
        addresses = AddressMap()
        frame, = zero_length_options([Frame(0.0, syn_packet(addresses))],
                                     random.Random(0), 1.0)
        with pytest.raises(PacketDecodeError) as caught:
            decode_packet(frame.data, 0.0, addresses)
        assert "invalid length 0" in str(caught.value)


class TestTrailerPadding:
    def test_padded_frame_is_not_reported_corrupted(self):
        addresses = AddressMap()
        frames = [Frame(r.timestamp, encode_record(r, addresses))
                  for r in transfer_trace()]
        padded = pad_frames(frames, random.Random(1), pad_fraction=1.0)
        for frame in padded:
            decoded = decode_packet(frame.data, frame.timestamp, addresses)
            # Pre-fix the padding was checksummed as segment bytes and
            # every padded frame came back corrupted.
            assert not decoded.corrupted

    def test_padding_does_not_inflate_payload(self):
        addresses = AddressMap()
        frames = [Frame(r.timestamp, encode_record(r, addresses))
                  for r in transfer_trace()]
        padded = pad_frames(frames, random.Random(1), pad_fraction=1.0)
        for original, frame in zip(transfer_trace(), padded):
            decoded = decode_packet(frame.data, frame.timestamp, addresses)
            assert decoded.payload == original.payload


class TestSequenceWraparound:
    """A transfer crossing 2**32 mid-flight is perfectly legal TCP
    (the ISN is random); any raw sequence-number comparison in the
    pipeline would shatter the flow or crash on it.  Modular
    arithmetic (``seq_diff``/``seq_lt``) must carry it whole."""

    def test_wrapped_transfer_stays_one_whole_flow(self, tmp_path):
        addresses = AddressMap()
        trace = wrap_sequences(transfer_trace(), random.Random(0))
        frames = [Frame(r.timestamp, encode_record(r, addresses))
                  for r in trace.records]
        path = tmp_path / "wrap.pcap"
        path.write_bytes(render_pcap(frames))
        stats = IngestStats()
        reports = list(analyze_stream(path, identify=False, tolerant=True,
                                      stats=stats, addresses=addresses))
        assert stats.records_decoded == len(trace)
        assert len(reports) == 1
        report = reports[0]
        assert report.error is None
        assert len(report.flow.records) == len(trace)


class TestRstExcludedFromAcks:
    def test_rst_abort_trace_yields_no_rst_acks(self):
        trace = rst_abort(transfer_trace(), random.Random(0))
        assert any(r.is_rst for r in trace)
        assert all(not r.is_rst for r in trace.acks())

    def test_hand_built_rst_ack_is_not_an_ack(self):
        sender = Endpoint("sender", 1024)
        receiver = Endpoint("receiver", 9000)
        records = [
            TraceRecord(timestamp=0.0, src=sender, dst=receiver, seq=0,
                        ack=0, flags=SYN, payload=0, window=8192),
            TraceRecord(timestamp=0.1, src=sender, dst=receiver, seq=1,
                        ack=1, flags=ACK, payload=512, window=8192),
            TraceRecord(timestamp=0.2, src=receiver, dst=sender, seq=1,
                        ack=513, flags=ACK, payload=0, window=8192),
            TraceRecord(timestamp=0.3, src=receiver, dst=sender, seq=1,
                        ack=513, flags=RST | ACK, payload=0, window=0),
        ]
        trace = Trace(records=records)
        acks = trace.acks()
        assert len(acks) == 1
        assert not acks[0].is_rst
