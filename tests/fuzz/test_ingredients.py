"""Mangler semantics: each ingredient damages exactly what it claims."""

import random

from repro.packets import ACK, FIN, PSH, RST, SYN, Endpoint
from repro.fuzz.ingredients import (
    Frame,
    damage_checksums,
    duplicate_records,
    fin_rst_close,
    inject_garbage,
    inject_udp,
    pad_frames,
    render_pcap,
    reorder_records,
    rewrite_windows,
    rst_abort,
    strip_mss,
    tear_tail,
    thin_acks,
    time_travel,
    truncate_frames,
    truncate_mss_frames,
    wrap_sequences,
    zero_length_options,
)
from repro.units import SEQ_SPACE, seq_diff
from repro.trace.record import Trace, TraceRecord
from repro.trace.wire import AddressMap, decode_packet, encode_record

SENDER = Endpoint("sender", 1024)
RECEIVER = Endpoint("receiver", 9000)


def rec(t, src, dst, flags=ACK, seq=0, ack=0, payload=0, window=8192,
        mss=None):
    return TraceRecord(timestamp=t, src=src, dst=dst, seq=seq, ack=ack,
                       flags=flags, payload=payload, window=window,
                       mss_option=mss)


def transfer_trace() -> Trace:
    """A small hand-built sender-side transfer trace."""
    records = [
        rec(0.00, SENDER, RECEIVER, flags=SYN, seq=100, mss=1460),
        rec(0.02, RECEIVER, SENDER, flags=SYN | ACK, seq=500, ack=101,
            mss=1460),
        rec(0.03, SENDER, RECEIVER, flags=ACK, seq=101, ack=501),
    ]
    seq = 101
    for i in range(6):
        records.append(rec(0.1 + i * 0.05, SENDER, RECEIVER,
                           flags=ACK | PSH, seq=seq, ack=501, payload=512))
        records.append(rec(0.12 + i * 0.05, RECEIVER, SENDER,
                           flags=ACK, seq=501, ack=seq + 512))
        seq += 512
    records.append(rec(0.5, SENDER, RECEIVER, flags=FIN | ACK, seq=seq,
                       ack=501))
    records.append(rec(0.52, RECEIVER, SENDER, flags=FIN | ACK, seq=501,
                       ack=seq + 1))
    records.append(rec(0.53, SENDER, RECEIVER, flags=ACK, seq=seq + 1,
                       ack=502))
    return Trace(records=records, vantage="sender")


def frames_of(trace: Trace, addresses: AddressMap) -> list:
    return [Frame(r.timestamp, encode_record(r, addresses))
            for r in trace.records]


class TestRecordManglers:
    def test_thin_acks_drops_only_pure_acks(self):
        trace = transfer_trace()
        thinned = thin_acks(trace, random.Random(1), drop_fraction=1.0)
        removed = len(trace) - len(thinned)
        assert removed == sum(1 for r in trace if r.is_pure_ack)
        assert all(not r.is_pure_ack for r in thinned)

    def test_reorder_keeps_the_record_set(self):
        trace = transfer_trace()
        shuffled = reorder_records(trace, random.Random(2),
                                   swap_fraction=1.0)
        assert len(shuffled) == len(trace)
        times = [r.timestamp for r in shuffled]
        assert times != sorted(times)  # genuinely out of order
        assert sorted(times) == sorted(r.timestamp for r in trace)

    def test_rewrite_windows_touches_only_the_ack_direction(self):
        trace = transfer_trace()
        mangled = rewrite_windows(trace, random.Random(0), cap=1000)
        reverse = trace.primary_flow().reversed()
        for before, after in zip(trace, mangled):
            if before.flow == reverse:
                assert after.window == min(before.window, 1000)
            else:
                assert after.window == before.window

    def test_strip_mss_removes_every_option(self):
        mangled = strip_mss(transfer_trace(), random.Random(0))
        assert all(r.mss_option is None for r in mangled)

    def test_rst_abort_appends_reset(self):
        mangled = rst_abort(transfer_trace(), random.Random(0))
        assert mangled[-1].is_rst
        assert len(mangled) < len(transfer_trace())

    def test_rst_abort_stale_data_straggles_after_reset(self):
        mangled = rst_abort(transfer_trace(), random.Random(0),
                            stale_data=True)
        assert mangled[-2].is_rst
        assert mangled[-1].payload > 0
        assert mangled[-1].timestamp > mangled[-2].timestamp

    def test_fin_rst_close_folds_rst_into_the_last_fin(self):
        mangled = fin_rst_close(transfer_trace(), random.Random(0))
        combined = [r for r in mangled if r.is_fin and r.is_rst]
        assert len(combined) == 1

    def test_duplicates_are_adjacent_copies(self):
        trace = transfer_trace()
        mangled = duplicate_records(trace, random.Random(3),
                                    duplicate_fraction=1.0)
        assert len(mangled) == 2 * len(trace)
        for i in range(0, len(mangled), 2):
            assert mangled[i + 1].seq == mangled[i].seq
            assert mangled[i + 1].timestamp > mangled[i].timestamp

    def test_wrap_sequences_crosses_zero_mid_transfer(self):
        trace = transfer_trace()
        wrapped = wrap_sequences(trace, random.Random(0))
        flow = trace.primary_flow()
        seqs = [r.seq for r in wrapped if r.flow == flow]
        # The raw numbers go backwards exactly once: the wrap.
        drops = sum(1 for a, b in zip(seqs, seqs[1:]) if b < a)
        assert drops == 1
        assert any(s > SEQ_SPACE // 2 for s in seqs)   # before the wrap
        assert any(s < SEQ_SPACE // 2 for s in seqs)   # after it

    def test_wrap_sequences_is_a_pure_rebase(self):
        trace = transfer_trace()
        wrapped = wrap_sequences(trace, random.Random(1))
        flow = trace.primary_flow()
        reverse = flow.reversed()
        before = [r for r in trace if r.flow == flow]
        after = [r for r in wrapped if r.flow == flow]
        # Relative progression is untouched — modular distance from
        # the (new) ISN matches the original exactly.
        assert [seq_diff(r.seq, before[0].seq) for r in before] == \
            [seq_diff(r.seq, after[0].seq) for r in after]
        # Acks covering the data direction moved by the same delta.
        delta = (after[0].seq - before[0].seq) % SEQ_SPACE
        for b, a in zip((r for r in trace if r.flow == reverse),
                        (r for r in wrapped if r.flow == reverse)):
            if b.has_ack:
                assert a.ack == (b.ack + delta) % SEQ_SPACE

    def test_wrap_sequences_stays_encodable(self):
        addresses = AddressMap()
        wrapped = wrap_sequences(transfer_trace(), random.Random(2))
        for record in wrapped:
            assert 0 <= record.seq < SEQ_SPACE
            assert 0 <= record.ack < SEQ_SPACE
            encode_record(record, addresses)    # must not overflow !I

    def test_same_seed_same_result(self):
        trace = transfer_trace()
        a = thin_acks(trace, random.Random(7))
        b = thin_acks(trace, random.Random(7))
        assert a.records == b.records
        c = wrap_sequences(trace, random.Random(7))
        d = wrap_sequences(trace, random.Random(7))
        assert c.records == d.records


class TestFrameManglers:
    def test_pad_frames_keeps_packets_decodable(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        padded = pad_frames(frames, random.Random(1), pad_fraction=1.0)
        assert all(len(p.data) > len(f.data)
                   for p, f in zip(padded, frames))
        for frame in padded:
            decoded = decode_packet(frame.data, frame.timestamp, addresses)
            assert not decoded.corrupted

    def test_truncate_frames_records_original_length(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        cut = truncate_frames(frames, random.Random(1),
                              truncate_fraction=1.0)
        shortened = [(c, f) for c, f in zip(cut, frames)
                     if len(c.data) < len(f.data)]
        assert shortened
        for c, f in shortened:
            assert c.orig_len == len(f.data)

    def test_damage_checksums_flips_payload_not_headers(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        damaged = damage_checksums(frames, random.Random(1),
                                   damage_fraction=1.0)
        changed = [(d, f) for d, f in zip(damaged, frames)
                   if d.data != f.data]
        assert changed
        for d, f in changed:
            decoded = decode_packet(d.data, d.timestamp, addresses)
            assert decoded.corrupted
            assert decoded.seq == decode_packet(f.data, f.timestamp,
                                                addresses).seq

    def test_truncate_mss_rewrites_only_option_carrying_frames(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        mangled = truncate_mss_frames(frames, random.Random(1), 1.0)
        changed = sum(1 for m, f in zip(mangled, frames)
                      if m.data != f.data)
        with_options = sum(1 for r in transfer_trace()
                           if r.mss_option is not None)
        assert changed == with_options

    def test_garbage_and_udp_frames_are_added(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        more = inject_udp(inject_garbage(frames, random.Random(1)),
                          random.Random(2))
        assert len(more) == len(frames) + 2 + 3

    def test_time_travel_steps_one_clock_backwards(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        warped = time_travel(frames, random.Random(3))
        moved = [(w, f) for w, f in zip(warped, frames)
                 if w.timestamp != f.timestamp]
        assert len(moved) == 1
        assert moved[0][0].timestamp < moved[0][1].timestamp

    def test_zero_length_option_written(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        mangled = zero_length_options(frames, random.Random(1), 1.0)
        assert any(m.data != f.data for m, f in zip(mangled, frames))


class TestFileManglers:
    def test_tear_tail_lies_about_the_last_frame(self):
        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        torn = tear_tail(frames, random.Random(1))
        last = torn[-1]
        assert last.declared_len is not None
        assert last.declared_len > len(last.data)
        assert torn[:-1] == frames[:-1]


class TestRenderPcap:
    def test_renders_readable_container(self, tmp_path):
        from repro.stream.reader import iter_pcap

        addresses = AddressMap()
        trace = transfer_trace()
        frames = frames_of(trace, addresses)
        path = tmp_path / "render.pcap"
        path.write_bytes(render_pcap(frames))
        records = list(iter_pcap(path, addresses=addresses))
        assert len(records) == len(trace)
        assert [r.seq for r in records] == [r.seq for r in trace]

    def test_declared_len_truncates_the_stream(self, tmp_path):
        from repro.stream.reader import iter_pcap
        from repro.stream.stats import IngestStats

        addresses = AddressMap()
        frames = frames_of(transfer_trace(), addresses)
        torn = tear_tail(frames, random.Random(1))
        path = tmp_path / "torn.pcap"
        path.write_bytes(render_pcap(torn))
        stats = IngestStats()
        records = list(iter_pcap(path, addresses=addresses, stats=stats))
        # The reader must not die on the lying final header; the torn
        # record is either salvaged (headers intact) or counted.
        assert len(records) >= len(torn) - 1
