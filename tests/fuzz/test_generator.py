"""Plan sampling: deterministic, validated, appropriately diverse."""

import pytest

from repro.fuzz.generator import (
    FUZZ_SCENARIOS,
    ScenarioPlan,
    iter_plans,
    plan_scenario,
)


class TestDeterminism:
    def test_same_seed_same_plan(self):
        assert plan_scenario(42) == plan_scenario(42)

    def test_iter_plans_matches_individual_planning(self):
        assert list(iter_plans(100, 10)) \
            == [plan_scenario(100 + i) for i in range(10)]

    def test_plans_are_not_all_identical(self):
        plans = list(iter_plans(0, 30))
        assert len({p.implementation for p in plans}) > 3
        assert len({p.scenario for p in plans}) > 3


class TestDiversity:
    def test_some_plans_are_clean(self):
        plans = list(iter_plans(0, 100))
        clean = [p for p in plans if not p.ingredients]
        assert 3 <= len(clean) <= 35

    def test_every_mangler_layer_appears(self):
        plans = list(iter_plans(0, 200))
        assert any(p.record_manglers for p in plans)
        assert any(p.frame_manglers for p in plans)
        assert any(p.file_manglers for p in plans)
        assert any(p.filter_faults for p in plans)
        assert any(p.cross_connections for p in plans)

    def test_scenarios_come_from_the_fuzz_set(self):
        for plan in iter_plans(0, 50):
            assert plan.scenario in FUZZ_SCENARIOS


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ScenarioPlan(seed=0, implementation="reno",
                         scenario="underwater", data_size=1024,
                         vantage="sender")

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError, match="unknown implementation"):
            ScenarioPlan(seed=0, implementation="windows-3000",
                         scenario="wan", data_size=1024, vantage="sender")

    def test_unknown_mangler_rejected(self):
        with pytest.raises(ValueError, match="unknown mangler"):
            ScenarioPlan(seed=0, implementation="reno", scenario="wan",
                         data_size=1024, vantage="sender",
                         frame_manglers=("blowtorch",))

    def test_to_dict_round_trips_the_plan(self):
        plan = plan_scenario(7)
        rebuilt = ScenarioPlan(
            **{key: tuple(value) if isinstance(value, list) else value
               for key, value in plan.to_dict().items()})
        assert rebuilt == plan
