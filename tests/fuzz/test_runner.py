"""The fuzz harness end to end: oracle verdicts, sweeps, minimization."""

import json

import pytest

from repro.fuzz import FAIL_OUTCOMES, minimize_frames, run_scenario, run_sweep
from repro.fuzz.generator import ScenarioPlan, plan_scenario
from repro.fuzz.ingredients import Frame, render_pcap
from repro.fuzz.runner import build_capture, evaluate_capture


def clean_plan(seed: int = 0, **overrides) -> ScenarioPlan:
    spec = dict(seed=seed, implementation="reno", scenario="lan",
                data_size=8192, vantage="sender")
    spec.update(overrides)
    return ScenarioPlan(**spec)


class TestRunScenario:
    def test_clean_scenario_identifies_the_truth(self):
        outcome = run_scenario(clean_plan())
        assert outcome.outcome == "identified"
        assert outcome.ok
        assert "reno" in outcome.detail

    def test_deterministic_across_runs(self):
        a = run_scenario(clean_plan(seed=3))
        b = run_scenario(clean_plan(seed=3))
        assert (a.outcome, a.detail) == (b.outcome, b.detail)
        assert [f.data for f in a.frames] == [f.data for f in b.frames]

    def test_mangled_scenario_still_classifies(self):
        plan = clean_plan(seed=5,
                          record_manglers=("thin-acks", "reorder"),
                          frame_manglers=("pad", "garbage"),
                          file_manglers=("tear-tail",))
        outcome = run_scenario(plan)
        assert outcome.ok, f"{outcome.outcome}: {outcome.detail}"

    def test_seq_wraparound_scenario_classifies(self):
        # The ROADMAP's named stretch ingredient: a transfer whose
        # sequence space crosses 2**32 mid-flight must still land a
        # PASS verdict from the oracle — raw-number comparisons
        # anywhere in the pipeline would shatter the flow or crash.
        for seed in (11, 42):
            plan = clean_plan(seed=seed, implementation="linux-1.0",
                              scenario="wan", data_size=16384,
                              record_manglers=("seq-wraparound",))
            outcome = run_scenario(plan)
            assert outcome.ok, f"{outcome.outcome}: {outcome.detail}"
            assert outcome.outcome == "identified"

    def test_cross_connections_share_the_capture(self):
        plan = clean_plan(seed=9, cross_connections=("tahoe", "linux-1.0"))
        outcome = run_scenario(plan)
        assert outcome.ok, f"{outcome.outcome}: {outcome.detail}"
        # Three connections' worth of packets ended up interleaved.
        clean = run_scenario(clean_plan(seed=9))
        assert len(outcome.frames) > len(clean.frames)


class TestOracle:
    def test_empty_capture_is_consumed(self, tmp_path):
        from repro.trace.wire import AddressMap
        from repro.stream.flowtable import ConnectionKey
        from repro.packets import Endpoint

        path = tmp_path / "empty.pcap"
        path.write_bytes(render_pcap([]))
        key = ConnectionKey.of(Endpoint("a", 1), Endpoint("b", 2))
        outcome, _ = evaluate_capture(path, AddressMap(), key, "reno")
        assert outcome == "consumed"

    def test_all_garbage_capture_is_consumed(self, tmp_path):
        import random

        from repro.fuzz.ingredients import inject_garbage
        from repro.trace.wire import AddressMap
        from repro.stream.flowtable import ConnectionKey
        from repro.packets import Endpoint

        frames = inject_garbage([], random.Random(1), count=5)
        path = tmp_path / "garbage.pcap"
        path.write_bytes(render_pcap(frames))
        key = ConnectionKey.of(Endpoint("a", 1), Endpoint("b", 2))
        outcome, detail = evaluate_capture(path, AddressMap(), key, "reno")
        assert outcome == "consumed"
        assert "accounted" in detail

    def test_fail_outcomes_is_a_closed_set(self):
        assert FAIL_OUTCOMES == {"misidentified", "unclassified",
                                 "silently-lost"}


class TestSweep:
    def test_small_sweep_passes_and_tallies(self):
        report = run_sweep(base_seed=0, count=4)
        assert report.passed
        assert sum(report.outcomes.values()) == 4
        assert report.count == 4

    def test_sweep_report_serializes(self):
        report = run_sweep(base_seed=0, count=2)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["passed"] is True
        assert payload["base_seed"] == 0

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        run_sweep(base_seed=0, count=3, progress=seen.append)
        assert [o.plan.seed for o in seen] == [0, 1, 2]


class TestMinimize:
    def test_minimizes_to_the_failing_core(self):
        # Synthetic predicate: fails iff frames 13 and 27 are both
        # present — ddmin must find exactly that pair.
        frames = [Frame(float(i), bytes([i])) for i in range(40)]

        def still_fails(candidate):
            data = {f.data[0] for f in candidate}
            return 13 in data and 27 in data

        reduced = minimize_frames(frames, still_fails)
        assert sorted(f.data[0] for f in reduced) == [13, 27]

    def test_rejects_a_passing_input(self):
        with pytest.raises(ValueError, match="does not fail"):
            minimize_frames([Frame(0.0, b"x")], lambda frames: False)

    def test_probe_budget_still_returns_a_reproducer(self):
        frames = [Frame(float(i), bytes([i])) for i in range(64)]

        def still_fails(candidate):
            return any(f.data[0] == 5 for f in candidate)

        reduced = minimize_frames(frames, still_fails, max_probes=3)
        assert any(f.data[0] == 5 for f in reduced)


class TestBuildCapture:
    def test_returns_truth_matching_the_plan(self):
        frames, addresses, key, impl = build_capture(clean_plan(seed=11))
        assert impl == "reno"
        assert frames
        ports = {key.a.port, key.b.port}
        assert 9000 in ports      # the server side survives remapping
