"""Shared fixtures: cached simulated transfers.

Simulations are deterministic, so transfers are memoized per
(implementation, scenario, size, seed) and shared across the whole
test session — tests ask for what they need via ``transfer_factory``
and pay the simulation cost once.
"""

from __future__ import annotations

import pytest

from repro.harness.scenarios import TracedTransfer, traced_transfer
from repro.tcp.catalog import get_behavior

_cache: dict[tuple, TracedTransfer] = {}


def cached_transfer(implementation: str, scenario: str = "wan",
                    data_size: int = 51200, seed: int = 0,
                    **kwargs) -> TracedTransfer:
    """A memoized traced transfer (do not mutate the result)."""
    key = (implementation, scenario, data_size, seed,
           tuple(sorted(kwargs.items())))
    if key not in _cache:
        _cache[key] = traced_transfer(get_behavior(implementation),
                                      scenario, data_size=data_size,
                                      seed=seed, **kwargs)
    return _cache[key]


@pytest.fixture
def transfer_factory():
    """Factory fixture: ``transfer_factory("reno", scenario="wan-lossy")``."""
    return cached_transfer


@pytest.fixture
def reno_wan(transfer_factory) -> TracedTransfer:
    """The canonical clean transfer: Reno over the WAN path."""
    return transfer_factory("reno", "wan")


@pytest.fixture
def reno_lossy(transfer_factory) -> TracedTransfer:
    """Reno over the lossy WAN path (has retransmissions)."""
    return transfer_factory("reno", "wan-lossy", seed=3)
