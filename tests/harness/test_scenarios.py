"""Scenarios and the traced-transfer helper."""

import pytest

from repro.harness.scenarios import SCENARIOS, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbit

from tests.conftest import cached_transfer


class TestScenarios:
    def test_paper_scenarios_present(self):
        for name in ("wan", "transatlantic", "satellite", "modem-56k",
                     "lan", "wan-lossy"):
            assert name in SCENARIOS

    def test_transatlantic_matches_figure5(self):
        scenario = SCENARIOS["transatlantic"]
        assert scenario.rtt == pytest.approx(0.68, abs=0.01)

    def test_satellite_matches_worst_case(self):
        assert SCENARIOS["satellite"].rtt == pytest.approx(2.6, abs=0.01)

    def test_modem_bandwidths(self):
        assert SCENARIOS["modem-56k"].bottleneck_bandwidth == kbit(56)
        assert SCENARIOS["modem-64k"].bottleneck_bandwidth == kbit(64)

    def test_loss_model_only_when_rates_set(self):
        assert SCENARIOS["wan"].forward_loss() is None
        assert SCENARIOS["wan-lossy"].forward_loss() is not None

    def test_corrupting_scenario(self):
        scenario = SCENARIOS["lossy-corrupting"]
        assert scenario.corrupt_rate > 0


class TestTracedTransfer:
    def test_accepts_scenario_by_name_or_object(self):
        by_name = traced_transfer(get_behavior("reno"), "lan",
                                  data_size=5120)
        by_object = traced_transfer(get_behavior("reno"), SCENARIOS["lan"],
                                    data_size=5120)
        assert by_name.result.completed and by_object.result.completed

    def test_deterministic_given_seed(self):
        a = traced_transfer(get_behavior("reno"), "wan-lossy",
                            data_size=10240, seed=5)
        b = traced_transfer(get_behavior("reno"), "wan-lossy",
                            data_size=10240, seed=5)
        assert len(a.sender_trace) == len(b.sender_trace)
        for ra, rb in zip(a.sender_trace, b.sender_trace):
            assert ra.timestamp == rb.timestamp
            assert ra.seq == rb.seq

    def test_seeds_vary_loss_pattern(self):
        a = traced_transfer(get_behavior("reno"), "wan-lossy",
                            data_size=20480, seed=1)
        b = traced_transfer(get_behavior("reno"), "wan-lossy",
                            data_size=20480, seed=2)
        assert [r.seq for r in a.sender_trace] != \
            [r.seq for r in b.sender_trace]

    def test_traces_attached_to_result(self):
        transfer = cached_transfer("reno")
        assert len(transfer.sender_trace) > 0
        assert len(transfer.receiver_trace) > 0
        assert transfer.scenario.name == "wan"


class TestAdversarialScenarios:
    """The asymmetric / lossy-ack / cross-traffic additions the fuzz
    layer composes on."""

    def test_new_scenarios_present(self):
        for name in ("adsl-asymmetric", "ack-lossy", "congested"):
            assert name in SCENARIOS

    def test_asymmetric_reverse_path_is_narrower(self):
        scenario = SCENARIOS["adsl-asymmetric"]
        assert scenario.reverse_bandwidth is not None
        assert scenario.reverse_bandwidth < scenario.bottleneck_bandwidth

    def test_reverse_loss_only_when_ack_drop_rate_set(self):
        assert SCENARIOS["wan"].reverse_loss() is None
        assert SCENARIOS["ack-lossy"].reverse_loss() is not None

    def test_ack_lossy_transfer_completes(self):
        transfer = traced_transfer(get_behavior("reno"), "ack-lossy",
                                   data_size=10240, seed=3)
        assert transfer.result.completed
        # Ack thinning is visible at the sender: fewer acks arrive
        # than data packets were sent.
        trace = transfer.sender_trace
        assert len(trace.acks()) < len(trace.data_packets())

    def test_congested_transfer_sees_cross_traffic(self):
        transfer = traced_transfer(get_behavior("reno"), "congested",
                                   data_size=10240, seed=3)
        assert transfer.result.completed
        # The receiver-side tap observes the cross-traffic flows too —
        # the multi-flow fodder the demux fuzzing relies on.
        assert len(transfer.receiver_trace.flows()) > 2

    def test_congested_stops_soon_after_completion(self):
        transfer = traced_transfer(get_behavior("reno"), "congested",
                                   data_size=10240, seed=3)
        engine = transfer.result.engine
        # The self-rescheduling cross-traffic source must not drag the
        # simulation to the 600 s horizon once the transfer is done.
        assert engine.now < 60.0

    def test_congested_deterministic(self):
        a = traced_transfer(get_behavior("reno"), "congested",
                            data_size=10240, seed=7)
        b = traced_transfer(get_behavior("reno"), "congested",
                            data_size=10240, seed=7)
        assert [r.seq for r in a.sender_trace] \
            == [r.seq for r in b.sender_trace]
        assert [r.timestamp for r in a.sender_trace] \
            == [r.timestamp for r in b.sender_trace]
