"""Fault-injection harness: deterministic, targeted, picklable."""

import pickle

import pytest

from repro.harness.faults import RAISEABLE, FaultPlan, FaultSpec
from repro.pipeline import BatchItem


@pytest.fixture
def item(tmp_path):
    path = tmp_path / "victim.pcap"
    path.write_bytes(b"\xa1\xb2\xc3\xd4" + b"\x00" * 20)
    return BatchItem(name="victim.pcap", path=path)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(match="x", kind="gremlin")

    def test_unraiseable_exception_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(match="x", kind="raise", exception="SystemExit")

    def test_fires_by_name_and_index(self):
        by_name = FaultSpec(match="victim.pcap", kind="raise")
        assert by_name.fires("victim.pcap", 7, 0)
        assert not by_name.fires("other.pcap", 7, 0)
        by_index = FaultSpec(match=3, kind="raise")
        assert by_index.fires("anything.pcap", 3, 0)
        assert not by_index.fires("anything.pcap", 4, 0)

    def test_attempt_gating(self):
        spec = FaultSpec(match="x", kind="raise", on_attempts=(0, 2))
        assert spec.fires("x", 0, 0)
        assert not spec.fires("x", 0, 1)
        assert spec.fires("x", 0, 2)


class TestFaultPlan:
    def test_plan_is_picklable(self):
        plan = FaultPlan(specs=(
            FaultSpec(match="a", kind="kill"),
            FaultSpec(match="b", kind="raise", exception="KeyError"),
        ))
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_no_matching_spec_is_a_no_op(self, item):
        plan = FaultPlan(specs=(FaultSpec(match="other", kind="raise"),))
        assert plan.apply(item, 0, 0) is item

    @pytest.mark.parametrize("name,expected", sorted(RAISEABLE.items()))
    def test_raise_fault_raises_the_named_exception(self, item, name,
                                                    expected):
        plan = FaultPlan(specs=(
            FaultSpec(match=item.name, kind="raise", exception=name),))
        with pytest.raises(expected):
            plan.apply(item, 0, 0)

    def test_corrupt_fault_substitutes_a_damaged_copy(self, item):
        original = item.path.read_bytes()
        plan = FaultPlan(specs=(FaultSpec(match=item.name,
                                          kind="corrupt"),))
        corrupted = plan.apply(item, 0, 0)
        try:
            assert corrupted is not item
            assert corrupted.name == item.name   # provenance preserved
            assert corrupted.path != item.path
            assert corrupted.path.read_bytes() != original
            # The original capture is never touched.
            assert item.path.read_bytes() == original
        finally:
            corrupted.path.unlink()

    def test_corruption_is_deterministic(self, item):
        plan = FaultPlan(specs=(FaultSpec(match=item.name,
                                          kind="corrupt"),))
        first = plan.apply(item, 0, 0)
        second = plan.apply(item, 0, 1)
        try:
            assert first.path.read_bytes() == second.path.read_bytes()
        finally:
            first.path.unlink()
            second.path.unlink()

    def test_corrupt_offset_and_bytes_respected(self, item):
        plan = FaultPlan(specs=(FaultSpec(
            match=item.name, kind="corrupt", corrupt_offset=4,
            corrupt_bytes=b"\xff\xff"),))
        corrupted = plan.apply(item, 0, 0)
        try:
            data = corrupted.path.read_bytes()
            assert data[:4] == item.path.read_bytes()[:4]
            assert data[4:6] == b"\xff\xff"
        finally:
            corrupted.path.unlink()

    def test_hang_fault_sleeps(self, item, monkeypatch):
        naps = []
        monkeypatch.setattr("time.sleep", naps.append)
        plan = FaultPlan(specs=(FaultSpec(match=item.name, kind="hang",
                                          hang_seconds=42.0),))
        assert plan.apply(item, 0, 0) is item
        assert naps == [42.0]
