"""Corpus generation (the Table 1 stand-in)."""

import pytest

from repro.harness.corpus import (
    corpus_summary,
    generate_corpus,
    generate_interleaved_capture,
    interleave_traces,
    write_corpus,
)

from tests.conftest import cached_transfer


class TestGeneration:
    def test_counts_per_implementation(self):
        entries = list(generate_corpus(["reno", "tahoe"],
                                       traces_per_implementation=3,
                                       data_size=10240))
        assert len(entries) == 6
        assert sum(e.implementation == "reno" for e in entries) == 3

    def test_scenarios_rotate(self):
        entries = list(generate_corpus(["reno"],
                                       traces_per_implementation=3,
                                       scenarios=("lan", "wan"),
                                       data_size=10240))
        names = [e.transfer.scenario.name for e in entries]
        assert names == ["lan", "wan", "lan"]

    def test_traces_accessible(self):
        entry = next(iter(generate_corpus(["reno"],
                                          traces_per_implementation=1,
                                          data_size=10240)))
        assert len(entry.sender_trace) > 0
        assert len(entry.receiver_trace) > 0

    def test_default_implementations_are_core_study(self):
        from repro.tcp.catalog import CORE_STUDY
        entries = generate_corpus(traces_per_implementation=1,
                                  scenarios=("lan",), data_size=2048)
        labels = {e.implementation for e in entries}
        assert labels == set(CORE_STUDY)


class TestWriteCorpus:
    def test_files_numbered_per_implementation(self, tmp_path):
        write_corpus(tmp_path, implementations=["reno", "linux-1.0"],
                     traces_per_implementation=2, data_size=10240)
        names = sorted(p.name for p in tmp_path.glob("*.pcap"))
        assert names == [
            "linux-1.0-0000-receiver.pcap", "linux-1.0-0000-sender.pcap",
            "linux-1.0-0001-receiver.pcap", "linux-1.0-0001-sender.pcap",
            "reno-0000-receiver.pcap", "reno-0000-sender.pcap",
            "reno-0001-receiver.pcap", "reno-0001-sender.pcap",
        ]

    def test_entries_report_paths_and_stems(self, tmp_path):
        written = write_corpus(tmp_path, implementations=["reno"],
                               traces_per_implementation=1,
                               data_size=10240)
        entry, = written
        assert entry.stem == "reno-0000"
        assert entry.sender_path.exists()
        assert entry.receiver_path.exists()
        assert len(entry.transfer.sender_trace) > 0


class TestInterleavedCapture:
    def test_connections_get_distinct_client_ports(self):
        trace = cached_transfer("reno").sender_trace
        capture = interleave_traces([trace, trace, trace],
                                    ["reno"] * 3, port_base=41000)
        assert [f.client.port for f in capture.flows] \
            == [41000, 41001, 41002]
        endpoints = {(r.src, r.dst) for r in capture.trace.records}
        assert len({frozenset(pair) for pair in endpoints}) == 3

    def test_starts_are_staggered_and_overlapping(self):
        trace = cached_transfer("reno").sender_trace
        capture = interleave_traces([trace, trace], ["reno", "reno"],
                                    start_interval=0.3)
        first, second = capture.flows
        assert second.start - first.start == 0.3
        duration = trace.records[-1].timestamp - trace.records[0].timestamp
        assert duration > 0.3   # connection 1 starts before 0 finishes

    def test_records_merged_in_timestamp_order(self):
        trace = cached_transfer("reno").sender_trace
        capture = interleave_traces([trace, trace], ["reno", "reno"],
                                    start_interval=0.1)
        times = [r.timestamp for r in capture.trace.records]
        assert times == sorted(times)
        assert len(capture.trace) == 2 * len(trace)

    def test_generate_reuses_distinct_transfers(self):
        capture = generate_interleaved_capture(
            implementations=["reno"], connections=6,
            distinct_transfers=2, data_size=10240,
            scenarios=("wan",), start_interval=0.2)
        assert capture.connections == 6
        counts = [f.records for f in capture.flows]
        assert counts[0] == counts[2] == counts[4]  # reused transfer

    def test_receiver_side_capture(self):
        capture = generate_interleaved_capture(
            implementations=["reno"], connections=2,
            distinct_transfers=1, data_size=10240,
            scenarios=("wan",), side="receiver")
        assert capture.connections == 2

    def test_rejects_unknown_side(self):
        with pytest.raises(ValueError):
            generate_interleaved_capture(side="middle")


class TestSummary:
    def test_summary_rows(self):
        entries = list(generate_corpus(["reno", "linux-1.0"],
                                       traces_per_implementation=2,
                                       scenarios=("wan-lossy",),
                                       data_size=20480))
        summary = corpus_summary(entries)
        assert summary["reno"]["traces"] == 2
        assert summary["reno"]["completed"] == 2
        assert summary["linux-1.0"]["retransmissions"] \
            > summary["reno"]["retransmissions"]
