"""Corpus generation (the Table 1 stand-in)."""

from repro.harness.corpus import (
    corpus_summary,
    generate_corpus,
    write_corpus,
)


class TestGeneration:
    def test_counts_per_implementation(self):
        entries = list(generate_corpus(["reno", "tahoe"],
                                       traces_per_implementation=3,
                                       data_size=10240))
        assert len(entries) == 6
        assert sum(e.implementation == "reno" for e in entries) == 3

    def test_scenarios_rotate(self):
        entries = list(generate_corpus(["reno"],
                                       traces_per_implementation=3,
                                       scenarios=("lan", "wan"),
                                       data_size=10240))
        names = [e.transfer.scenario.name for e in entries]
        assert names == ["lan", "wan", "lan"]

    def test_traces_accessible(self):
        entry = next(iter(generate_corpus(["reno"],
                                          traces_per_implementation=1,
                                          data_size=10240)))
        assert len(entry.sender_trace) > 0
        assert len(entry.receiver_trace) > 0

    def test_default_implementations_are_core_study(self):
        from repro.tcp.catalog import CORE_STUDY
        entries = generate_corpus(traces_per_implementation=1,
                                  scenarios=("lan",), data_size=2048)
        labels = {e.implementation for e in entries}
        assert labels == set(CORE_STUDY)


class TestWriteCorpus:
    def test_files_numbered_per_implementation(self, tmp_path):
        write_corpus(tmp_path, implementations=["reno", "linux-1.0"],
                     traces_per_implementation=2, data_size=10240)
        names = sorted(p.name for p in tmp_path.glob("*.pcap"))
        assert names == [
            "linux-1.0-0000-receiver.pcap", "linux-1.0-0000-sender.pcap",
            "linux-1.0-0001-receiver.pcap", "linux-1.0-0001-sender.pcap",
            "reno-0000-receiver.pcap", "reno-0000-sender.pcap",
            "reno-0001-receiver.pcap", "reno-0001-sender.pcap",
        ]

    def test_entries_report_paths_and_stems(self, tmp_path):
        written = write_corpus(tmp_path, implementations=["reno"],
                               traces_per_implementation=1,
                               data_size=10240)
        entry, = written
        assert entry.stem == "reno-0000"
        assert entry.sender_path.exists()
        assert entry.receiver_path.exists()
        assert len(entry.transfer.sender_trace) > 0


class TestSummary:
    def test_summary_rows(self):
        entries = list(generate_corpus(["reno", "linux-1.0"],
                                       traces_per_implementation=2,
                                       scenarios=("wan-lossy",),
                                       data_size=20480))
        summary = corpus_summary(entries)
        assert summary["reno"]["traces"] == 2
        assert summary["reno"]["completed"] == 2
        assert summary["linux-1.0"]["retransmissions"] \
            > summary["reno"]["retransmissions"]
