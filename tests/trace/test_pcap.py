"""pcap container round-trips."""

import struct

import pytest

from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.wire import AddressMap

from tests.conftest import cached_transfer


@pytest.fixture
def wan_trace():
    return cached_transfer("reno").sender_trace


class TestRoundTrip:
    def test_record_count_preserved(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(wan_trace, path)
        assert len(read_pcap(path)) == len(wan_trace)

    def test_headers_preserved(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        addresses = AddressMap()
        write_pcap(wan_trace, path, addresses=addresses)
        loaded = read_pcap(path, addresses=addresses)
        for original, decoded in zip(wan_trace, loaded):
            assert decoded.seq == original.seq
            assert decoded.ack == original.ack
            assert decoded.flags == original.flags
            assert decoded.payload == original.payload
            assert decoded.src == original.src

    def test_timestamps_preserved_to_microseconds(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(wan_trace, path)
        for original, decoded in zip(wan_trace, read_pcap(path)):
            assert decoded.timestamp == pytest.approx(original.timestamp,
                                                      abs=2e-6)

    def test_analysis_works_on_reloaded_trace(self, wan_trace, tmp_path):
        from repro.core import analyze_sender
        from repro.tcp.catalog import get_behavior
        path = tmp_path / "trace.pcap"
        addresses = AddressMap()
        write_pcap(wan_trace, path, addresses=addresses)
        loaded = read_pcap(path, addresses=addresses)
        analysis = analyze_sender(loaded, get_behavior("reno"))
        assert analysis.violation_count == 0

    def test_snaplen_truncates(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(wan_trace, path, snaplen=60)
        loaded = read_pcap(path)
        assert len(loaded) == len(wan_trace)
        # payload length still read from the IP header's total length
        assert any(r.payload > 0 for r in loaded)

    def test_snaplen_disables_checksum_verification(self, tmp_path):
        transfer = cached_transfer("reno", "lossy-corrupting", seed=1)
        path = tmp_path / "trace.pcap"
        write_pcap(transfer.receiver_trace, path, snaplen=60)
        loaded = read_pcap(path)
        assert not any(r.corrupted for r in loaded)

    def test_full_capture_preserves_corruption(self, tmp_path):
        transfer = cached_transfer("reno", "lossy-corrupting", seed=1)
        path = tmp_path / "trace.pcap"
        write_pcap(transfer.receiver_trace, path)
        loaded = read_pcap(path)
        original_corrupt = sum(r.corrupted for r in transfer.receiver_trace)
        assert sum(r.corrupted for r in loaded) == original_corrupt > 0


class TestByteOrders:
    @pytest.mark.parametrize("byte_order", ["big", "little"])
    def test_round_trip_under_both_orders(self, wan_trace, tmp_path,
                                          byte_order):
        path = tmp_path / f"{byte_order}.pcap"
        addresses = AddressMap()
        write_pcap(wan_trace, path, addresses=addresses,
                   byte_order=byte_order)
        loaded = read_pcap(path, addresses=addresses)
        assert len(loaded) == len(wan_trace)
        for original, decoded in zip(wan_trace, loaded):
            assert decoded.seq == original.seq
            assert decoded.timestamp == pytest.approx(original.timestamp,
                                                      abs=2e-6)

    def test_little_endian_magic_is_swapped_on_disk(self, wan_trace,
                                                    tmp_path):
        path = tmp_path / "le.pcap"
        write_pcap(wan_trace, path, byte_order="little")
        magic, = struct.unpack(">I", path.read_bytes()[:4])
        assert magic == 0xD4C3B2A1

    def test_unknown_byte_order_rejected(self, wan_trace, tmp_path):
        with pytest.raises(ValueError):
            write_pcap(wan_trace, tmp_path / "x.pcap", byte_order="middle")


class TestFileFormat:
    def test_magic_and_linktype(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(wan_trace, path)
        header = path.read_bytes()[:24]
        magic, = struct.unpack("!I", header[:4])
        assert magic == 0xA1B2C3D4
        linktype, = struct.unpack("!I", header[20:24])
        assert linktype == 101  # LINKTYPE_RAW

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"not a pcap file at all........")
        with pytest.raises(ValueError):
            read_pcap(path)

    def test_rejects_short_file(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xa1\xb2")
        with pytest.raises(ValueError):
            read_pcap(path)

    def test_truncated_final_packet_tolerated(self, wan_trace, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(wan_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        loaded = read_pcap(path)
        assert len(loaded) == len(wan_trace) - 1

    def test_final_packet_cut_after_headers_kept_as_partial(self, tmp_path):
        """A trailing record that keeps its headers survives the cut."""
        transfer = cached_transfer("reno")
        trace = transfer.sender_trace
        # Find a trailing data packet layout: rewrite the file so it
        # ends right after the final record's 40 header bytes.
        path = tmp_path / "trace.pcap"
        data_record = next(r for r in reversed(trace.records)
                           if r.payload > 0)
        from repro.trace.record import Trace
        write_pcap(Trace(records=[*trace.records[:3], data_record]), path)
        whole = path.read_bytes()
        cut = len(whole) - data_record.payload
        path.write_bytes(whole[:cut])
        loaded = read_pcap(path)
        assert len(loaded) == 4
        assert loaded[-1].payload == data_record.payload
        assert not loaded[-1].corrupted   # checksum unverifiable
