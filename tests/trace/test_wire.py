"""Wire-format encode/decode: real headers, real checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import ACK, FIN, PSH, SYN, Endpoint
from repro.trace.record import TraceRecord
from repro.trace.wire import (
    AddressMap,
    PacketDecodeError,
    decode_packet,
    encode_record,
    internet_checksum,
)


def record(**kwargs):
    defaults = dict(timestamp=1.0, src=Endpoint("sender", 1024),
                    dst=Endpoint("receiver", 9000), seq=1000, ack=500,
                    flags=ACK, payload=512, window=8192)
    defaults.update(kwargs)
    return TraceRecord(**defaults)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        # b"\xff" pads to 0xff00; complement is 0x00ff.
        assert internet_checksum(b"\xff") == 0x00FF

    def test_checksum_of_data_plus_checksum_is_zero(self):
        data = b"hello world!"
        checksum = internet_checksum(data)
        combined = data + checksum.to_bytes(2, "big")
        assert internet_checksum(combined) == 0


class TestRoundTrip:
    def test_basic_fields(self):
        addresses = AddressMap()
        packet = encode_record(record(), addresses)
        decoded = decode_packet(packet, 1.0, addresses)
        original = record()
        assert decoded.seq == original.seq
        assert decoded.ack == original.ack
        assert decoded.flags == original.flags
        assert decoded.payload == original.payload
        assert decoded.window == original.window
        assert decoded.src == original.src
        assert decoded.dst == original.dst

    def test_mss_option_roundtrips(self):
        addresses = AddressMap()
        packet = encode_record(record(flags=SYN, payload=0, mss_option=1460),
                               addresses)
        decoded = decode_packet(packet, 0.0, addresses)
        assert decoded.mss_option == 1460

    def test_no_option_decodes_none(self):
        addresses = AddressMap()
        packet = encode_record(record(), addresses)
        assert decode_packet(packet, 0.0, addresses).mss_option is None

    def test_clean_packet_passes_checksum(self):
        packet = encode_record(record())
        assert not decode_packet(packet, 0.0).corrupted

    def test_corrupted_packet_fails_checksum(self):
        packet = encode_record(record(corrupted=True))
        assert decode_packet(packet, 0.0).corrupted

    def test_addressmap_fallback_to_dotted_quads(self):
        addresses = AddressMap()
        packet = encode_record(record(), addresses)
        decoded = decode_packet(packet, 0.0, None)
        assert decoded.src.addr.startswith("10.0.")

    def test_already_ip_addresses_pass_through(self):
        addresses = AddressMap()
        rec = record(src=Endpoint("192.168.1.1", 80))
        packet = encode_record(rec, addresses)
        decoded = decode_packet(packet, 0.0, addresses)
        assert decoded.src.addr == "192.168.1.1"

    @given(seq=st.integers(min_value=0, max_value=2**32 - 1),
           ack=st.integers(min_value=0, max_value=2**32 - 1),
           payload=st.integers(min_value=0, max_value=1460),
           window=st.integers(min_value=0, max_value=65535),
           flags=st.sampled_from([ACK, SYN, SYN | ACK, FIN | ACK,
                                  PSH | ACK]))
    def test_roundtrip_property(self, seq, ack, payload, window, flags):
        addresses = AddressMap()
        original = record(seq=seq, ack=ack, payload=payload, window=window,
                          flags=flags)
        decoded = decode_packet(encode_record(original, addresses), 0.0,
                                addresses)
        assert (decoded.seq, decoded.ack, decoded.payload, decoded.window,
                decoded.flags) == (seq, ack, payload, window, flags)
        assert not decoded.corrupted


class TestDecodeErrors:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            decode_packet(b"\x45\x00", 0.0)

    def test_non_ipv4_rejected(self):
        packet = bytearray(encode_record(record()))
        packet[0] = 0x65  # version 6
        with pytest.raises(ValueError):
            decode_packet(bytes(packet), 0.0)

    def test_non_tcp_rejected(self):
        packet = bytearray(encode_record(record()))
        packet[9] = 17  # UDP
        with pytest.raises(ValueError):
            decode_packet(bytes(packet), 0.0)

    def test_truncated_skips_checksum(self):
        packet = encode_record(record(corrupted=True))
        decoded = decode_packet(packet[:40], 0.0, verify_checksum=False)
        assert not decoded.corrupted  # cannot tell from headers alone

    def test_errors_carry_a_classifying_kind(self):
        """Streaming ingest counts cross-traffic apart from damage."""
        udp = bytearray(encode_record(record()))
        udp[9] = 17
        with pytest.raises(PacketDecodeError) as error:
            decode_packet(bytes(udp), 0.0)
        assert error.value.kind == "non-tcp"

        ipv6 = bytearray(encode_record(record()))
        ipv6[0] = 0x65
        with pytest.raises(PacketDecodeError) as error:
            decode_packet(bytes(ipv6), 0.0)
        assert error.value.kind == "non-ip"

        with pytest.raises(PacketDecodeError) as error:
            decode_packet(b"\x45\x00", 0.0)
        assert error.value.kind == "malformed"

    def test_bad_header_lengths_are_malformed_not_crashes(self):
        short_ihl = bytearray(encode_record(record()))
        short_ihl[0] = 0x43  # IHL below the 20-byte minimum
        with pytest.raises(PacketDecodeError) as error:
            decode_packet(bytes(short_ihl), 0.0)
        assert error.value.kind == "malformed"

        bad_offset = bytearray(encode_record(record()))
        bad_offset[20 + 12] = 0x10  # TCP data offset 4 (< 5 words)
        with pytest.raises(PacketDecodeError) as error:
            decode_packet(bytes(bad_offset), 0.0)
        assert error.value.kind == "malformed"


class TestAddressMap:
    def test_stable_assignment(self):
        addresses = AddressMap()
        assert addresses.ip_for("host-x") == addresses.ip_for("host-x")

    def test_distinct_hosts_distinct_ips(self):
        addresses = AddressMap()
        assert addresses.ip_for("a") != addresses.ip_for("b")

    def test_reverse_lookup(self):
        addresses = AddressMap()
        ip = addresses.ip_for("myhost")
        assert addresses.name_for(ip) == "myhost"

    def test_unknown_ip_returned_verbatim(self):
        assert AddressMap().name_for("1.2.3.4") == "1.2.3.4"
