"""Trace container semantics."""

import pytest

from repro.packets import ACK, FIN, SYN, Endpoint
from repro.trace.record import Trace, TraceRecord

A = Endpoint("a", 1000)
B = Endpoint("b", 2000)


def record(t=0.0, src=A, dst=B, seq=0, ack=0, flags=ACK, payload=0,
           window=65535, **kwargs):
    return TraceRecord(timestamp=t, src=src, dst=dst, seq=seq, ack=ack,
                       flags=flags, payload=payload, window=window, **kwargs)


def simple_trace():
    return Trace(records=[
        record(t=0.0, flags=SYN, seq=0),
        record(t=0.1, src=B, dst=A, flags=SYN | ACK, seq=0, ack=1),
        record(t=0.2, seq=1, payload=512, ack=1),
        record(t=0.3, src=B, dst=A, ack=513),
        record(t=0.4, seq=513, payload=512, ack=1),
    ], vantage="sender")


class TestRecordProperties:
    def test_seq_end_with_syn(self):
        assert record(flags=SYN, seq=10).seq_end == 11

    def test_seq_end_with_fin_and_payload(self):
        assert record(flags=FIN | ACK, seq=10, payload=5).seq_end == 16

    def test_is_pure_ack(self):
        assert record().is_pure_ack
        assert not record(payload=1).is_pure_ack
        assert not record(flags=SYN | ACK).is_pure_ack

    def test_describe_contains_essentials(self):
        text = record(t=1.5, seq=100, payload=50, ack=7).describe()
        assert "a.1000 > b.2000" in text
        assert "100:150(50)" in text
        assert "ack 7" in text

    def test_with_timestamp(self):
        assert record(t=1.0).with_timestamp(2.0).timestamp == 2.0

    def test_frozen(self):
        with pytest.raises(Exception):
            record().timestamp = 5.0


class TestTraceQueries:
    def test_primary_flow_is_data_direction(self):
        trace = simple_trace()
        assert trace.primary_flow().src == A

    def test_primary_flow_falls_back_to_syn(self):
        trace = Trace(records=[
            record(t=0.0, flags=SYN, seq=0),
            record(t=0.1, src=B, dst=A, flags=SYN | ACK, seq=0, ack=1),
        ])
        assert trace.primary_flow().src == A

    def test_primary_flow_empty_raises(self):
        with pytest.raises(ValueError):
            Trace().primary_flow()

    def test_data_packets(self):
        assert len(simple_trace().data_packets()) == 2

    def test_acks_excludes_synack(self):
        acks = simple_trace().acks()
        assert len(acks) == 1
        assert acks[0].ack == 513

    def test_filtered_preserves_metadata(self):
        filtered = simple_trace().filtered(lambda r: r.payload > 0)
        assert len(filtered) == 2
        assert filtered.vantage == "sender"

    def test_sorted_by_time(self):
        trace = Trace(records=[record(t=2.0), record(t=1.0)])
        assert [r.timestamp for r in trace.sorted_by_time()] == [1.0, 2.0]

    def test_relative_seq(self):
        trace = simple_trace()
        data = trace.data_packets()[1]
        assert trace.relative_seq(data) == 513

    def test_iteration_and_indexing(self):
        trace = simple_trace()
        assert len(list(trace)) == len(trace) == 5
        assert trace[0].is_syn

    def test_describe_limits_lines(self):
        text = simple_trace().describe(limit=2)
        assert len(text.splitlines()) == 2

    def test_flows(self):
        trace = simple_trace()
        assert len(trace.flows()) == 2
