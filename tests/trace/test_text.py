"""tcpdump-style text rendering and parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packets import ACK, FIN, PSH, SYN, Endpoint
from repro.trace.record import TraceRecord
from repro.trace.text import parse_line, parse_trace, render_record, render_trace

from tests.conftest import cached_transfer


def record(**kwargs):
    defaults = dict(timestamp=0.5, src=Endpoint("sender", 1024),
                    dst=Endpoint("receiver", 9000), seq=1000, ack=1,
                    flags=ACK, payload=512, window=8192)
    defaults.update(kwargs)
    return TraceRecord(**defaults)


class TestRendering:
    def test_data_packet_line(self):
        line = render_record(record())
        assert line == ("0.500000 sender.1024 > receiver.9000: . "
                        "1000:1512(512) ack 1 win 8192")

    def test_syn_with_mss(self):
        line = render_record(record(flags=SYN, payload=0, mss_option=512,
                                    seq=0))
        assert "S 0:1(0)" in line
        assert "<mss 512>" in line
        assert "ack" not in line

    def test_corrupt_marker(self):
        assert "[corrupt]" in render_record(record(corrupted=True))

    def test_base_time_subtracted(self):
        assert render_record(record(timestamp=5.25), base_time=5.0)\
            .startswith("0.250000")


class TestParsing:
    def test_roundtrip_data_packet(self):
        original = record()
        parsed = parse_line(render_record(original))
        assert parsed.seq == original.seq
        assert parsed.ack == original.ack
        assert parsed.payload == original.payload
        assert parsed.flags == original.flags
        assert parsed.window == original.window

    def test_roundtrip_syn(self):
        original = record(flags=SYN, payload=0, seq=0, mss_option=1460)
        parsed = parse_line(render_record(original))
        assert parsed.is_syn and parsed.mss_option == 1460

    def test_roundtrip_corrupt(self):
        parsed = parse_line(render_record(record(corrupted=True)))
        assert parsed.corrupted

    def test_unparseable_raises(self):
        with pytest.raises(ValueError):
            parse_line("this is not a trace line")

    def test_parse_trace_skips_comments_and_blanks(self):
        text = ("# a comment\n\n"
                + render_record(record()) + "\n")
        trace = parse_trace(text)
        assert len(trace) == 1

    def test_whole_trace_roundtrip(self):
        original = cached_transfer("reno").sender_trace
        text = render_trace(original, relative_time=False)
        parsed = parse_trace(text)
        assert len(parsed) == len(original)
        for a, b in zip(original, parsed):
            assert (a.seq, a.ack, a.flags, a.payload) == \
                (b.seq, b.ack, b.flags, b.payload)

    @given(seq=st.integers(min_value=0, max_value=2**32 - 2),
           payload=st.integers(min_value=0, max_value=1460),
           window=st.integers(min_value=0, max_value=65535),
           flags=st.sampled_from([ACK, SYN, FIN | ACK, PSH | ACK]))
    def test_roundtrip_property(self, seq, payload, window, flags):
        original = record(seq=seq, payload=payload, window=window,
                          flags=flags)
        parsed = parse_line(render_record(original))
        assert (parsed.seq, parsed.payload, parsed.window, parsed.flags) \
            == (seq, payload, window, flags)

    def test_analysis_works_on_parsed_trace(self):
        from repro.core import analyze_sender
        from repro.tcp.catalog import get_behavior
        original = cached_transfer("reno").sender_trace
        parsed = parse_trace(render_trace(original, relative_time=False))
        analysis = analyze_sender(parsed, get_behavior("reno"))
        assert analysis.violation_count == 0
