"""Property-based tests on core invariants (hypothesis).

These go beyond the module-level round-trip properties: they drive the
window ledger, the engine, and the trace machinery with generated
inputs and check structural invariants that every execution must hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sender.windows import WindowLedger
from repro.netsim.engine import Engine
from repro.tcp import params as P
from repro.tcp.catalog import CATALOG
from repro.trace.text import parse_line, render_record
from repro.trace.wire import AddressMap, decode_packet, encode_record
from repro.units import SEQ_SPACE, seq_le


# --- window ledger ---------------------------------------------------------

ledger_ops = st.lists(
    st.tuples(st.sampled_from(["advance", "shrink"]),
              st.integers(min_value=0, max_value=100_000)),
    max_size=60)


@given(ledger_ops)
def test_ledger_entries_strictly_increasing(operations):
    ledger = WindowLedger(0.0, 1000)
    for i, (op, value) in enumerate(operations):
        if op == "advance":
            ledger.advance(float(i), value)
        else:
            ledger.shrink(value)
        highs = [e.high for e in ledger._entries]
        times = [e.time for e in ledger._entries]
        assert all(seq_le(a, b) and a != b
                   for a, b in zip(highs, highs[1:])), highs
        assert times == sorted(times)


@given(ledger_ops, st.integers(min_value=0, max_value=100_000))
def test_ledger_permissible_consistent_with_current_high(operations, probe):
    ledger = WindowLedger(0.0, 1000)
    for i, (op, value) in enumerate(operations):
        if op == "advance":
            ledger.advance(float(i), value)
        else:
            ledger.shrink(value)
    since = ledger.permissible_since(probe)
    if seq_le(probe, ledger.current_high):
        assert since is not None
    else:
        assert since is None


@given(st.lists(st.integers(min_value=1000, max_value=100_000), min_size=1,
                max_size=30))
def test_ledger_advance_times_monotone_in_seq(highs):
    ledger = WindowLedger(0.0, 500)
    for i, high in enumerate(highs):
        ledger.advance(float(i + 1), high)
    # Later (higher) sequence numbers never become permissible earlier
    # than lower ones.
    probes = sorted({h for h in highs if seq_le(h, ledger.current_high)})
    times = [ledger.permissible_since(p) for p in probes]
    assert times == sorted(times)


# --- engine ----------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), max_size=50))
def test_engine_executes_all_events_in_order(delays):
    engine = Engine()
    executed = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: executed.append(engine.now))
    engine.run()
    assert len(executed) == len(delays)
    assert executed == sorted(executed)
    assert sorted(executed) == sorted(delays)


# --- congestion arithmetic across the whole catalog --------------------------

@given(st.sampled_from(sorted(CATALOG)),
       st.integers(min_value=512, max_value=65535),
       st.integers(min_value=512, max_value=65535))
def test_cut_ssthresh_bounds_hold_for_all_implementations(label, cwnd,
                                                          offered):
    behavior = CATALOG[label]
    mss = 512
    cut = P.cut_ssthresh(behavior, cwnd, offered, mss)
    assert cut >= behavior.ssthresh_min_segments * mss
    assert cut <= max(min(cwnd, offered) // 2 + mss,
                      behavior.ssthresh_min_segments * mss)


@given(st.sampled_from(sorted(CATALOG)),
       st.integers(min_value=512, max_value=65535))
def test_increase_cwnd_monotone_for_all_implementations(label, cwnd):
    behavior = CATALOG[label]
    new = P.increase_cwnd(behavior, cwnd, 2**30, 512, 2**30)
    assert new > cwnd
    new_ca = P.increase_cwnd(behavior, cwnd, 512, 512, 2**30)
    assert new_ca > cwnd
    # Slow start grows at least as fast as congestion avoidance.
    assert new - cwnd >= new_ca - cwnd or cwnd < 512 * 2


# --- wire format under generated records -------------------------------------

record_strategy = st.builds(
    dict,
    seq=st.integers(min_value=0, max_value=SEQ_SPACE - 1),
    ack=st.integers(min_value=0, max_value=SEQ_SPACE - 1),
    payload=st.integers(min_value=0, max_value=1460),
    window=st.integers(min_value=0, max_value=65535),
    corrupted=st.booleans(),
    mss=st.one_of(st.none(), st.integers(min_value=64, max_value=65535)),
)


@given(record_strategy)
@settings(max_examples=60)
def test_wire_roundtrip_and_checksum_property(fields):
    from repro.packets import ACK, Endpoint
    from repro.trace.record import TraceRecord
    record = TraceRecord(
        timestamp=0.0, src=Endpoint("a", 1), dst=Endpoint("b", 2),
        seq=fields["seq"], ack=fields["ack"], flags=ACK,
        payload=fields["payload"], window=fields["window"],
        mss_option=fields["mss"], corrupted=fields["corrupted"])
    addresses = AddressMap()
    decoded = decode_packet(encode_record(record, addresses), 0.0, addresses)
    assert decoded.corrupted == fields["corrupted"]
    assert decoded.seq == fields["seq"]
    assert decoded.payload == fields["payload"]
    # Text format agrees with the wire format on the same record.
    parsed = parse_line(render_record(record))
    assert parsed.seq == decoded.seq
    assert parsed.payload == decoded.payload


# --- simulated transfers hold TCP invariants ---------------------------------

@given(st.sampled_from(["reno", "tahoe", "linux-1.0", "solaris-2.4",
                        "sunos-4.1.3"]),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=12, deadline=None)
def test_transfer_trace_invariants(label, seed):
    from tests.conftest import cached_transfer
    transfer = cached_transfer(label, "wan-lossy", data_size=20480,
                               seed=seed)
    trace = transfer.sender_trace
    flow = trace.primary_flow()
    # Invariant 1: receiver acks are monotone non-decreasing.
    acks = [r.ack for r in trace
            if r.flow == flow.reversed() and r.has_ack and not r.is_syn]
    assert all(seq_le(a, b) for a, b in zip(acks, acks[1:]))
    # Invariant 2: acks never exceed data sent.
    highest = max(r.seq_end for r in trace if r.flow == flow)
    assert all(seq_le(a, highest) for a in acks)
    # Invariant 3: timestamps monotone (perfect filter).
    times = [r.timestamp for r in trace]
    assert times == sorted(times)
    # Invariant 4: every byte below the final ack was sent at least once.
    assert transfer.result.receiver.stats_data_received == 20480
