"""The tcpanaly command-line front end."""

import pytest

from repro.cli import main


@pytest.fixture
def pcap_pair(tmp_path):
    """Simulate once, return (sender_pcap, receiver_pcap) paths."""
    out = tmp_path / "transfer"
    code = main(["simulate", "reno", "--scenario", "wan",
                 "--size", "20480", "--out", str(out)])
    assert code == 0
    return f"{out}-sender.pcap", f"{out}-receiver.pcap"


class TestSimulate:
    def test_writes_both_pcaps(self, pcap_pair, capsys):
        sender, receiver = pcap_pair
        from pathlib import Path
        assert Path(sender).exists() and Path(receiver).exists()

    def test_reports_summary(self, tmp_path, capsys):
        main(["simulate", "linux-1.0", "--scenario", "wan-lossy",
              "--size", "20480", "--out", str(tmp_path / "x")])
        out = capsys.readouterr().out
        assert "completed" in out
        assert "retransmissions" in out

    def test_unknown_implementation_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["simulate", "nosuch-1.0", "--out", str(tmp_path / "x")])


class TestAnalyze:
    def test_analyze_with_implementation(self, pcap_pair, capsys):
        sender, receiver = pcap_pair
        code = main(["analyze", sender, "-i", "reno", "--peer", receiver])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 violations" in out
        assert "measurement calibration" in out

    def test_analyze_receiver_side(self, pcap_pair, capsys):
        _, receiver = pcap_pair
        code = main(["analyze", receiver, "-i", "reno"])
        assert code == 0
        assert "receiver behavior" in capsys.readouterr().out

    def test_analyze_without_implementation(self, pcap_pair, capsys):
        sender, _ = pcap_pair
        assert main(["analyze", sender]) == 0


class TestIdentify:
    def test_identify_ranks_candidates(self, pcap_pair, capsys):
        sender, _ = pcap_pair
        code = main(["identify", sender])
        assert code == 0
        out = capsys.readouterr().out
        assert "reno" in out
        assert "close" in out


class TestListAndPlot:
    def test_list_shows_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "solaris-2.4" in out
        assert "transatlantic" in out

    def test_plot_renders(self, pcap_pair, capsys):
        sender, _ = pcap_pair
        assert main(["plot", sender]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "o" in out


class TestCalibrateCommand:
    def test_clean_trace_verdict(self, pcap_pair, capsys):
        sender, receiver = pcap_pair
        code = main(["calibrate", sender, "-i", "reno",
                     "--peer", receiver])
        assert code == 0
        assert "no measurement errors" in capsys.readouterr().out

    def test_defective_trace_nonzero_exit(self, tmp_path, capsys):
        from repro.capture.clock import SteppingClock
        from repro.capture.filter import PacketFilter
        from repro.harness.scenarios import traced_transfer
        from repro.tcp.catalog import get_behavior
        from repro.trace.pcap import write_pcap
        packet_filter = PacketFilter(
            vantage="sender",
            clock=SteppingClock(steps=[(0.5, -0.1), (0.9, -0.1)]))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=40960,
                                   sender_filter=packet_filter)
        path = tmp_path / "bad.pcap"
        write_pcap(transfer.sender_trace, path)
        code = main(["calibrate", str(path), "-i", "reno"])
        assert code == 1
        out = capsys.readouterr().out
        assert "time travel" in out


class TestCorpusCommand:
    def test_writes_trace_pairs(self, tmp_path, capsys):
        code = main(["corpus", str(tmp_path / "corpus"),
                     "--per-implementation", "1", "--size", "10240"])
        assert code == 0
        from repro.tcp.catalog import CORE_STUDY
        pcaps = list((tmp_path / "corpus").glob("*.pcap"))
        assert len(pcaps) == 2 * len(CORE_STUDY)

    def test_filenames_numbered_per_implementation(self, tmp_path, capsys):
        code = main(["corpus", str(tmp_path / "corpus"),
                     "--implementations", "reno,tahoe",
                     "--per-implementation", "2", "--size", "10240"])
        assert code == 0
        names = {p.name for p in (tmp_path / "corpus").glob("*-sender.pcap")}
        assert names == {"reno-0000-sender.pcap", "reno-0001-sender.pcap",
                         "tahoe-0000-sender.pcap",
                         "tahoe-0001-sender.pcap"}

    def test_analyze_feeds_batch_pipeline(self, tmp_path, capsys):
        jsonl = tmp_path / "results.jsonl"
        code = main(["corpus", str(tmp_path / "corpus"),
                     "--implementations", "reno",
                     "--per-implementation", "1", "--size", "10240",
                     "--analyze", "--jsonl", str(jsonl)])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch aggregate" in out
        assert len(jsonl.read_text().splitlines()) == 2

    def test_corpus_traces_readable(self, tmp_path):
        main(["corpus", str(tmp_path / "corpus"),
              "--per-implementation", "1", "--size", "10240"])
        from repro.trace.pcap import read_pcap
        pcap = next((tmp_path / "corpus").glob("reno*-sender.pcap"), None)
        if pcap is None:   # reno itself is not in CORE_STUDY; any works
            pcap = next((tmp_path / "corpus").glob("*-sender.pcap"))
        trace = read_pcap(pcap)
        assert len(trace) > 0


class TestBatchCommand:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("batch-corpus")
        assert main(["corpus", str(outdir), "--implementations",
                     "reno,linux-1.0", "--per-implementation", "1",
                     "--size", "10240"]) == 0
        return outdir

    def test_reports_aggregate(self, corpus_dir, capsys):
        assert main(["batch", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "batch aggregate" in out
        assert "traces analyzed: 4" in out
        assert "best-fit accuracy" in out

    def test_jsonl_identical_across_job_counts(self, corpus_dir, tmp_path,
                                               capsys):
        seq = tmp_path / "seq.jsonl"
        par = tmp_path / "par.jsonl"
        assert main(["batch", str(corpus_dir), "--jobs", "1",
                     "--jsonl", str(seq)]) == 0
        assert main(["batch", str(corpus_dir), "--jobs", "2",
                     "--jsonl", str(par)]) == 0
        assert seq.read_bytes() == par.read_bytes()

    def test_warm_cache_reports_all_hits(self, corpus_dir, tmp_path,
                                         capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", str(corpus_dir), "--cache", cache]) == 0
        assert "cache: 0 hit(s), 4 miss(es)" in capsys.readouterr().out
        assert main(["batch", str(corpus_dir), "--cache", cache]) == 0
        assert "cache: 4 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_empty_directory_exits_2(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path)]) == 2
        assert "no .pcap traces" in capsys.readouterr().err

    def test_damaged_trace_does_not_abort_the_run(self, corpus_dir,
                                                  tmp_path, capsys):
        import shutil
        mixed = tmp_path / "mixed"
        shutil.copytree(corpus_dir, mixed)
        (mixed / "bad.pcap").write_bytes(b"garbage")
        assert main(["batch", str(mixed)]) == 0
        out = capsys.readouterr().out
        assert "traces analyzed: 4" in out
        assert "unanalyzable traces: 1" in out
        assert "bad.pcap" in out

    def test_unknown_corpus_implementation_exits_2(self, tmp_path, capsys):
        assert main(["corpus", str(tmp_path / "c"),
                     "--implementations", "renoo"]) == 2
        err = capsys.readouterr().err
        assert "unknown implementation" in err
        assert "renoo" in err


class TestDemuxCommand:
    @pytest.fixture(scope="class")
    def multi_pcap(self, tmp_path_factory):
        from repro.harness.corpus import generate_interleaved_capture
        from repro.trace.pcap import write_pcap
        capture = generate_interleaved_capture(
            implementations=["reno", "linux-1.0"], connections=4,
            distinct_transfers=2, data_size=10240,
            scenarios=("wan",), start_interval=0.2)
        path = tmp_path_factory.mktemp("demux") / "multi.pcap"
        write_pcap(capture.trace, path)
        return str(path)

    def test_one_report_per_connection(self, multi_pcap, capsys):
        assert main(["demux", multi_pcap]) == 0
        out = capsys.readouterr().out
        assert "4 connection(s) demultiplexed" in out
        assert "flow-0000" in out and "flow-0003" in out
        assert "tcpanaly report" in out

    def test_ingest_stats_printed(self, multi_pcap, capsys):
        assert main(["demux", multi_pcap]) == 0
        out = capsys.readouterr().out
        assert "ingest:" in out
        assert "flows: 4 opened, 4 retired" in out

    def test_jsonl_output(self, multi_pcap, tmp_path, capsys):
        jsonl = tmp_path / "flows.jsonl"
        assert main(["demux", multi_pcap, "--jsonl", str(jsonl)]) == 0
        import json
        lines = [json.loads(line)
                 for line in jsonl.read_text().splitlines()]
        assert len(lines) == 4
        assert all("flow" in line and "calibration" in line
                   for line in lines)

    def test_identify_ranks_per_flow(self, multi_pcap, capsys):
        assert main(["demux", multi_pcap, "--identify"]) == 0
        assert "implementation identification" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["demux", str(tmp_path / "missing.pcap")]) == 2
        assert "tcpanaly:" in capsys.readouterr().err


class TestBatchStream:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("stream-corpus")
        assert main(["corpus", str(outdir), "--implementations",
                     "reno,linux-1.0", "--per-implementation", "1",
                     "--size", "10240"]) == 0
        return outdir

    def test_stream_matches_eager_aggregate(self, corpus_dir, capsys):
        assert main(["batch", str(corpus_dir)]) == 0
        eager = capsys.readouterr().out
        assert main(["batch", str(corpus_dir), "--stream"]) == 0
        streamed = capsys.readouterr().out
        pick = [line for line in eager.splitlines()
                if "accuracy" in line or "close-set" in line]
        assert pick == [line for line in streamed.splitlines()
                        if "accuracy" in line or "close-set" in line]
        assert "streaming ingest (4 capture(s))" in streamed

    def test_stream_cache_separate_from_eager(self, corpus_dir, tmp_path,
                                              capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", str(corpus_dir), "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["batch", str(corpus_dir), "--cache", cache,
                     "--stream"]) == 0
        assert "cache: 0 hit(s), 4 miss(es)" in capsys.readouterr().out
        assert main(["batch", str(corpus_dir), "--cache", cache,
                     "--stream"]) == 0
        assert "cache: 4 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_stream_jsonl_carries_flow_and_ingest(self, corpus_dir,
                                                  tmp_path, capsys):
        import json
        jsonl = tmp_path / "stream.jsonl"
        assert main(["batch", str(corpus_dir), "--stream",
                     "--jsonl", str(jsonl)]) == 0
        lines = [json.loads(line)
                 for line in jsonl.read_text().splitlines()]
        assert len(lines) == 4
        assert all("ingest" in line and "flow" in line for line in lines)


class TestErrorPaths:
    def test_analyze_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "missing.pcap")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("tcpanaly:")
        assert err.count("\n") == 1

    def test_identify_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["identify", str(tmp_path / "missing.pcap")]) == 2
        assert "tcpanaly:" in capsys.readouterr().err

    def test_stats_non_pcap_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.pcap"
        bogus.write_bytes(b"definitely not a pcap capture file")
        assert main(["stats", str(bogus)]) == 2
        assert "unrecognized pcap magic" in capsys.readouterr().err


class TestStatsCommand:
    def test_reports_connection_numbers(self, pcap_pair, capsys):
        sender, _ = pcap_pair
        assert main(["stats", sender]) == 0
        out = capsys.readouterr().out
        assert "1 connection(s)" in out
        assert "20480 unique bytes" in out
        assert "rtt" in out


class TestIdentifyReceiver:
    def test_receiver_mode_ranks_policies(self, pcap_pair, capsys):
        _, receiver = pcap_pair
        assert main(["identify", receiver, "--receiver"]) == 0
        out = capsys.readouterr().out
        assert "acking-policy close fits" in out
        assert "reno" in out


class TestFuzzCommand:
    def test_small_sweep_passes(self, capsys):
        assert main(["fuzz", "--seed", "0", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 scenarios from seed 0 -> PASS" in out

    def test_verbose_prints_each_scenario(self, capsys):
        assert main(["fuzz", "--seed", "0", "--count", "1",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "ok   seed=0" in out
        assert "-> " in out

    def test_rejects_non_positive_count(self, capsys):
        assert main(["fuzz", "--count", "0"]) == 2
        assert "--count" in capsys.readouterr().err
