"""Segment and flow-key behavior."""

from repro.packets import (
    ACK,
    FIN,
    PSH,
    SYN,
    Endpoint,
    FlowKey,
    Segment,
    flags_to_string,
)

A = Endpoint("a", 1000)
B = Endpoint("b", 2000)


def make_segment(**kwargs) -> Segment:
    defaults = dict(src=A, dst=B, seq=100, ack=0, flags=ACK, payload=512)
    defaults.update(kwargs)
    return Segment(**defaults)


class TestFlags:
    def test_syn_renders(self):
        assert flags_to_string(SYN) == "S"

    def test_synack_renders(self):
        assert flags_to_string(SYN | ACK) == "S."

    def test_pure_ack_renders_dot(self):
        assert flags_to_string(ACK) == "."

    def test_no_flags_renders_dash(self):
        assert flags_to_string(0) == "-"

    def test_push_fin(self):
        assert flags_to_string(FIN | PSH | ACK) == "FP."


class TestFlowKey:
    def test_reversed_swaps(self):
        key = FlowKey(A, B)
        assert key.reversed() == FlowKey(B, A)

    def test_reversed_twice_is_identity(self):
        key = FlowKey(A, B)
        assert key.reversed().reversed() == key

    def test_str(self):
        assert str(FlowKey(A, B)) == "a.1000 > b.2000"


class TestSegment:
    def test_seq_end_counts_payload(self):
        assert make_segment(seq=100, payload=512).seq_end == 612

    def test_syn_consumes_sequence_space(self):
        assert make_segment(flags=SYN, payload=0).seq_end == 101

    def test_fin_consumes_sequence_space(self):
        assert make_segment(flags=FIN | ACK, payload=100).seq_end == 201

    def test_seq_end_wraps(self):
        segment = make_segment(seq=2**32 - 100, payload=512)
        assert segment.seq_end == 412

    def test_wire_size_includes_headers(self):
        assert make_segment(payload=512).wire_size == 552

    def test_wire_size_counts_mss_option(self):
        assert make_segment(payload=0, mss_option=512).wire_size == 44

    def test_copy_gets_fresh_packet_id(self):
        segment = make_segment()
        assert segment.copy().packet_id != segment.packet_id

    def test_copy_preserves_fields(self):
        segment = make_segment(seq=777, payload=99)
        duplicate = segment.copy()
        assert (duplicate.seq, duplicate.payload) == (777, 99)

    def test_distinct_segments_have_distinct_ids(self):
        assert make_segment().packet_id != make_segment().packet_id

    def test_flag_properties(self):
        segment = make_segment(flags=SYN | ACK)
        assert segment.is_syn and segment.has_ack
        assert not segment.is_fin and not segment.is_rst

    def test_flow_property(self):
        assert make_segment().flow == FlowKey(A, B)
