"""SIGTERM during ``tcpanaly serve``: clean drain, duplicate-free resume.

Runs the real CLI in a subprocess against a capture that grows while
the daemon tails it, because signal-driven drain cannot be faithfully
exercised in-process.  The acceptance invariant: kill-and-restart
produces a sink byte-identical to one ``batch --stream`` run over the
finished file, with zero duplicate lines.
"""

import json
import signal
import time

import pytest

from repro.harness.corpus import generate_interleaved_capture
from repro.pipeline.runner import BatchItem, run_batch
from repro.trace.pcap import write_pcap

from tests.test_cli_interrupt import run_cli

CONNECTIONS = 8
CHUNK = 4096


@pytest.fixture(scope="module")
def capture_bytes(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("serve-interrupt")
    capture = generate_interleaved_capture(
        ["reno", "tahoe"], connections=CONNECTIONS, scenarios=("wan",),
        data_size=8192)
    donor = outdir / "donor.pcap"
    write_pcap(capture.trace, donor)
    return donor.read_bytes()


class TestServeInterrupt:
    def test_sigterm_drains_and_restart_has_zero_duplicates(
            self, capture_bytes, tmp_path):
        grow = tmp_path / "grow.pcap"
        out = tmp_path / "out"
        grow.write_bytes(b"")

        proc = run_cli(["serve", str(grow), "--out", str(out),
                        "--jobs", "2"])
        try:
            # Feed roughly half the capture while the daemon tails it.
            half = len(capture_bytes) // 2
            written = 0
            while written < half:
                with open(grow, "ab") as handle:
                    handle.write(capture_bytes[written:written + CHUNK])
                written += CHUNK
                time.sleep(0.02)
            time.sleep(1.0)               # let the tailer catch up
            assert proc.poll() is None, "daemon exited prematurely"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "tcpanaly serve: drained" in stdout
        assert "Traceback" not in stderr

        # Finish the capture and restart; the journal replays what the
        # first run completed, the sink dedupes, nothing is lost.
        with open(grow, "ab") as handle:
            handle.write(capture_bytes[written:])
        resumed = run_cli(["serve", str(grow), "--out", str(out),
                           "--jobs", "2", "--exit-when-idle",
                           "--quiet", "0.5"])
        stdout, stderr = resumed.communicate(timeout=240)
        assert resumed.returncode == 0, stderr
        assert "tcpanaly serve: drained" in stdout

        lines = [json.loads(line) for line in
                 (out / "results" / "grow.pcap.jsonl")
                 .read_text().splitlines()]
        names = [line["trace"] for line in lines]
        assert len(names) == len(set(names)), "duplicate sink lines"
        assert len(names) == CONNECTIONS

        batch = run_batch([BatchItem(name="grow.pcap", path=grow)],
                          jobs=1, stream=True)
        expected = []
        for result in batch.results:
            payload = dict(result.payload)
            payload.pop("ingest", None)
            expected.append(json.dumps(payload, sort_keys=True))
        got = [json.dumps(line, sort_keys=True) for line in lines]
        assert sorted(got) == sorted(expected)


class TestServeDiskPressure:
    def test_degraded_daemon_stays_up_and_restart_completes(
            self, capture_bytes, tmp_path):
        """The degradation ladder under real (simulated-budget) disk
        pressure: a daemon whose free-space floor can never be met
        must enter ``draining``, keep answering /healthz, refuse to
        sink results — and still exit 0 on SIGTERM.  A restart with
        the budget lifted analyzes everything exactly once.
        """
        grow = tmp_path / "grow.pcap"
        out = tmp_path / "out"
        grow.write_bytes(capture_bytes)

        # A floor no filesystem can satisfy: immediate disk pressure.
        proc = run_cli(["serve", str(grow), "--out", str(out),
                        "--jobs", "2", "--http", "0",
                        "--min-free-bytes", str(10 ** 18)])
        try:
            deadline = time.time() + 30.0
            port = None
            while time.time() < deadline:
                port_file = out / "http.port"
                if port_file.exists():
                    port = int(port_file.read_text().strip())
                    break
                assert proc.poll() is None, "daemon exited prematurely"
                time.sleep(0.05)
            assert port is not None, "http.port never appeared"

            import urllib.request
            body = b""
            while time.time() < deadline:
                try:
                    with urllib.request.urlopen(
                            f"http://127.0.0.1:{port}/healthz",
                            timeout=5) as response:
                        body = response.read()
                    if b"draining" in body:
                        break
                except OSError:
                    pass
                time.sleep(0.05)
            assert body == b"ok draining\n"

            # /metrics exposes the same state for scrapers.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics",
                    timeout=5) as response:
                metrics = response.read().decode()
            assert ('tcpanaly_serve_health_state{state="draining"} 1'
                    in metrics)

            assert proc.poll() is None    # degraded, not dead
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        assert "Traceback" not in stderr

        # Journal-only mode held: nothing was sunk under pressure.
        sink_file = out / "results" / "grow.pcap.jsonl"
        assert not sink_file.exists() or not sink_file.read_text()

        # Budget lifted: the restart analyzes every flow exactly once.
        resumed = run_cli(["serve", str(grow), "--out", str(out),
                           "--jobs", "2", "--exit-when-idle",
                           "--quiet", "0.5"])
        stdout, stderr = resumed.communicate(timeout=240)
        assert resumed.returncode == 0, stderr
        names = [json.loads(line)["trace"] for line in
                 sink_file.read_text().splitlines()]
        assert len(names) == len(set(names)) == CONNECTIONS
