"""End-to-end pipelines: simulate → capture → (pcap) → analyze.

These tests exercise the full stack the way a user of the library
would, including the failure-injection paths that motivate the whole
§3 calibration apparatus.
"""

import pytest

from repro.capture.clock import SteppingClock
from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)
from repro.capture.filter import PacketFilter
from repro.core import (
    analyze_receiver,
    analyze_sender,
    calibrate_trace,
    identify_implementation,
)
from repro.core.report import analyze_trace
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import CATALOG, CORE_STUDY, get_behavior
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.wire import AddressMap
from repro.units import kbyte

from tests.conftest import cached_transfer


class TestFullPipelineViaPcap:
    """The user workflow: traces go to disk and come back."""

    def test_roundtrip_then_identify(self, tmp_path):
        transfer = cached_transfer("linux-1.0", "wan-lossy", seed=2)
        path = tmp_path / "linux.pcap"
        addresses = AddressMap()
        write_pcap(transfer.sender_trace, path, addresses=addresses)
        loaded = read_pcap(path, addresses=addresses, vantage="sender")
        report = identify_implementation(loaded)
        assert report.best.implementation == "linux-1.0"
        assert report.best.category == "close"

    def test_roundtrip_preserves_receiver_analysis(self, tmp_path):
        transfer = cached_transfer("solaris-2.4")
        path = tmp_path / "solaris.pcap"
        addresses = AddressMap()
        write_pcap(transfer.receiver_trace, path, addresses=addresses)
        loaded = read_pcap(path, addresses=addresses, vantage="receiver")
        analysis = analyze_receiver(loaded, get_behavior("solaris-2.4"))
        assert analysis.gratuitous == []


class TestCorpusWideConsistency:
    """Every core-study implementation, multiple scenarios: the
    analyzer explains its own stacks completely."""

    @pytest.mark.parametrize("implementation", CORE_STUDY)
    def test_lossy_self_analysis(self, implementation):
        transfer = cached_transfer(implementation, "wan-lossy", seed=2)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior(implementation))
        assert analysis.violation_count == 0, analysis.summary()
        receiver_analysis = analyze_receiver(
            transfer.receiver_trace, get_behavior(implementation))
        assert receiver_analysis.gratuitous == []

    @pytest.mark.parametrize("implementation", CORE_STUDY)
    def test_high_rtt_self_analysis(self, implementation):
        transfer = cached_transfer(implementation, "transatlantic",
                                   data_size=20480)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior(implementation))
        assert analysis.violation_count == 0, analysis.summary()


class TestCombinedErrorInjection:
    """Multiple simultaneous filter defects, as real filters had."""

    def test_drops_plus_clock_steps(self):
        packet_filter = PacketFilter(
            vantage="sender",
            drops=DropInjector(rate=0.03, seed=7, report_style="zero"),
            clock=SteppingClock(rate=1.0003, steps=[(0.6, -0.05)]))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert report.time_travel
        assert report.drop_evidence or packet_filter.drops.true_drops == 0

    def test_duplication_plus_drops(self):
        packet_filter = PacketFilter(
            vantage="sender",
            duplication=DuplicationInjector(),
            drops=DropInjector(rate=0.02, seed=3, report_style="none"))
        transfer = traced_transfer(get_behavior("reno"), "lan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert report.duplicates

    def test_analysis_still_works_after_cleaning(self):
        from repro.core.calibrate.additions import remove_duplicates
        packet_filter = PacketFilter(vantage="sender",
                                     duplication=DuplicationInjector())
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        cleaned = remove_duplicates(transfer.sender_trace)
        analysis = analyze_sender(cleaned, get_behavior("reno"))
        assert analysis.violation_count == 0


class TestResequencedTraceHandling:
    def test_resequencing_flagged_and_analysis_survives(self):
        packet_filter = PacketFilter(
            vantage="sender",
            resequencing=ResequencingInjector(seed=2))
        transfer = traced_transfer(get_behavior("solaris-2.4"), "wan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        report = analyze_trace(transfer.sender_trace,
                               get_behavior("solaris-2.4"))
        assert report.calibration.resequencing
        # The sender analysis absorbs inversions as clues, not violations.
        assert report.sender.violation_count <= 2


class TestMixedStacks:
    """Sender and receiver from different vendors, as on the real
    Internet."""

    @pytest.mark.parametrize("sender,receiver", [
        ("reno", "linux-1.0"),
        ("linux-1.0", "solaris-2.4"),
        ("solaris-2.4", "reno"),
        ("net3", "trumpet-2.0b"),
    ])
    def test_cross_vendor_transfers_analyzed(self, sender, receiver):
        transfer = traced_transfer(get_behavior(sender), "wan-lossy",
                                   receiver_behavior=get_behavior(receiver),
                                   data_size=kbyte(50), seed=1)
        assert transfer.result.completed
        sender_analysis = analyze_sender(transfer.sender_trace,
                                         get_behavior(sender))
        assert sender_analysis.violation_count == 0
        receiver_analysis = analyze_receiver(transfer.receiver_trace,
                                             get_behavior(receiver))
        assert receiver_analysis.gratuitous == []


class TestAllKnownImplementationsAgainstOneTrace:
    def test_fit_categories_exhaustive(self):
        trace = cached_transfer("sunos-4.1.3", "wan-lossy",
                                seed=3).sender_trace
        report = identify_implementation(trace)
        assert len(report.fits) == len(CATALOG)
        for fit in report.fits:
            assert fit.category in ("close", "imperfect", "incorrect",
                                    "unusable")
        close = {fit.implementation for fit in report.close}
        assert "sunos-4.1.3" in close
        assert "reno" not in close   # Reno's fast recovery differs
