"""Checkpoint journal: durability, validation, byte-identical resume."""

import json

import pytest

from repro.harness.corpus import write_corpus
from repro.pipeline import BatchJournal, corpus_items, run_batch, write_jsonl
from repro.pipeline.cache import ANALYSIS_SCHEMA_VERSION


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("journal-corpus")
    write_corpus(outdir, implementations=["reno", "linux-1.0"],
                 traces_per_implementation=2, data_size=10240)
    return outdir


@pytest.fixture(scope="module")
def clean_jsonl(corpus_dir, tmp_path_factory):
    path = tmp_path_factory.mktemp("journal-clean") / "clean.jsonl"
    batch = run_batch(corpus_items(corpus_dir), jobs=1)
    write_jsonl(batch.results, path)
    return path


class TestJournalMechanics:
    def test_records_and_looks_up(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.record("a.pcap", "digest-a", [{"trace": "a.pcap"}])
        journal.close()
        resumed = BatchJournal(tmp_path / "j.jsonl", resume=True)
        assert len(resumed) == 1
        assert resumed.lookup("a.pcap", "digest-a") == [{"trace": "a.pcap"}]
        resumed.close()

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.record("a.pcap", "digest-a", [{"trace": "a.pcap"}])
        journal.close()
        resumed = BatchJournal(tmp_path / "j.jsonl", resume=True)
        assert resumed.lookup("a.pcap", "digest-CHANGED") is None
        resumed.close()

    def test_without_resume_truncates(self, tmp_path):
        journal = BatchJournal(tmp_path / "j.jsonl")
        journal.record("a.pcap", "digest-a", [{"trace": "a.pcap"}])
        journal.close()
        fresh = BatchJournal(tmp_path / "j.jsonl", resume=False)
        assert len(fresh) == 0
        assert fresh.lookup("a.pcap", "digest-a") is None
        fresh.close()

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = BatchJournal(path)
        journal.record("a.pcap", "digest-a", [{"trace": "a.pcap"}])
        journal.record("b.pcap", "digest-b", [{"trace": "b.pcap"}])
        journal.close()
        # Simulate a crash mid-write: cut the final record in half.
        text = path.read_text()
        path.write_text(text[:len(text) - len(text.splitlines()[-1]) // 2
                             - 1])
        resumed = BatchJournal(path, resume=True)
        assert resumed.lookup("a.pcap", "digest-a") is not None
        assert resumed.lookup("b.pcap", "digest-b") is None
        resumed.close()

    def test_foreign_header_discards_the_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"journal": 1, "catalog": "someone-elses-catalog",
                  "schema": ANALYSIS_SCHEMA_VERSION, "stream": False}
        entry = {"name": "a.pcap", "digest": "d",
                 "payloads": [{"trace": "a.pcap"}]}
        path.write_text(json.dumps(header) + "\n"
                        + json.dumps(entry) + "\n")
        resumed = BatchJournal(path, resume=True)
        assert len(resumed) == 0
        resumed.close()

    def test_stream_and_eager_journals_do_not_mix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = BatchJournal(path, stream=False)
        journal.record("a.pcap", "digest-a", [{"trace": "a.pcap"}])
        journal.close()
        resumed = BatchJournal(path, stream=True, resume=True)
        assert len(resumed) == 0
        resumed.close()

    def test_garbage_file_resumes_empty(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"\x00\xffnot json at all")
        resumed = BatchJournal(path, resume=True)
        assert len(resumed) == 0
        resumed.close()


class TestResume:
    def test_interrupted_run_resumes_byte_identical(self, corpus_dir,
                                                    clean_jsonl, tmp_path):
        items = corpus_items(corpus_dir)
        half = len(items) // 2
        # "Interrupt" after half the corpus: only those are journaled.
        journal = BatchJournal(tmp_path / "j.jsonl")
        run_batch(items[:half], jobs=1, journal=journal)
        journal.close()
        resumed_journal = BatchJournal(tmp_path / "j.jsonl", resume=True)
        resumed = run_batch(items, jobs=2, timeout=60.0,
                            journal=resumed_journal)
        resumed_journal.close()
        assert resumed.resumed == half
        # Only the incomplete items were re-analyzed.
        assert resumed.cache_misses == len(items) - half
        out = tmp_path / "resumed.jsonl"
        write_jsonl(resumed.results, out)
        assert out.read_bytes() == clean_jsonl.read_bytes()

    def test_fully_journaled_run_reanalyzes_nothing(self, corpus_dir,
                                                    clean_jsonl, tmp_path):
        items = corpus_items(corpus_dir)
        journal = BatchJournal(tmp_path / "j.jsonl")
        run_batch(items, jobs=1, journal=journal)
        journal.close()
        resumed_journal = BatchJournal(tmp_path / "j.jsonl", resume=True)
        resumed = run_batch(items, jobs=1, journal=resumed_journal)
        resumed_journal.close()
        assert resumed.resumed == len(items)
        assert resumed.cache_misses == 0
        out = tmp_path / "resumed.jsonl"
        write_jsonl(resumed.results, out)
        assert out.read_bytes() == clean_jsonl.read_bytes()

    def test_changed_trace_is_reanalyzed_on_resume(self, corpus_dir,
                                                   tmp_path):
        items = corpus_items(corpus_dir)
        journal = BatchJournal(tmp_path / "j.jsonl")
        run_batch(items, jobs=1, journal=journal)
        journal.close()
        victim = items[0].path
        data = victim.read_bytes()
        victim.write_bytes(data + b"\x00" * 4)
        try:
            resumed_journal = BatchJournal(tmp_path / "j.jsonl",
                                           resume=True)
            resumed = run_batch(corpus_items(corpus_dir), jobs=1,
                                journal=resumed_journal)
            resumed_journal.close()
        finally:
            victim.write_bytes(data)
        assert resumed.resumed == len(items) - 1
        assert resumed.cache_misses == 1

    def test_stream_mode_resume_round_trips_fanout(self, tmp_path):
        from repro.harness.corpus import generate_interleaved_capture
        from repro.trace.pcap import write_pcap
        capture = generate_interleaved_capture(
            implementations=["reno"], connections=2,
            distinct_transfers=1, data_size=10240, scenarios=("wan",))
        outdir = tmp_path / "caps"
        outdir.mkdir()
        write_pcap(capture.trace, outdir / "multi.pcap")
        journal = BatchJournal(tmp_path / "j.jsonl", stream=True)
        cold = run_batch(corpus_items(outdir), jobs=1, stream=True,
                         journal=journal)
        journal.close()
        resumed_journal = BatchJournal(tmp_path / "j.jsonl", stream=True,
                                       resume=True)
        warm = run_batch(corpus_items(outdir), jobs=1, stream=True,
                         journal=resumed_journal)
        resumed_journal.close()
        assert warm.resumed == 1
        assert [r.payload for r in warm.results] \
            == [r.payload for r in cold.results]
        assert len(warm.results) == 2   # one per connection

    def test_quarantined_items_are_journaled(self, corpus_dir, tmp_path):
        import shutil
        mixed = tmp_path / "mixed"
        shutil.copytree(corpus_dir, mixed)
        (mixed / "bad.pcap").write_bytes(b"garbage")
        journal = BatchJournal(tmp_path / "j.jsonl")
        run_batch(corpus_items(mixed), jobs=1, journal=journal)
        journal.close()
        resumed_journal = BatchJournal(tmp_path / "j.jsonl", resume=True)
        resumed = run_batch(corpus_items(mixed), jobs=1,
                            journal=resumed_journal)
        resumed_journal.close()
        # The decode failure was a completed outcome: not re-analyzed.
        assert resumed.cache_misses == 0
        by_name = {r.name: r.payload for r in resumed.results}
        assert by_name["bad.pcap"]["error_kind"] == "decode"
